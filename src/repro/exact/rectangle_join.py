"""Exact cardinality of the spatial join of two hyper-rectangle sets.

Three algorithms are provided:

* :func:`brute_force_join_count` — chunked all-pairs evaluation with NumPy;
  simple and dimension-agnostic, used as a test oracle and for d >= 3.
* :func:`plane_sweep_join_count` — an O((m + n) log(m + n)) plane sweep for
  two-dimensional data: boxes are processed in order of their lower x
  coordinate while two Fenwick trees per input maintain the y intervals of
  the currently "open" boxes, so each processed box counts its partners
  with two rank queries.
* :func:`rectangle_join_count` — dispatcher that picks the appropriate
  algorithm based on dimensionality and input size.

Strict joins (Definition 1 / Figure 3 semantics: interiors must intersect)
ignore boxes that are degenerate in any dimension, exactly like the paper
does for its counting procedures.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import DimensionalityError
from repro.exact.fenwick import FenwickTree
from repro.exact.interval_join import interval_join_count
from repro.geometry.boxset import BoxSet


def _drop_degenerate(boxes: BoxSet) -> BoxSet:
    keep = np.all(boxes.lows < boxes.highs, axis=1)
    if np.all(keep):
        return boxes
    return boxes[keep]


def brute_force_join_count(left: BoxSet, right: BoxSet, *, closed: bool = False,
                           chunk_size: int = 512) -> int:
    """All-pairs join count evaluated in chunks (any dimensionality)."""
    if left.dimension != right.dimension:
        raise DimensionalityError("inputs have different dimensionality")
    if not closed:
        left = _drop_degenerate(left)
        right = _drop_degenerate(right)
    if len(left) == 0 or len(right) == 0:
        return 0
    total = 0
    r_lo, r_hi = right.lows, right.highs
    for start in range(0, len(left), chunk_size):
        stop = min(start + chunk_size, len(left))
        l_lo = left.lows[start:stop, None, :]
        l_hi = left.highs[start:stop, None, :]
        if closed:
            per_dim = (l_lo <= r_hi[None, :, :]) & (r_lo[None, :, :] <= l_hi)
        else:
            per_dim = (l_lo < r_hi[None, :, :]) & (r_lo[None, :, :] < l_hi)
        total += int(np.count_nonzero(np.all(per_dim, axis=2)))
    return total


def _compress(values: np.ndarray) -> np.ndarray:
    """Sorted unique coordinate values used for rank queries."""
    return np.unique(values)


def _rank_lt(sorted_values: np.ndarray, value: int) -> int:
    """Number of distinct sorted values strictly below ``value`` minus one
    (i.e. the largest index whose value is < ``value``; -1 if none)."""
    return int(np.searchsorted(sorted_values, value, side="left")) - 1


def _rank_le(sorted_values: np.ndarray, value: int) -> int:
    """Largest index whose value is <= ``value``; -1 if none."""
    return int(np.searchsorted(sorted_values, value, side="right")) - 1


class _ActiveSet:
    """Y-interval multiset of the currently open boxes of one input."""

    def __init__(self, y_lows: np.ndarray, y_highs: np.ndarray) -> None:
        self._lo_values = _compress(y_lows)
        self._hi_values = _compress(y_highs)
        self._lo_tree = FenwickTree(max(1, len(self._lo_values)))
        self._hi_tree = FenwickTree(max(1, len(self._hi_values)))
        self._active = 0

    def add(self, y_lo: int, y_hi: int) -> None:
        self._lo_tree.add(_rank_le(self._lo_values, y_lo))
        self._hi_tree.add(_rank_le(self._hi_values, y_hi))
        self._active += 1

    def remove(self, y_lo: int, y_hi: int) -> None:
        self._lo_tree.add(_rank_le(self._lo_values, y_lo), -1)
        self._hi_tree.add(_rank_le(self._hi_values, y_hi), -1)
        self._active -= 1

    def count_overlapping(self, y_lo: int, y_hi: int, *, closed: bool) -> int:
        """Number of active intervals overlapping ``[y_lo, y_hi]``."""
        if self._active == 0:
            return 0
        if closed:
            # exclude: lo > y_hi  or  hi < y_lo
            too_right = self._active - self._lo_tree.prefix_sum(_rank_le(self._lo_values, y_hi))
            too_left = self._hi_tree.prefix_sum(_rank_lt(self._hi_values, y_lo))
        else:
            # exclude: lo >= y_hi  or  hi <= y_lo
            too_right = self._active - self._lo_tree.prefix_sum(_rank_lt(self._lo_values, y_hi))
            too_left = self._hi_tree.prefix_sum(_rank_le(self._hi_values, y_lo))
        return self._active - too_right - too_left


def plane_sweep_join_count(left: BoxSet, right: BoxSet, *, closed: bool = False) -> int:
    """Exact two-dimensional join count via a plane sweep along the x axis."""
    if left.dimension != 2 or right.dimension != 2:
        raise DimensionalityError("plane_sweep_join_count requires two-dimensional boxes")
    if not closed:
        left = _drop_degenerate(left)
        right = _drop_degenerate(right)
    m, n = len(left), len(right)
    if m == 0 or n == 0:
        return 0

    # Event arrays: (x_low, source, index); sources 0 = left, 1 = right.
    order_key = np.concatenate([left.lows[:, 0], right.lows[:, 0]])
    sources = np.concatenate([np.zeros(m, dtype=np.int8), np.ones(n, dtype=np.int8)])
    indices = np.concatenate([np.arange(m), np.arange(n)])
    order = np.argsort(order_key, kind="stable")

    # Removal queues sorted by x_high.
    left_by_hi = np.argsort(left.highs[:, 0], kind="stable")
    right_by_hi = np.argsort(right.highs[:, 0], kind="stable")
    left_hi_sorted = left.highs[left_by_hi, 0]
    right_hi_sorted = right.highs[right_by_hi, 0]

    active_left = _ActiveSet(left.lows[:, 1], left.highs[:, 1])
    active_right = _ActiveSet(right.lows[:, 1], right.highs[:, 1])
    next_left_removal = 0
    next_right_removal = 0
    total = 0

    for event in order:
        x = int(order_key[event])
        # Retire boxes that can no longer overlap anything starting at x.
        while next_left_removal < m:
            hi = int(left_hi_sorted[next_left_removal])
            expired = hi < x if closed else hi <= x
            if not expired:
                break
            idx = int(left_by_hi[next_left_removal])
            active_left.remove(int(left.lows[idx, 1]), int(left.highs[idx, 1]))
            next_left_removal += 1
        while next_right_removal < n:
            hi = int(right_hi_sorted[next_right_removal])
            expired = hi < x if closed else hi <= x
            if not expired:
                break
            idx = int(right_by_hi[next_right_removal])
            active_right.remove(int(right.lows[idx, 1]), int(right.highs[idx, 1]))
            next_right_removal += 1

        idx = int(indices[event])
        if sources[event] == 0:
            y_lo, y_hi = int(left.lows[idx, 1]), int(left.highs[idx, 1])
            total += active_right.count_overlapping(y_lo, y_hi, closed=closed)
            active_left.add(y_lo, y_hi)
        else:
            y_lo, y_hi = int(right.lows[idx, 1]), int(right.highs[idx, 1])
            total += active_left.count_overlapping(y_lo, y_hi, closed=closed)
            active_right.add(y_lo, y_hi)
    return total


def rectangle_join_count(left: BoxSet, right: BoxSet, *, closed: bool = False) -> int:
    """Exact ``|R join_o S|`` for hyper-rectangle sets of any dimensionality.

    Dispatches to the interval-join counter (d = 1), the plane sweep (d = 2,
    large inputs) or the chunked brute force (small inputs or d >= 3).
    """
    if left.dimension != right.dimension:
        raise DimensionalityError("inputs have different dimensionality")
    if left.dimension == 1:
        return interval_join_count(left, right, closed=closed)
    if left.dimension == 2 and len(left) + len(right) > 2000:
        return plane_sweep_join_count(left, right, closed=closed)
    return brute_force_join_count(left, right, closed=closed)


def rectangle_join_pairs(left: BoxSet, right: BoxSet, *, closed: bool = False
                         ) -> Iterator[tuple[int, int]]:
    """Yield result index pairs (small inputs; used by tests and the engine)."""
    if left.dimension != right.dimension:
        raise DimensionalityError("inputs have different dimensionality")
    for i in range(len(left)):
        l_lo, l_hi = left.lows[i], left.highs[i]
        if not closed and np.any(l_lo >= l_hi):
            continue
        for j in range(len(right)):
            r_lo, r_hi = right.lows[j], right.highs[j]
            if closed:
                hit = bool(np.all(l_lo <= r_hi) and np.all(r_lo <= l_hi))
            else:
                hit = bool(np.all(r_lo < r_hi) and np.all(l_lo < r_hi) and np.all(r_lo < l_hi))
            if hit:
                yield (i, j)


def join_selectivity(left: BoxSet, right: BoxSet, *, closed: bool = False) -> float:
    """Exact join selectivity ``|R join S| / (|R| * |S|)``."""
    if len(left) == 0 or len(right) == 0:
        return 0.0
    return rectangle_join_count(left, right, closed=closed) / (len(left) * len(right))
