"""Exact cardinality of the spatial join of two interval sets.

The strict join (Figure 3 cases 3-6) pairs intervals whose interiors
intersect: ``l(r) < u(s)`` and ``l(s) < u(r)``.  The extended join
(Appendix B.1) uses closed comparisons instead.  Counting is done by
sorting and binary search: the number of non-overlapping pairs decomposes
into "r entirely left of s" plus "s entirely left of r", which are both
rank queries.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import DimensionalityError
from repro.geometry.boxset import BoxSet


def _as_1d(boxes: BoxSet, name: str) -> tuple[np.ndarray, np.ndarray]:
    if boxes.dimension != 1:
        raise DimensionalityError(f"{name} must be one-dimensional intervals")
    return boxes.lows[:, 0], boxes.highs[:, 0]


def interval_join_count(left: BoxSet, right: BoxSet, *, closed: bool = False) -> int:
    """Exact ``|R join_o S|`` (or the extended join when ``closed`` is True).

    Degenerate (point) intervals never contribute to the strict join
    (Section 4.1) and are skipped; for the closed join they participate
    normally.  Runs in O((m + n) log(m + n)) time.
    """
    r_lo, r_hi = _as_1d(left, "left")
    s_lo, s_hi = _as_1d(right, "right")
    if not closed:
        keep_r = r_lo < r_hi
        keep_s = s_lo < s_hi
        r_lo, r_hi = r_lo[keep_r], r_hi[keep_r]
        s_lo, s_hi = s_lo[keep_s], s_hi[keep_s]
    m, n = len(r_lo), len(s_lo)
    if m == 0 or n == 0:
        return 0

    sorted_s_lo = np.sort(s_lo)
    sorted_s_hi = np.sort(s_hi)

    if closed:
        # Non-overlap (closed): r.hi < s.lo  or  s.hi < r.lo.
        right_of_r = n - np.searchsorted(sorted_s_lo, r_hi, side="right")
        left_of_r = np.searchsorted(sorted_s_hi, r_lo, side="left")
    else:
        # Non-overlap (strict): r.hi <= s.lo  or  s.hi <= r.lo.
        right_of_r = n - np.searchsorted(sorted_s_lo, r_hi, side="left")
        left_of_r = np.searchsorted(sorted_s_hi, r_lo, side="right")

    non_overlapping = int(np.sum(right_of_r) + np.sum(left_of_r))
    return m * n - non_overlapping


def interval_join_pairs(left: BoxSet, right: BoxSet, *, closed: bool = False
                        ) -> Iterator[tuple[int, int]]:
    """Yield the index pairs of the join result (small inputs; used by tests)."""
    r_lo, r_hi = _as_1d(left, "left")
    s_lo, s_hi = _as_1d(right, "right")
    for i in range(len(r_lo)):
        for j in range(len(s_lo)):
            if closed:
                hit = r_lo[i] <= s_hi[j] and s_lo[j] <= r_hi[i]
            else:
                hit = (r_lo[i] < r_hi[i] and s_lo[j] < s_hi[j]
                       and r_lo[i] < s_hi[j] and s_lo[j] < r_hi[i])
            if hit:
                yield (i, j)


def interval_self_join_count(boxes: BoxSet, *, closed: bool = False) -> int:
    """Exact self-join cardinality |R join_o R| (all ordered pairs, including (r, r))."""
    return interval_join_count(boxes, boxes, closed=closed)
