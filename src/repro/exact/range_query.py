"""Exact range-query evaluation (Section 6.4 ground truth)."""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionalityError
from repro.geometry.boxset import BoxSet
from repro.geometry.rectangle import Rect


def _query_bounds(query: Rect | BoxSet) -> tuple[np.ndarray, np.ndarray]:
    if isinstance(query, Rect):
        return (np.asarray(query.lows, dtype=np.int64),
                np.asarray(query.highs, dtype=np.int64))
    if len(query) != 1:
        raise DimensionalityError("a range query consists of exactly one rectangle")
    return query.lows[0], query.highs[0]


def range_query_mask(data: BoxSet, query: Rect | BoxSet, *, closed: bool = True) -> np.ndarray:
    """Boolean mask of the data rectangles selected by the query."""
    q_lo, q_hi = _query_bounds(query)
    if data.dimension != len(q_lo):
        raise DimensionalityError("query dimensionality does not match the data")
    if closed:
        per_dim = (data.lows <= q_hi) & (q_lo <= data.highs)
    else:
        per_dim = (data.lows < q_hi) & (q_lo < data.highs)
    return np.all(per_dim, axis=1)


def range_query_count(data: BoxSet, query: Rect | BoxSet, *, closed: bool = True) -> int:
    """Number of data rectangles overlapping the query rectangle."""
    if len(data) == 0:
        return 0
    return int(np.count_nonzero(range_query_mask(data, query, closed=closed)))


def range_query_select(data: BoxSet, query: Rect | BoxSet, *, closed: bool = True) -> BoxSet:
    """The data rectangles selected by the query, as a new BoxSet."""
    if len(data) == 0:
        return data
    mask = range_query_mask(data, query, closed=closed)
    if not np.any(mask):
        return BoxSet.empty(data.dimension)
    return data[mask]


def range_query_selectivity(data: BoxSet, query: Rect | BoxSet, *, closed: bool = True) -> float:
    """Fraction of data rectangles selected by the query."""
    if len(data) == 0:
        return 0.0
    return range_query_count(data, query, closed=closed) / len(data)
