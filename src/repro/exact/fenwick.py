"""A Fenwick tree (binary indexed tree) over a fixed-size integer range.

Used by the plane-sweep rectangle join to maintain dynamic counts of
active interval endpoints with O(log n) updates and prefix-sum queries.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DomainError


class FenwickTree:
    """Point updates and prefix-sum queries over positions ``0 .. size-1``."""

    __slots__ = ("_size", "_tree")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise DomainError("Fenwick tree size must be positive")
        self._size = int(size)
        self._tree = np.zeros(self._size + 1, dtype=np.int64)

    @property
    def size(self) -> int:
        return self._size

    def add(self, position: int, delta: int = 1) -> None:
        """Add ``delta`` to the count at ``position``."""
        if not 0 <= position < self._size:
            raise DomainError(f"position {position} outside [0, {self._size})")
        index = position + 1
        while index <= self._size:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, position: int) -> int:
        """Sum of counts at positions ``0 .. position`` (inclusive).

        ``position = -1`` is allowed and yields 0.
        """
        if position >= self._size:
            position = self._size - 1
        total = 0
        index = position + 1
        while index > 0:
            total += int(self._tree[index])
            index -= index & (-index)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of counts at positions ``lo .. hi`` (inclusive, may be empty)."""
        if hi < lo:
            return 0
        return self.prefix_sum(hi) - self.prefix_sum(lo - 1)

    def total(self) -> int:
        """Sum of all counts."""
        return self.prefix_sum(self._size - 1)
