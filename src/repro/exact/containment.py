"""Exact cardinality of containment joins (Appendix B.2 ground truth)."""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionalityError
from repro.geometry.boxset import BoxSet


def containment_join_count(outer: BoxSet, inner: BoxSet, *, chunk_size: int = 512) -> int:
    """Number of pairs ``(r, s)`` with ``s`` (inner) contained in ``r`` (outer).

    Containment is closed: ``l(r_i) <= l(s_i)`` and ``u(s_i) <= u(r_i)`` in
    every dimension.
    """
    if outer.dimension != inner.dimension:
        raise DimensionalityError("inputs have different dimensionality")
    if len(outer) == 0 or len(inner) == 0:
        return 0
    total = 0
    i_lo, i_hi = inner.lows, inner.highs
    for start in range(0, len(outer), chunk_size):
        stop = min(start + chunk_size, len(outer))
        o_lo = outer.lows[start:stop, None, :]
        o_hi = outer.highs[start:stop, None, :]
        contained = np.all((o_lo <= i_lo[None, :, :]) & (i_hi[None, :, :] <= o_hi), axis=2)
        total += int(np.count_nonzero(contained))
    return total
