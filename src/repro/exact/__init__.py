"""Exact spatial query processors.

These algorithms compute the true cardinalities that the sketches and
histograms estimate.  They serve two purposes: ground truth for the
relative-error experiments of Section 7, and reference oracles for the
test suite.
"""

from repro.exact.fenwick import FenwickTree
from repro.exact.interval_join import interval_join_count, interval_join_pairs
from repro.exact.rectangle_join import (
    brute_force_join_count,
    rectangle_join_count,
    rectangle_join_pairs,
)
from repro.exact.containment import containment_join_count
from repro.exact.epsilon_join import epsilon_join_count
from repro.exact.range_query import range_query_count, range_query_select

__all__ = [
    "FenwickTree",
    "interval_join_count",
    "interval_join_pairs",
    "rectangle_join_count",
    "rectangle_join_pairs",
    "brute_force_join_count",
    "containment_join_count",
    "epsilon_join_count",
    "range_query_count",
    "range_query_select",
]
