"""Exact cardinality of epsilon-joins of point sets (Section 6.3 ground truth).

The default algorithm hashes the B points onto a uniform grid with cell
side ``epsilon`` and, for every A point, inspects only the neighbouring
cells, giving near-linear behaviour for realistic point densities.  The
L-infinity distance is used, matching the estimator.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.errors import DimensionalityError, DomainError
from repro.geometry.boxset import PointSet


def epsilon_join_count(left: PointSet, right: PointSet, epsilon: int) -> int:
    """Number of pairs ``(a, b)`` with ``dist_inf(a, b) <= epsilon``."""
    if left.dimension != right.dimension:
        raise DimensionalityError("point sets have different dimensionality")
    if epsilon < 0:
        raise DomainError("epsilon must be non-negative")
    if len(left) == 0 or len(right) == 0:
        return 0
    if epsilon == 0:
        return _exact_match_count(left, right)

    cell = max(1, int(epsilon))
    grid: dict[tuple[int, ...], list[int]] = defaultdict(list)
    right_cells = right.coords // cell
    for index in range(len(right)):
        grid[tuple(int(c) for c in right_cells[index])].append(index)

    dims = left.dimension
    offsets = _neighbour_offsets(dims)
    left_cells = left.coords // cell
    total = 0
    for index in range(len(left)):
        a = left.coords[index]
        base = left_cells[index]
        for offset in offsets:
            key = tuple(int(c) for c in (base + offset))
            bucket = grid.get(key)
            if not bucket:
                continue
            candidates = right.coords[bucket]
            distances = np.max(np.abs(candidates - a), axis=1)
            total += int(np.count_nonzero(distances <= epsilon))
    return total


def _neighbour_offsets(dims: int) -> list[np.ndarray]:
    offsets = [np.zeros(0, dtype=np.int64)]
    for _ in range(dims):
        offsets = [np.concatenate([prefix, np.array([delta], dtype=np.int64)])
                   for prefix in offsets for delta in (-1, 0, 1)]
    return offsets


def _exact_match_count(left: PointSet, right: PointSet) -> int:
    """Pairs of identical points (epsilon = 0)."""
    def counts(points: PointSet) -> dict[tuple[int, ...], int]:
        result: dict[tuple[int, ...], int] = defaultdict(int)
        for index in range(len(points)):
            result[points.point(index)] += 1
        return result

    left_counts = counts(left)
    right_counts = counts(right)
    return sum(count * right_counts.get(point, 0) for point, count in left_counts.items())


def epsilon_join_selectivity(left: PointSet, right: PointSet, epsilon: int) -> float:
    """Exact epsilon-join selectivity."""
    if len(left) == 0 or len(right) == 0:
        return 0.0
    return epsilon_join_count(left, right, epsilon) / (len(left) * len(right))
