"""Spawn local worker subprocesses for a cluster.

The CLI's ``cluster serve``, the cluster benchmark, and the demo all need
the same primitive: start ``repro.cli serve --listen 127.0.0.1:0`` in a
subprocess, parse the JSON banner it prints for the bound port, and tear
it down afterwards.  :func:`spawn_worker` does one; :class:`LocalFleet`
manages N as a context manager.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import dataclass, field

from repro.errors import ServiceError


def _worker_env() -> dict[str, str]:
    """A subprocess environment that can ``import repro`` like we can."""
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (package_root + os.pathsep + existing
                         if existing else package_root)
    return env


@dataclass
class WorkerProcess:
    """One spawned worker: the subprocess plus its bound address."""

    process: subprocess.Popen
    host: str
    port: int
    banner: dict = field(default_factory=dict)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def stop(self, timeout: float = 30.0) -> None:
        if self.process.poll() is None:
            self.process.terminate()
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - last resort
            self.process.kill()
            self.process.wait(timeout=timeout)


def spawn_worker(*, snapshot: str | None = None, shards: int = 4,
                 max_batch: int = 64, max_delay_ms: float = 2.0,
                 host: str = "127.0.0.1", wal_dir: str | None = None,
                 wal_sync: str | None = None,
                 extra_args: tuple[str, ...] = ()) -> WorkerProcess:
    """Start one ``serve --listen`` worker subprocess on a free port.

    ``wal_dir`` makes the worker durable (``serve --wal-dir``): it
    recovers from the directory on start and write-ahead-logs every
    ingest; ``wal_sync`` picks the flush discipline (none/flush/fsync).
    """
    command = [sys.executable, "-m", "repro.cli", "serve",
               "--listen", f"{host}:0", "--shards", str(shards),
               "--max-batch", str(max_batch),
               "--max-delay-ms", str(max_delay_ms)]
    if snapshot is not None:
        command += ["--snapshot", str(snapshot)]
    if wal_dir is not None:
        command += ["--wal-dir", str(wal_dir)]
    if wal_sync is not None:
        command += ["--wal-sync", str(wal_sync)]
    command += list(extra_args)
    process = subprocess.Popen(command, stdout=subprocess.PIPE,
                               stderr=subprocess.DEVNULL, env=_worker_env(),
                               text=True)
    assert process.stdout is not None
    line = process.stdout.readline()
    if not line:
        process.terminate()
        process.wait(timeout=30)
        raise ServiceError("worker subprocess exited before announcing "
                           "its port")
    try:
        banner = json.loads(line)
        port = int(str(banner["listening"]).rsplit(":", 1)[1])
    except (json.JSONDecodeError, KeyError, ValueError) as exc:
        process.terminate()
        process.wait(timeout=30)
        raise ServiceError(f"malformed worker banner {line!r}: {exc}") from exc
    return WorkerProcess(process=process, host=host, port=port, banner=banner)


class LocalFleet:
    """N worker subprocesses with deterministic teardown.

    ::

        with LocalFleet(3, snapshot="svc.sketch") as fleet:
            handle = ThreadedClusterRouter(fleet.addresses())
            ...
    """

    def __init__(self, count: int, *, snapshot: str | None = None,
                 shards: int = 4, max_batch: int = 64,
                 max_delay_ms: float = 2.0,
                 extra_args: tuple[str, ...] = ()) -> None:
        if count < 1:
            raise ServiceError("a fleet needs at least one worker")
        self.count = int(count)
        self._spawn_kwargs = dict(snapshot=snapshot, shards=shards,
                                  max_batch=max_batch,
                                  max_delay_ms=max_delay_ms,
                                  extra_args=extra_args)
        self.workers: list[WorkerProcess] = []

    def start(self) -> "LocalFleet":
        try:
            for _ in range(self.count):
                self.workers.append(spawn_worker(**self._spawn_kwargs))
        except BaseException:
            self.stop()
            raise
        return self

    def spawn_extra(self, **overrides) -> WorkerProcess:
        """One more worker (e.g. an empty process to bootstrap as replica)."""
        kwargs = dict(self._spawn_kwargs)
        kwargs.update(overrides)
        worker = spawn_worker(**kwargs)
        self.workers.append(worker)
        return worker

    def addresses(self) -> list[tuple[str, int]]:
        return [(worker.host, worker.port) for worker in self.workers]

    def stop(self) -> None:
        for worker in self.workers:
            worker.stop()
        self.workers.clear()

    def __enter__(self) -> "LocalFleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
