"""One pipelined asyncio NDJSON connection from the router to a worker.

:class:`WorkerLink` mirrors what :class:`~repro.client.ServiceClient` does
synchronously: because a sketch server answers **in request order**, a
single connection pipelines — writes append a future to a FIFO, one reader
task resolves futures as reply lines arrive.  The router keeps exactly one
link per worker and multiplexes every scatter over it; a connection loss
fails all in-flight futures with
:class:`~repro.errors.ConnectionLostError` so the health checker can react.
"""

from __future__ import annotations

import asyncio
from collections import deque

from repro.errors import ConnectionLostError
from repro.server import protocol


class WorkerLink:
    """A persistent, pipelining connection to one worker server."""

    def __init__(self, host: str, port: int, *,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: deque[asyncio.Future] = deque()
        self._closed = False

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def connected(self) -> bool:
        return self._writer is not None and not self._closed

    # -- lifecycle ----------------------------------------------------------------

    async def connect(self) -> "WorkerLink":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=protocol.MAX_LINE_BYTES)
        self._closed = False
        self._reader_task = asyncio.create_task(self._read_loop())
        return self

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    raise ConnectionLostError(
                        f"worker {self.address} closed the connection")
                if self._pending:
                    future = self._pending.popleft()
                    # A future may already be cancelled (request timeout);
                    # its in-order reply still had to be consumed to keep
                    # later replies aligned with later futures.
                    if not future.done():
                        future.set_result(line)
        except asyncio.CancelledError:
            self._fail_pending(ConnectionLostError(
                f"link to worker {self.address} was closed"))
            raise
        except Exception as exc:
            self._fail_pending(exc if isinstance(exc, ConnectionLostError)
                               else ConnectionLostError(
                                   f"worker {self.address} connection failed: "
                                   f"{exc}"))

    def _fail_pending(self, exc: Exception) -> None:
        self._closed = True
        while self._pending:
            future = self._pending.popleft()
            if not future.done():
                future.set_exception(exc)

    async def close(self) -> None:
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._fail_pending(ConnectionLostError(
            f"link to worker {self.address} was closed"))

    # -- requests -----------------------------------------------------------------

    async def request_raw(self, line: bytes,
                          timeout: float | None = None) -> bytes:
        """Send one pre-encoded frame; await its raw reply line.

        This is the router's passthrough fast path: a request forwarded
        byte-for-byte comes back byte-for-byte, so single-owner estimates
        carry the worker's exact JSON rendering to the client.
        """
        if self._writer is None or self._closed:
            raise ConnectionLostError(
                f"link to worker {self.address} is not connected")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        # Append before the first await so replies stay aligned with the
        # FIFO even when several coroutines write concurrently.
        self._pending.append(future)
        try:
            self._writer.write(line)
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            if not future.done():
                future.set_exception(ConnectionLostError(
                    f"worker {self.address} connection failed: {exc}"))
        return await asyncio.wait_for(future, timeout or self.timeout)

    async def request(self, payload: dict,
                      timeout: float | None = None) -> dict:
        """One decoded (but unchecked) request/response round trip."""
        line = await self.request_raw(protocol.encode(payload), timeout)
        return protocol.decode(line)

    async def request_ok(self, payload: dict,
                         timeout: float | None = None) -> dict:
        """Round trip that raises the typed error of an ``ok: false`` reply."""
        return protocol.raise_for_response(await self.request(payload,
                                                              timeout))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "connected" if self.connected else "disconnected"
        return f"WorkerLink({self.address}, {state})"
