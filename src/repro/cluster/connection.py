"""One pipelined asyncio connection from the router to a worker.

:class:`WorkerLink` mirrors what :class:`~repro.client.ServiceClient` does
synchronously: because a sketch server answers **in request order**, a
single connection pipelines — writes append a future to a FIFO, one reader
task resolves futures as reply frames arrive.  The router keeps exactly one
link per worker and multiplexes every scatter over it; a connection loss
fails all in-flight futures with
:class:`~repro.errors.ConnectionLostError` so the health checker can react.

Links default to ``wire="auto"``: on connect they offer the binary frame
handshake (:mod:`repro.server.wire`) and fall back to NDJSON against
servers that refuse it.  Router↔worker traffic is where the binary format
pays the most — box fan-out, partial-state gathers, log shipping and
replica bootstrap all cross this hop — so the fleet negotiates it by
default while external clients stay on NDJSON unless asked.
"""

from __future__ import annotations

import asyncio
from collections import deque

from repro.errors import ConnectionLostError, ProtocolError
from repro.server import protocol, wire


class WorkerLink:
    """A persistent, pipelining connection to one worker server."""

    def __init__(self, host: str, port: int, *,
                 timeout: float = 60.0, wire: str = "auto",
                 token: str | None = None) -> None:
        if wire not in ("ndjson", "binary", "auto"):
            raise ProtocolError(
                f"wire must be 'ndjson', 'binary' or 'auto', got {wire!r}")
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.wire = wire  # the preference; self.mode is what negotiation got
        self.token = token  # admin token binding the link on connect
        self._mode = "ndjson"
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: deque[asyncio.Future] = deque()
        self._closed = False

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def connected(self) -> bool:
        return self._writer is not None and not self._closed

    @property
    def mode(self) -> str:
        """The wire format this link actually negotiated."""
        return self._mode

    # -- lifecycle ----------------------------------------------------------------

    async def connect(self) -> "WorkerLink":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=protocol.MAX_LINE_BYTES)
        self._closed = False
        self._mode = wire.WIRE_NDJSON
        # Negotiation and authentication both run inline, before the reader
        # task exists: their replies are the only frames ever read outside
        # the read loop, so the loop starts with the connection already in
        # its final format and (when tenancy is on) already authenticated.
        try:
            if self.wire != "ndjson":
                await self._negotiate()
            if self.token is not None:
                await self._authenticate()
        except BaseException:
            await self.close()
            raise
        self._reader_task = asyncio.create_task(self._read_loop())
        return self

    async def _negotiate(self) -> None:
        assert self._reader is not None and self._writer is not None
        self._writer.write(protocol.encode(
            wire.hello_payload(wire.WIRE_BINARY)))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionLostError(
                f"worker {self.address} closed the connection during the "
                "wire handshake")
        reply = protocol.decode(line)
        if reply.get("ok"):
            self._mode = wire.WIRE_BINARY
        elif self.wire == "binary":
            protocol.raise_for_response(reply)

    async def _authenticate(self) -> None:
        assert self._reader is not None and self._writer is not None
        self._writer.write(wire.encode_frame(
            {"op": "auth", "token": self.token}, self._mode))
        await self._writer.drain()
        if self._mode == wire.WIRE_BINARY:
            reply, _ = await wire.read_binary_frame(self._reader,
                                                    protocol.MAX_LINE_BYTES)
        else:
            line = await self._reader.readline()
            if not line:
                raise ConnectionLostError(
                    f"worker {self.address} closed the connection during "
                    "authentication")
            reply = protocol.decode(line)
        protocol.raise_for_response(reply)

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                if self._mode == wire.WIRE_BINARY:
                    reply, _ = await wire.read_binary_frame(
                        self._reader, protocol.MAX_LINE_BYTES)
                else:
                    line = await self._reader.readline()
                    if not line:
                        raise ConnectionLostError(
                            f"worker {self.address} closed the connection")
                    reply = protocol.decode(line)
                if self._pending:
                    future = self._pending.popleft()
                    # A future may already be cancelled (request timeout);
                    # its in-order reply still had to be consumed to keep
                    # later replies aligned with later futures.
                    if not future.done():
                        future.set_result(reply)
        except asyncio.CancelledError:
            self._fail_pending(ConnectionLostError(
                f"link to worker {self.address} was closed"))
            raise
        except Exception as exc:
            self._fail_pending(exc if isinstance(exc, ConnectionLostError)
                               else ConnectionLostError(
                                   f"worker {self.address} connection failed: "
                                   f"{exc}"))

    def _fail_pending(self, exc: Exception) -> None:
        self._closed = True
        while self._pending:
            future = self._pending.popleft()
            if not future.done():
                future.set_exception(exc)

    async def close(self) -> None:
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._fail_pending(ConnectionLostError(
            f"link to worker {self.address} was closed"))

    # -- requests -----------------------------------------------------------------

    async def request(self, payload: dict,
                      timeout: float | None = None) -> dict:
        """One decoded (but unchecked) request/response round trip."""
        if self._writer is None or self._closed:
            raise ConnectionLostError(
                f"link to worker {self.address} is not connected")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        # Append before the first await so replies stay aligned with the
        # FIFO even when several coroutines write concurrently.
        self._pending.append(future)
        try:
            self._writer.write(wire.encode_frame(payload, self._mode))
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            if not future.done():
                future.set_exception(ConnectionLostError(
                    f"worker {self.address} connection failed: {exc}"))
        return await asyncio.wait_for(future, timeout or self.timeout)

    async def request_ok(self, payload: dict,
                         timeout: float | None = None) -> dict:
        """Round trip that raises the typed error of an ``ok: false`` reply."""
        return protocol.raise_for_response(await self.request(payload,
                                                              timeout))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "connected" if self.connected else "disconnected"
        return f"WorkerLink({self.address}, {state}, wire={self._mode})"
