"""A consistent-hash ring mapping shard slots to workers.

The router hash-partitions boxes into ``num_slots`` shard slots with the
exact same deterministic mix the in-process
:class:`~repro.service.store.ShardedSketchStore` uses
(:func:`repro.service.store.shard_ids`), then resolves each slot to a
worker through this ring.  Consistent hashing gives the two properties a
growing fleet needs:

* **stability** — the assignment is a pure function of the worker *set*
  (never of insertion order or process state): every router instance, and
  every restart, derives the identical slot map,
* **minimal movement** — adding a worker steals slots only *for the new
  worker*; the expected moved fraction is ~1/N, so rebalancing a fleet of
  N workers never reshuffles the other N-1.

Hashes come from blake2b, never from Python's per-process-salted
``hash()``.  Each worker contributes ``vnodes`` points ("virtual nodes"),
which evens out assignment skew between workers.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Iterator

from repro.errors import ServiceError

#: Virtual nodes per worker: more points = smoother slot balance, at the
#: cost of a (still tiny) sorted point list.
DEFAULT_VNODES = 64


def stable_hash(text: str) -> int:
    """A process-stable 64-bit hash of a string (blake2b, not ``hash()``)."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hashing of integer shard slots onto named workers."""

    def __init__(self, workers: Iterable[str] = (), *,
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ServiceError("a hash ring needs at least one vnode per worker")
        self._vnodes = int(vnodes)
        self._workers: set[str] = set()
        # Ascending (point hash, worker) pairs; rebuilt keys for bisect.
        self._points: list[tuple[int, str]] = []
        self._keys: list[int] = []
        for worker in workers:
            self.add(worker)

    # -- membership ---------------------------------------------------------------

    def add(self, worker: str) -> None:
        if not worker:
            raise ServiceError("worker names must be non-empty")
        if worker in self._workers:
            raise ServiceError(f"worker {worker!r} is already on the ring")
        self._workers.add(worker)
        for index in range(self._vnodes):
            point = stable_hash(f"{worker}#{index}")
            position = bisect.bisect_left(self._keys, point)
            # Equal hash points are ordered by worker name so ties resolve
            # identically on every router instance.
            while (position < len(self._points)
                   and self._points[position][0] == point
                   and self._points[position][1] < worker):
                position += 1
            self._points.insert(position, (point, worker))
            self._keys.insert(position, point)

    def remove(self, worker: str) -> None:
        if worker not in self._workers:
            raise ServiceError(f"worker {worker!r} is not on the ring")
        self._workers.discard(worker)
        self._points = [entry for entry in self._points if entry[1] != worker]
        self._keys = [point for point, _ in self._points]

    def workers(self) -> list[str]:
        return sorted(self._workers)

    def __contains__(self, worker: str) -> bool:
        return worker in self._workers

    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self) -> Iterator[str]:
        return iter(self.workers())

    # -- assignment ---------------------------------------------------------------

    def owner(self, slot: int) -> str:
        """The worker owning one shard slot (first ring point clockwise)."""
        if not self._points:
            raise ServiceError("the hash ring has no workers")
        point = stable_hash(f"slot:{int(slot)}")
        index = bisect.bisect_right(self._keys, point)
        if index == len(self._points):
            index = 0  # wrap around the ring
        return self._points[index][1]

    def assignments(self, num_slots: int) -> list[str]:
        """Owner of every slot in ``range(num_slots)``."""
        if num_slots < 1:
            raise ServiceError("num_slots must be at least 1")
        return [self.owner(slot) for slot in range(num_slots)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HashRing(workers={self.workers()}, vnodes={self._vnodes})"
