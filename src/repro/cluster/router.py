"""The scatter-gather cluster router.

:class:`ClusterRouter` is an asyncio TCP server that speaks the exact
NDJSON protocol of :mod:`repro.server.protocol` on its client side and
drives a fleet of :class:`~repro.server.server.SketchServer` workers over
the same protocol on the other — one :class:`~repro.client.ServiceClient`
works unchanged against a single server or a whole cluster.

Request routing:

* ``ingest`` — boxes are hash-partitioned into ``num_slots`` shard slots
  with the *same* deterministic mix the in-process sharded store uses
  (:func:`repro.service.store.shard_ids`), slots resolve to owner groups
  through the consistent-hash ring, and each owner's sub-batch is fanned
  to the owner **and every healthy replica** in parallel (linear sketches
  keep the mirrors bit-identical).
* ``estimate`` — one owner group means one worker already holds all data:
  the request is forwarded to a round-robin reader (replica reads are what
  scale estimate QPS).  Several owner groups scatter ``partial: true``
  estimates, gather shard-local merged counter states, and reduce them at
  the router with one vectorised merge before the ordinary boosted
  reduction — bit-identical to a single-node service (see
  :mod:`repro.cluster.partial`).
* degraded mode — when an owner group has no healthy member, ingest
  applies the surviving portion and reports a structured ``degraded``
  error (applied/dropped counts, down owners); estimates touching the dead
  group fail with the same taxonomy until a replacement is bootstrapped.

The per-connection pipelining (in-order replies, bounded in-flight
requests) mirrors :class:`~repro.server.server.SketchServer`.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.cluster.manager import ClusterManager, HeartbeatConfig, WorkerInfo
from repro.cluster.partial import reduce_partials
from repro.cluster.ring import DEFAULT_VNODES
from repro.errors import (
    AuthenticationError,
    ConnectionLostError,
    ReproError,
    ServiceError,
)
from repro.server import auth, protocol, wire
from repro.server.metrics import ServerMetrics, label_value
from repro.tenancy import TenantAdmission, TenantQuota, hash_token
from repro.service.specs import EstimatorSpec
from repro.service.store import shard_ids


@dataclass(frozen=True)
class RouterConfig:
    """Tunables of one :class:`ClusterRouter`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the OS pick
    num_slots: int = 64  # shard slots hashed onto the ring
    vnodes: int = DEFAULT_VNODES
    request_timeout: float = 60.0
    max_inflight_per_connection: int = 128
    max_line_bytes: int = protocol.MAX_LINE_BYTES
    executor_workers: int = 4
    binary_wire: bool = True  # offer binary frames to router clients
    worker_wire: str = "auto"  # wire preference on router -> worker links
    admin_token: str | None = None  # admin role on the router's client side
    worker_token: str | None = None  # presented on router -> worker links

    def __post_init__(self) -> None:
        if self.num_slots < 1:
            raise ServiceError("num_slots must be positive")
        if self.max_inflight_per_connection < 1:
            raise ServiceError("max_inflight_per_connection must be positive")


class ClusterRouter:
    """N sketch workers behind one protocol-compatible endpoint."""

    def __init__(self, *, config: RouterConfig | None = None,
                 manager: ClusterManager | None = None,
                 heartbeat: HeartbeatConfig | None = None,
                 registry=None) -> None:
        self.config = config or RouterConfig()
        self.manager = manager or ClusterManager(
            vnodes=self.config.vnodes, heartbeat=heartbeat,
            request_timeout=self.config.request_timeout,
            wire=self.config.worker_wire,
            worker_token=self.config.worker_token)
        self.metrics = ServerMetrics()
        self._specs: dict[str, EstimatorSpec] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._tcp_server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        # (ring membership, slot -> owner list) assignment cache.
        self._assignment_cache: tuple[tuple[str, ...], list[str]] | None = None
        # Tenancy: the router is the authenticating edge of a fleet — it
        # holds the registry, charges quotas, and forwards tenant identity
        # (already-namespaced names + a ``tenant`` label) over its
        # admin-authenticated worker links.
        self.tenants = registry
        self._admin_token_hash = (hash_token(self.config.admin_token)
                                  if self.config.admin_token else None)
        self._admissions: dict[str, TenantAdmission] = {}

    def enable_tenancy(self, registry=None):
        """Attach (or create) the router's tenant registry; idempotent."""
        from repro.tenancy import TenantRegistry

        if self.tenants is None:
            self.tenants = registry if registry is not None else TenantRegistry()
        elif registry is not None and registry is not self.tenants:
            raise ServiceError("router already has a tenant registry")
        return self.tenants

    # -- lifecycle ----------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._tcp_server is None:
            raise ServiceError("router is not started")
        return self._tcp_server.sockets[0].getsockname()[1]

    async def start(self) -> "ClusterRouter":
        cfg = self.config
        self._executor = ThreadPoolExecutor(
            max_workers=cfg.executor_workers,
            thread_name_prefix="cluster-router")
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, host=cfg.host, port=cfg.port,
            limit=cfg.max_line_bytes)
        return self

    async def serve_forever(self) -> None:
        if self._tcp_server is None:
            await self.start()
        assert self._tcp_server is not None
        await self._tcp_server.serve_forever()

    async def close(self) -> None:
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        for writer in list(self._connections):
            writer.close()
        while self._connections:
            await asyncio.sleep(0.01)
        await self.manager.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    async def _run_blocking(self, func, *args):
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, func, *args)

    # -- topology -----------------------------------------------------------------

    async def attach(self, name: str, host: str, port: int) -> WorkerInfo:
        """Register a shard worker, reconciling estimator specs both ways.

        Specs the worker serves (e.g. loaded from a snapshot) are adopted
        by the router; specs the router already knows are registered on
        the worker as empty estimators — an empty sketch contributes zero
        counters, so the scatter-gather reduction stays exact across a
        fleet attached in any order.
        """
        info = await self.manager.add_worker(name, host, port, role="shard")
        self._assignment_cache = None
        await self._reconcile_specs(info)
        return info

    async def bootstrap_replica(self, name: str, host: str, port: int, *,
                                source: str, sync: str = "fanout"
                                ) -> WorkerInfo:
        """Attach a read replica bootstrapped from a shard worker.

        ``sync="wal"`` attaches a log-shipped follower (caught up via
        :meth:`ClusterManager.sync_follower`) instead of a fan-out mirror.
        """
        return await self.manager.bootstrap_replica(name, host, port,
                                                    source=source, sync=sync)

    async def _reconcile_specs(self, info: WorkerInfo) -> None:
        stats = await info.link.request_ok({"op": "stats"})
        served = set()
        for name, spec_dict in stats.get("estimators", {}).items():
            served.add(name)
            self._specs.setdefault(name, EstimatorSpec.from_dict(spec_dict))
        for name, spec in self._specs.items():
            if name not in served:
                await info.link.request_ok({
                    "op": "register", "name": name, "family": spec.family,
                    "sizes": list(spec.sizes),
                    "instances": spec.num_instances, "seed": spec.seed,
                    "options": dict(spec.options)})

    async def refresh_specs(self) -> dict[str, EstimatorSpec]:
        """Adopt estimator specs from the whole fleet (snapshot starts)."""
        for info in self.manager.workers():
            if not info.healthy:
                continue
            try:
                stats = await info.link.request_ok({"op": "stats"})
            except (ReproError, ConnectionLostError):
                continue
            for name, spec_dict in stats.get("estimators", {}).items():
                self._specs.setdefault(name,
                                       EstimatorSpec.from_dict(spec_dict))
        return dict(self._specs)

    def estimators(self) -> list[str]:
        """Names of every estimator the router currently knows."""
        return sorted(self._specs)

    async def _spec_for(self, name: str) -> EstimatorSpec:
        spec = self._specs.get(name)
        if spec is None:
            await self.refresh_specs()
            spec = self._specs.get(name)
        if spec is None:
            raise ServiceError(f"unknown estimator {name!r}; registered: "
                               f"{sorted(self._specs)}")
        return spec

    def _assignments(self) -> list[str]:
        """Slot -> owner map, cached per ring membership."""
        members = tuple(self.manager.ring.workers())
        cache = self._assignment_cache
        if cache is None or cache[0] != members:
            owners = self.manager.ring.assignments(self.config.num_slots)
            cache = self._assignment_cache = (members, owners)
        return cache[1]

    def _owner_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for owner in self._assignments():
            seen.setdefault(owner)
        return list(seen)

    # -- connection handling (shared with SketchServer) ---------------------------

    @property
    def wire_formats(self) -> tuple[str, ...]:
        """Formats this router offers in the ``hello`` handshake."""
        if self.config.binary_wire:
            return wire.WIRE_FORMATS
        return (wire.WIRE_NDJSON,)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.metrics.connections_opened += 1
        self.metrics.connections_active += 1
        self._connections.add(writer)
        try:
            await wire.serve_connection(self, reader, writer)
        finally:
            self.metrics.connections_active -= 1
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- authentication and tenant scoping ----------------------------------------

    def authenticate(self, request: dict) -> tuple[dict, str | None]:
        """Resolve an ``auth`` request: ``(reply, bound principal | None)``."""
        return auth.authenticate_request(self.tenants,
                                         self._admin_token_hash, request)

    def _admission(self, record) -> TenantAdmission:
        now = asyncio.get_running_loop().time()
        entry = self._admissions.get(record.tenant_id)
        if entry is None or entry.quota != record.quota:
            entry = TenantAdmission(record.tenant_id, record.quota, now=now)
            self._admissions[record.tenant_id] = entry
        return entry

    async def _admitted(self, handler, request: dict,
                        scope: auth.Scope) -> dict:
        """Run a handler under the scope tenant's quota accounting.

        The router is the fleet's authenticating edge: quotas are charged
        here exactly once, and forwarded worker requests carry
        ``scoped: true`` so workers never re-charge them.
        """
        op = str(request.get("op"))
        entry = self._admission(scope.record)
        if op == "ingest":
            boxes = request.get("boxes")
            count = len(boxes) if isinstance(boxes, (list, tuple)) else 1
            entry.admit_ingest(count, asyncio.get_running_loop().time())
            return await handler(self, request, scope)
        if op == "estimate":
            entry.acquire_estimate()
            try:
                return await handler(self, request, scope)
            finally:
                entry.release_estimate()
        return await handler(self, request, scope)

    # -- request dispatch ---------------------------------------------------------

    async def _process(self, request: dict,
                       principal: str | None = None) -> dict:
        op = str(request.get("op"))
        try:
            scope = auth.resolve_scope(self.tenants, principal, request)
        except ReproError as exc:
            return protocol.error_payload_for(exc, op=op, request=request)
        tenant = scope.tenant
        scoped_request = dict(scope.request)
        if tenant is not None:
            self.metrics.record_tenant_request(tenant, op)
            # Worker links are admin-authenticated; the tenant label rides
            # in the forwarded payload so workers attribute metrics and
            # fair-share queueing to the right tenant.
            scoped_request.setdefault("tenant", tenant)
        try:
            if op == "tenant":
                payload = await self._op_tenant(scoped_request, principal)
            else:
                handler = self._HANDLERS.get(op)
                if handler is None:
                    payload = protocol.error_payload(
                        f"unknown op {op!r}", code="unknown_op", op=op,
                        request=request)
                elif scope.enforce_quota:
                    payload = await self._admitted(handler, scoped_request,
                                                   scope)
                else:
                    payload = await handler(self, scoped_request, scope)
        except ConnectionLostError as exc:
            # A worker died mid-request: that is a *cluster* degradation,
            # not a client protocol problem.
            payload = protocol.error_payload(
                f"worker connection lost: {exc}", code="degraded", op=op,
                request=request, detail={"op": op})
        except Exception as exc:
            payload = protocol.error_payload_for(exc, op=op, request=request)
        if tenant is not None:
            if not payload.get("ok"):
                if payload.get("error_code") == "quota_exceeded":
                    self.metrics.record_quota_rejection(tenant)
                else:
                    self.metrics.record_tenant_error(tenant)
            payload = auth.unscope_reply(payload, tenant)
        return payload

    async def _op_ping(self, request: dict, scope=None) -> dict:
        return protocol.ok_payload("ping", request,
                                   version=protocol.PROTOCOL_VERSION,
                                   cluster=True)

    async def _op_register(self, request: dict, scope=None) -> dict:
        spec = EstimatorSpec.create(
            request["family"], request["sizes"],
            int(request.get("instances", 256)),
            seed=int(request.get("seed", 0)),
            **request.get("options", {}))
        name = str(request["name"])
        if name in self._specs:
            raise ServiceError(f"estimator {name!r} is already registered")
        await self.manager.broadcast({
            "op": "register", "name": name, "family": spec.family,
            "sizes": list(spec.sizes),
            "instances": spec.num_instances, "seed": spec.seed,
            "options": dict(spec.options), **_forward_fields(request)})
        self._specs[name] = spec
        return protocol.ok_payload("register", request, name=name,
                                   spec=spec.to_dict())

    async def _op_unregister(self, request: dict, scope=None) -> dict:
        name = str(request["name"])
        if name not in self._specs:
            raise ServiceError(f"unknown estimator {name!r}; registered: "
                               f"{sorted(self._specs)}")
        await self.manager.broadcast({"op": "unregister", "name": name,
                                      **_forward_fields(request)})
        del self._specs[name]
        return protocol.ok_payload("unregister", request, name=name)

    async def _op_ingest(self, request: dict, scope=None) -> dict:
        name = str(request["name"])
        spec = await self._spec_for(name)
        boxes = protocol.boxes_from_rows(request["boxes"], spec.dimension)
        side = request.get("side", "left")
        kind = request.get("kind", "insert")
        # Re-partition from the validated BoxSet, not the request value:
        # the rows may have arrived as a zero-copy binary tensor or as
        # JSON lists, and ndarray row-gathering serves both — each owner's
        # sub-batch is then itself a tensor, which re-encodes to raw bytes
        # on binary worker links.
        rows = np.hstack([boxes.lows, boxes.highs])
        # The same deterministic hash the in-process store uses, taken over
        # num_slots: inserts and their deletes always meet on one owner.
        slots = shard_ids(boxes, self.config.num_slots)
        assignments = self._assignments()
        per_owner_rows: dict[str, list[int]] = {}
        for index, slot in enumerate(slots):
            per_owner_rows.setdefault(assignments[int(slot)], []).append(
                index)
        per_owner = {owner: rows[np.asarray(indices, dtype=np.intp)]
                     for owner, indices in per_owner_rows.items()}

        applied = 0
        pending = 0
        dropped = 0
        down: list[str] = []

        async def send(info: WorkerInfo, part: np.ndarray) -> dict:
            # Binary links ship the sub-batch tensor raw; NDJSON links
            # render it to lists via the encoder's json_default hook.
            return await info.link.request_ok({
                "op": "ingest", "name": name, "boxes": part,
                "side": side, "kind": kind, **_forward_fields(request)})

        sends: list = []
        counted: list[int] = []
        for owner, part in per_owner.items():
            writers = self.manager.writers(owner)
            if not writers:
                dropped += len(part)
                down.append(owner)
                continue
            applied += len(part)
            for info in writers:
                sends.append(send(info, part))
                counted.append(len(part))
        replies = await asyncio.gather(*sends)
        pending = max((reply.get("pending", 0) for reply in replies),
                      default=0)
        if dropped:
            return protocol.error_payload(
                f"cluster degraded: {len(down)} owner group(s) down, "
                f"{dropped} of {len(boxes)} boxes dropped",
                code="degraded", op="ingest", request=request,
                detail={"op": "ingest", "name": name, "applied": applied,
                        "dropped": dropped, "down_owners": sorted(down)})
        return protocol.ok_payload("ingest", request, boxes=applied,
                                   pending=pending)

    async def _op_estimate(self, request: dict, scope=None) -> dict:
        name = str(request["name"])
        spec = await self._spec_for(name)
        row = request.get("query")
        if spec.info.queryable:
            if row is None:
                raise ServiceError(
                    f"family {spec.family!r} estimates need a query rectangle")
            query = protocol.boxes_from_rows([row], spec.dimension)
        else:
            if row is not None:
                raise ServiceError(
                    f"family {spec.family!r} does not take a query argument")
            query = None

        owners = self._owner_names()
        readers: dict[str, WorkerInfo] = {}
        down: list[str] = []
        for owner in owners:
            reader = self.manager.reader(owner)
            if reader is None:
                down.append(owner)
            else:
                readers[owner] = reader
        if down:
            return protocol.error_payload(
                f"cluster degraded: owner group(s) {sorted(down)} have no "
                f"healthy worker",
                code="degraded", op="estimate", request=request,
                detail={"op": "estimate", "name": name,
                        "down_owners": sorted(down)})

        start = time.perf_counter()
        if len(readers) == 1:
            # One owner group holds *all* the data (a single worker, or a
            # primary with read replicas): forward the request whole and
            # pass the worker's reply through — replicas are bit-identical
            # mirrors, so every member answers the same numbers.
            (reader,) = readers.values()
            reply = await reader.link.request(
                dict(request), timeout=self.config.request_timeout)
            if reply.get("ok"):
                self.metrics.record_estimate_latency(
                    time.perf_counter() - start)
            return reply

        # Scatter: every owner group contributes its shard-local merged
        # state; the reduction happens once, at the router.  Binary links
        # ask for the arrays encoding — the counter matrix and stacked xi
        # coefficients then cross the wire as raw tensors instead of JSON
        # number lists (the dominant cost of a wide scatter).
        async def gather(info: WorkerInfo) -> Mapping:
            payload = {"op": "estimate", "name": name, "partial": True,
                       **_forward_fields(request)}
            if info.link.mode == wire.WIRE_BINARY:
                payload["encoding"] = "arrays"
            reply = await info.link.request_ok(
                payload, timeout=self.config.request_timeout)
            return reply["state"]

        states = await asyncio.gather(*(gather(info)
                                        for info in readers.values()))
        result = await self._run_blocking(reduce_partials, spec, states,
                                          query)
        self.metrics.record_estimate_latency(time.perf_counter() - start)
        return protocol.ok_payload("estimate", request, name=name,
                                   **protocol.estimate_fields(result))

    async def _op_flush(self, request: dict, scope=None) -> dict:
        replies = await self.manager.broadcast({"op": "flush"})
        return protocol.ok_payload(
            "flush", request,
            boxes=sum(reply.get("boxes", 0) for reply in replies.values()),
            batches=sum(reply.get("batches", 0)
                        for reply in replies.values()))

    async def _op_stats(self, request: dict, scope=None) -> dict:
        await self.refresh_specs()
        description = {
            "num_shards": self.config.num_slots,
            "estimators": {name: spec.to_dict()
                           for name, spec in sorted(self._specs.items())},
            "cluster": self.manager.status(),
            "server": {
                "connections_active": self.metrics.connections_active,
                "queue_depth": 0,
                "reloads": self.metrics.reloads,
                "wire": self.metrics.wire_state(),
            },
        }
        if scope is not None and scope.tenant is not None:
            description = auth.scoped_stats(description, scope.tenant)
            # Fleet topology is operator-facing, not a tenant's business.
            description.pop("cluster", None)
            description["tenant_metrics"] = self.metrics.tenant_state(
                scope.tenant)
        else:
            description["tenant_metrics"] = self.metrics.tenant_state()
        return protocol.ok_payload("stats", request, **description)

    async def _op_metrics(self, request: dict, scope=None) -> dict:
        fleet: dict[str, dict] = {}
        for info in self.manager.workers():
            if not info.healthy:
                continue
            try:
                reply = await info.link.request_ok({"op": "metrics"})
            except (ReproError, ConnectionLostError):
                continue
            fleet[info.name] = {
                "uptime": float(reply.get("uptime", 0.0)),
                "requests": dict(reply.get("requests", {})),
                "errors": dict(reply.get("errors", {})),
                "wire": {format: dict(counters) for format, counters
                         in dict(reply.get("wire", {})).items()},
                "tenants": dict(reply.get("tenants", {})),
                "delta": dict(reply.get("delta", {})),
                "program": dict(reply.get("program", {})),
            }
        tenants = self._aggregate_tenants(fleet)
        text = self._render_metrics(fleet, tenants)
        return protocol.ok_payload(
            "metrics", request, text=text,
            uptime=self.metrics.uptime,
            requests=dict(self.metrics.requests),
            errors=dict(self.metrics.errors),
            wire=self.metrics.wire_state(),
            workers=fleet,
            tenants=tenants)

    def _aggregate_tenants(self, fleet: Mapping[str, Mapping]) -> dict:
        """Fleet-wide per-tenant totals: the router's own edge counters
        (where quotas are charged) plus every worker's labelled series."""
        totals: dict[str, dict] = {}
        for tenant, state in self.metrics.tenant_state().items():
            totals[tenant] = {
                "requests": int(state.get("requests", 0)),
                "errors": int(state.get("errors", 0)),
                "quota_rejections": int(state.get("quota_rejections", 0)),
                "estimate_qps": float(state.get("estimate_qps", 0.0)),
                "estimate_p99_ms": float(state.get("estimate_p99_ms", 0.0)),
            }
        for entry in fleet.values():
            for tenant, state in entry.get("tenants", {}).items():
                slot = totals.setdefault(tenant, {
                    "requests": 0, "errors": 0, "quota_rejections": 0,
                    "estimate_qps": 0.0, "estimate_p99_ms": 0.0})
                slot["worker_requests"] = (slot.get("worker_requests", 0)
                                           + int(state.get("requests", 0)))
                slot["worker_errors"] = (slot.get("worker_errors", 0)
                                         + int(state.get("errors", 0)))
        return totals

    def _render_metrics(self, fleet: Mapping[str, Mapping],
                        tenants: Mapping[str, Mapping] | None = None) -> str:
        """Aggregated fleet metrics under the ``repro_cluster_*`` prefix."""
        workers = self.manager.workers()
        lines = ["# repro cluster router metrics",
                 f"repro_cluster_uptime_seconds {self.metrics.uptime:.3f}",
                 f"repro_cluster_workers_total {len(workers)}",
                 "repro_cluster_workers_healthy "
                 f"{sum(info.healthy for info in workers)}",
                 "repro_cluster_connections_active "
                 f"{self.metrics.connections_active}"]
        for op in sorted(self.metrics.requests):
            lines.append(
                f'repro_cluster_requests_total{{op="{label_value(op)}"}} '
                f"{self.metrics.requests[op]}")
        for code in sorted(self.metrics.errors):
            lines.append(
                f'repro_cluster_errors_total{{code="{label_value(code)}"}} '
                f"{self.metrics.errors[code]}")
        quantiles = self.metrics.latency_quantiles()
        lines.append("repro_cluster_estimate_qps "
                     f"{self.metrics.estimate_qps():.3f}")
        for q, seconds in sorted(quantiles.items()):
            lines.append(
                f'repro_cluster_estimate_latency_ms{{quantile="{q}"}} '
                f"{seconds * 1000.0:.3f}")
        # The router's own client-side wire traffic, then the fleet's
        # worker-side totals aggregated per format/direction — the same
        # re-export pattern as worker request counts below.
        for format in sorted(self.metrics.wire):
            counters = self.metrics.wire[format]
            for direction, count in (("in", counters.bytes_in),
                                     ("out", counters.bytes_out)):
                lines.append(
                    "repro_cluster_wire_bytes_total"
                    f'{{format="{label_value(format)}",'
                    f'direction="{direction}"}} {count}')
        wire_totals: dict[tuple[str, str], int] = {}
        for entry in fleet.values():
            for format, counters in entry.get("wire", {}).items():
                for direction, key in (("in", "bytes_in"),
                                       ("out", "bytes_out")):
                    slot = (format, direction)
                    wire_totals[slot] = (wire_totals.get(slot, 0)
                                         + int(counters.get(key, 0)))
        for format, direction in sorted(wire_totals):
            lines.append(
                "repro_cluster_worker_wire_bytes_total"
                f'{{format="{label_value(format)}",'
                f'direction="{direction}"}} '
                f"{wire_totals[(format, direction)]}")
        totals: dict[str, int] = {}
        for entry in fleet.values():
            for op, count in entry["requests"].items():
                totals[op] = totals.get(op, 0) + int(count)
        for op in sorted(totals):
            lines.append("repro_cluster_worker_requests_total"
                         f'{{op="{label_value(op)}"}} {totals[op]}')
        for name in sorted(fleet):
            lines.append("repro_cluster_worker_uptime_seconds"
                         f'{{worker="{label_value(name)}"}} '
                         f"{fleet[name]['uptime']:.3f}")
        # Per-tenant fleet aggregates, one contiguous family per metric.
        tenants = tenants or {}
        for key, metric in (("requests", "repro_cluster_tenant_requests_total"),
                            ("errors", "repro_cluster_tenant_errors_total"),
                            ("quota_rejections",
                             "repro_cluster_tenant_quota_rejected_total")):
            for tenant in sorted(tenants):
                lines.append(
                    f'{metric}{{tenant="{label_value(tenant)}"}} '
                    f"{int(tenants[tenant].get(key, 0))}")
        for tenant in sorted(tenants):
            lines.append(
                "repro_cluster_tenant_estimate_qps"
                f'{{tenant="{label_value(tenant)}"}} '
                f"{float(tenants[tenant].get('estimate_qps', 0.0)):.3f}")
        # Fleet-wide delta-propagation and program-executor totals, summed
        # from each worker's structured metrics payload.  Workers resolve
        # view refreshes locally, so the cluster-level ratio of applies to
        # rebuilds is the steady-state health signal for delta propagation.
        delta_totals: dict[str, int] = {}
        program_totals: dict[str, int] = {}
        for entry in fleet.values():
            for key, count in entry.get("delta", {}).items():
                delta_totals[key] = delta_totals.get(key, 0) + int(count)
            for key, count in entry.get("program", {}).items():
                program_totals[key] = program_totals.get(key, 0) + int(count)
        for key, metric in (("delta_applies",
                             "repro_cluster_delta_applies_total"),
                            ("rebuilds",
                             "repro_cluster_view_rebuilds_total"),
                            ("evictions",
                             "repro_cluster_view_evictions_total")):
            lines.append(f"{metric} {delta_totals.get(key, 0)}")
        for key in sorted(program_totals):
            lines.append(f"repro_cluster_program_{key} {program_totals[key]}")
        return "\n".join(lines) + "\n"

    async def _op_snapshot(self, request: dict, scope=None) -> dict:
        if request.get("fetch"):
            raise ServiceError(
                "inline snapshot fetch is a worker-level op; fetch from a "
                "worker or use cluster_status to find one")
        path = request.get("path")
        if not path:
            raise ServiceError("cluster snapshot needs a path prefix")
        format = request.get("format", "auto")
        paths: dict[str, str] = {}
        for owner in self._owner_names():
            reader = self.manager.reader(owner)
            if reader is None:
                raise ServiceError(
                    f"owner group {owner!r} has no healthy worker to snapshot")
            target = f"{path}.{owner}"
            await reader.link.request_ok({"op": "snapshot", "path": target,
                                          "format": format})
            paths[owner] = target
        return protocol.ok_payload("snapshot", request, paths=paths)

    async def _op_reload(self, request: dict, scope=None) -> dict:
        raise ServiceError(
            "reload is a worker-level op; bootstrap or replace workers "
            "through the cluster manager instead")

    async def _op_tenant(self, request: dict,
                         principal: str | None = None) -> dict:
        """Tenant registry administration, mirrored across the fleet.

        Mutations apply to the router's registry (the authenticating
        edge) and broadcast to every healthy worker, whose services
        journal them through their WALs and embed them in snapshots —
        the durable copies a restarted fleet recovers from.
        """
        action = str(request.get("action", "list"))
        if principal is not None and principal != auth.ADMIN:
            if action != "describe":
                raise AuthenticationError(
                    f"tenant action {action!r} requires admin access")
            target = str(request.get("tenant", principal))
            if target != principal:
                raise AuthenticationError("a tenant may only describe itself")
            record = self.tenants.require(principal)
            info = record.to_dict()
            info.pop("token_hash", None)
            entry = self._admissions.get(principal)
            fields: dict = {"tenant": principal, "record": info,
                            "metrics": self.metrics.tenant_state(principal)}
            if entry is not None and entry.quota == record.quota:
                fields["admission"] = entry.describe(
                    asyncio.get_running_loop().time())
            return protocol.ok_payload("tenant", request, action="describe",
                                       **fields)
        registry = self.tenants
        if action == "create":
            registry = self.enable_tenancy()
            quota = (TenantQuota.from_dict(request["quota"])
                     if request.get("quota") else None)
            record = registry.create(str(request["tenant"]),
                                     token=str(request["token"]),
                                     quota=quota)
            await self.manager.broadcast(dict(request))
            return protocol.ok_payload("tenant", request, action="create",
                                       tenant=record.tenant_id,
                                       record=record.to_dict())
        if action == "list":
            tenants = registry.describe() if registry is not None else {}
            return protocol.ok_payload("tenant", request, action="list",
                                       tenants=tenants)
        if action == "describe":
            if registry is None:
                raise ServiceError("router has no tenant registry")
            record = registry.require(str(request["tenant"]))
            return protocol.ok_payload(
                "tenant", request, action="describe",
                tenant=record.tenant_id, record=record.to_dict(),
                metrics=self.metrics.tenant_state(record.tenant_id))
        if action in ("update", "disable", "enable"):
            if registry is None:
                raise ServiceError("router has no tenant registry")
            kwargs: dict = {}
            if action == "update":
                if request.get("token") is not None:
                    kwargs["token"] = str(request["token"])
                if request.get("quota") is not None:
                    kwargs["quota"] = TenantQuota.from_dict(request["quota"])
                if request.get("disabled") is not None:
                    kwargs["disabled"] = bool(request["disabled"])
            else:
                kwargs["disabled"] = action == "disable"
            record = registry.update(str(request["tenant"]), **kwargs)
            await self.manager.broadcast(dict(request))
            return protocol.ok_payload("tenant", request, action=action,
                                       tenant=record.tenant_id,
                                       record=record.to_dict())
        if action == "remove":
            if registry is None:
                raise ServiceError("router has no tenant registry")
            record = registry.remove(str(request["tenant"]))
            self._admissions.pop(record.tenant_id, None)
            await self.manager.broadcast(dict(request))
            # The fleet also dropped the tenant's estimators; forget the
            # router's cached specs for that namespace.
            prefix = record.tenant_id + "/"
            for name in [n for n in self._specs if n.startswith(prefix)]:
                del self._specs[name]
            return protocol.ok_payload("tenant", request, action="remove",
                                       tenant=record.tenant_id)
        raise ServiceError(f"unknown tenant action {action!r}")

    async def _op_cluster_status(self, request: dict, scope=None) -> dict:
        status = self.manager.status()
        assignments = self._assignments() if len(self.manager.ring) else []
        slots_per_owner: dict[str, int] = {}
        for owner in assignments:
            slots_per_owner[owner] = slots_per_owner.get(owner, 0) + 1
        return protocol.ok_payload(
            "cluster_status", request,
            num_slots=self.config.num_slots,
            estimators=sorted(self._specs),
            slots_per_owner=slots_per_owner,
            **status)

    _HANDLERS = {
        "ping": _op_ping,
        "register": _op_register,
        "unregister": _op_unregister,
        "ingest": _op_ingest,
        "estimate": _op_estimate,
        "flush": _op_flush,
        "stats": _op_stats,
        "metrics": _op_metrics,
        "snapshot": _op_snapshot,
        "save": _op_snapshot,
        "reload": _op_reload,
        "cluster_status": _op_cluster_status,
    }


def _forward_fields(request: Mapping) -> dict:
    """Tenant identity fields a router adds to forwarded worker payloads.

    ``scoped: true`` tells the worker the name is already namespaced and
    quota was charged at the edge — it labels, but never re-scopes or
    re-charges.
    """
    tenant = request.get("tenant")
    if tenant is None:
        return {}
    return {"tenant": tenant, "scoped": True}


async def serve_router(router: ClusterRouter, *, ready=None,
                       shutdown: asyncio.Event | None = None,
                       install_signal_handlers: bool = False,
                       heartbeat: bool = True) -> None:
    """Run a started-or-fresh router until cancelled or shut down."""
    await router.start()
    if heartbeat:
        router.manager.start_heartbeat()
    stop = shutdown if shutdown is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: list[signal.Signals] = []
    if install_signal_handlers:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except (NotImplementedError, ValueError,
                    RuntimeError):  # pragma: no cover - non-POSIX loops
                pass
    if ready is not None:
        ready(router)
    forever = asyncio.create_task(router.serve_forever())
    waiter = asyncio.create_task(stop.wait())
    try:
        await asyncio.wait({forever, waiter},
                           return_when=asyncio.FIRST_COMPLETED)
    except asyncio.CancelledError:
        pass
    finally:
        for task in (forever, waiter):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        for signum in installed:
            with contextlib.suppress(ValueError, RuntimeError):
                loop.remove_signal_handler(signum)
        await router.close()


class ThreadedClusterRouter:
    """Drive a router (plus its worker links) on a background loop thread.

    The synchronous mirror of :class:`~repro.server.runner.ThreadedServer`
    for clusters: tests and benchmarks start it, talk to ``port`` with a
    plain :class:`~repro.client.ServiceClient`, and steer topology through
    :meth:`run` (which executes a coroutine on the router's loop)::

        with ThreadedClusterRouter([("127.0.0.1", p1), ("127.0.0.1", p2)]) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            handle.run(handle.router.bootstrap_replica(
                "r0", "127.0.0.1", p3, source="w0"))
    """

    def __init__(self, workers: Sequence[tuple[str, int]] = (), *,
                 config: RouterConfig | None = None,
                 heartbeat: HeartbeatConfig | None = None,
                 start_heartbeat: bool = True,
                 registry=None) -> None:
        self.router = ClusterRouter(config=config, heartbeat=heartbeat,
                                    registry=registry)
        self._workers = list(workers)
        self._start_heartbeat = start_heartbeat
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready: concurrent.futures.Future = concurrent.futures.Future()

    def start(self, timeout: float = 30.0) -> "ThreadedClusterRouter":
        if self._thread is not None:
            raise ServiceError("router thread already started")
        self._thread = threading.Thread(target=self._run_thread, daemon=True,
                                        name="cluster-router-loop")
        self._thread.start()
        self._ready.result(timeout=timeout)
        return self

    def _run_thread(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            for index, (host, port) in enumerate(self._workers):
                await self.router.attach(f"w{index}", host, port)
            await self.router.start()
            if self._start_heartbeat:
                self.router.manager.start_heartbeat()
        except BaseException as exc:  # noqa: BLE001 - relayed to start()
            self._ready.set_exception(exc)
            return
        self._ready.set_result(self.router.port)
        await self._stop.wait()
        await self.router.close()

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=timeout)
        self._thread = None

    def run(self, coroutine, timeout: float = 60.0):
        """Execute a coroutine on the router's event loop (thread-safe)."""
        if self._loop is None:
            raise ServiceError("router thread is not running")
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout=timeout)

    @property
    def port(self) -> int:
        return self.router.port

    @property
    def manager(self) -> ClusterManager:
        return self.router.manager

    def __enter__(self) -> "ThreadedClusterRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
