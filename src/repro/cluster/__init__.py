"""Cluster scale-out: many sketch workers behind one logical service.

The package turns N independent :class:`~repro.server.server.SketchServer`
worker processes into one service a plain
:class:`~repro.client.ServiceClient` can talk to, following the
grid-federation shape (autonomous worker nodes, one logical catalog at the
router):

* :class:`~repro.cluster.ring.HashRing` — a consistent-hash ring mapping
  shard slots to worker names (stable blake2b hashing, virtual nodes;
  adding a worker remaps only ~1/N of the slots),
* :class:`~repro.cluster.connection.WorkerLink` — one pipelined asyncio
  NDJSON connection to a worker,
* :class:`~repro.cluster.manager.ClusterManager` — topology: worker
  registration, heartbeat health checks, read-replica bootstrap from a
  binary snapshot shipped over the wire, degraded-mode accounting,
* :class:`~repro.cluster.router.ClusterRouter` — the scatter-gather
  router.  It speaks the existing NDJSON protocol on both sides, so one
  client library works against a single server and a whole fleet:
  ``ingest`` partitions by the same shard hash the
  :class:`~repro.service.store.ShardedSketchStore` uses and fans out in
  parallel; ``estimate`` gathers shard-local partial states and reduces
  them with one vectorised merge — bit-identical to a single-node service,
* :mod:`~repro.cluster.fleet` — spawn local worker subprocesses (the CLI's
  ``cluster serve`` and the benchmarks).

The sketch math makes the reduction exact by construction: counter updates
are integer-valued, so float64 addition is exact and order-independent,
and merging worker states is the same linear fold the sharded store
already performs in-process.
"""

from repro.cluster.connection import WorkerLink
from repro.cluster.fleet import LocalFleet, spawn_worker
from repro.cluster.manager import ClusterManager, HeartbeatConfig, WorkerInfo
from repro.cluster.partial import merge_partial_states, reduce_partials
from repro.cluster.ring import HashRing, stable_hash
from repro.cluster.router import (
    ClusterRouter,
    RouterConfig,
    ThreadedClusterRouter,
)

__all__ = [
    "HashRing",
    "stable_hash",
    "WorkerLink",
    "ClusterManager",
    "HeartbeatConfig",
    "WorkerInfo",
    "merge_partial_states",
    "reduce_partials",
    "ClusterRouter",
    "RouterConfig",
    "ThreadedClusterRouter",
    "LocalFleet",
    "spawn_worker",
]
