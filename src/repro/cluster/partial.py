"""Reduce shard-local partial results into one exact estimate.

A worker's ``estimate`` with ``partial: true`` returns its merged-view
estimator **state** — counter tensors plus stream counts — rather than a
finished number.  Shipping state (not outputs) is what keeps the reduction
exact for *every* family: join estimators are bilinear in their two banks,
so per-worker estimate outputs do **not** sum across workers, but counter
tensors are linear projections of the input stream and always do.

The router folds the partial states with the same vectorised
:meth:`~repro.core.atomic.SketchBank.merge` the sharded store uses
in-process (one tensor add per worker, exact float64 integer sums), then
runs the ordinary boosted reduction — bit-identical to a single-node
service over the union of the boxes.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.core.result import EstimateResult
from repro.errors import ServerError
from repro.service.specs import EstimatorSpec, run_estimate


def merge_partial_states(spec: EstimatorSpec,
                         states: Iterable[Mapping]) -> Any:
    """One merged estimator from per-worker ``state_dict`` payloads.

    Every state is loaded into a fresh estimator built from the shared
    spec (which fixes the xi seeds, hence merge compatibility) and folded
    into the accumulator — the cluster-level analogue of
    :meth:`~repro.service.store.ShardedSketchStore.merge_view`.
    """
    merged = spec.build()
    for state in states:
        part = spec.build()
        try:
            part.load_state_dict(state)
        except (KeyError, TypeError, ValueError) as exc:
            raise ServerError(
                f"malformed partial state from worker: {exc}") from exc
        merged.merge(part)
    return merged


def reduce_partials(spec: EstimatorSpec, states: Iterable[Mapping],
                    query=None) -> EstimateResult:
    """Estimate from gathered partial states (merge, then boosted reduce)."""
    return run_estimate(spec, merge_partial_states(spec, states), query)
