"""Cluster topology: registration, heartbeats, replicas, degraded mode.

:class:`ClusterManager` owns the worker table and the consistent-hash
ring.  Two worker roles exist:

* **shard** workers own ring slots; ingest for their slots lands on them,
* **replica** workers mirror one shard worker (``replica_of``): every
  write fanned to the shard worker also goes to its replicas — linear
  sketches make replicas *bit-identical* mirrors, so reads round-robin
  across the whole owner group and estimate QPS scales with replica count
  independently of ingest.

New replicas bootstrap over the wire: the manager fetches the source
worker's binary v2 snapshot (``snapshot`` with ``fetch: true``) and ships
it into the fresh worker (``reload`` with inline ``data``) — no shared
filesystem needed.  A heartbeat loop pings every worker; after
``max_failures`` consecutive misses a worker is marked unhealthy, taking
it out of read/write fan-outs (degraded mode) until it recovers or is
replaced via :meth:`ClusterManager.replace_worker`.

Replicas come in two sync flavours (``WorkerInfo.sync_mode``):

* ``fanout`` — the classic mirror: every write fanned to the primary also
  goes to the replica, keeping it bit-identical in real time,
* ``wal`` — a log-shipped *follower*: excluded from the write fan-out, it
  catches up on demand via :meth:`ClusterManager.sync_follower`, which
  fetches the owner's WAL tail after the follower's last synced sequence
  number (``wal fetch since:<seqno>``) and replays it — an incremental
  transfer that moves only the missed-write window, falling back to a
  full snapshot bootstrap only when a checkpoint already truncated the
  requested tail.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass, field

from repro.cluster.connection import WorkerLink
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.errors import ReproError, ServiceError

WORKER_ROLES = ("shard", "replica")

#: How a replica is kept consistent with its owner.
SYNC_MODES = ("fanout", "wal")


@dataclass
class WorkerInfo:
    """One worker's identity, role, link and health."""

    name: str
    host: str
    port: int
    link: WorkerLink
    role: str = "shard"
    replica_of: str | None = None
    healthy: bool = True
    failures: int = 0
    generation: int = 0  # bumped by replace_worker
    sync_mode: str = "fanout"
    #: Owner-WAL position this follower provably holds (wal mode only).
    synced_seqno: int = 0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def owner(self) -> str:
        """The ring name of the owner group this worker serves."""
        return self.replica_of if self.replica_of is not None else self.name


@dataclass
class HeartbeatConfig:
    interval: float = 1.0
    max_failures: int = 3
    timeout: float = 5.0


class ClusterManager:
    """Topology and health of one worker fleet."""

    def __init__(self, *, vnodes: int = DEFAULT_VNODES,
                 heartbeat: HeartbeatConfig | None = None,
                 request_timeout: float = 60.0,
                 wire: str = "auto",
                 worker_token: str | None = None) -> None:
        self.ring = HashRing(vnodes=vnodes)
        self.heartbeat = heartbeat or HeartbeatConfig()
        self.request_timeout = request_timeout
        #: Wire preference for every worker link ("auto" negotiates binary
        #: frames where workers offer them — snapshot bootstrap and log
        #: shipping then move raw bytes instead of base64).
        self.wire = wire
        #: Admin token presented on every worker link when the fleet runs
        #: with tenancy enforced (workers started with --admin-token).
        self.worker_token = worker_token
        self._workers: dict[str, WorkerInfo] = {}
        self._round_robin: dict[str, int] = {}
        self._heartbeat_task: asyncio.Task | None = None
        #: State-transfer ledger: one entry per snapshot bootstrap or WAL
        #: tail shipped, for byte accounting (tail < full snapshot).
        self.transfers: list[dict] = []

    # -- membership ---------------------------------------------------------------

    def worker(self, name: str) -> WorkerInfo:
        try:
            return self._workers[name]
        except KeyError as exc:
            raise ServiceError(f"unknown worker {name!r}; known: "
                               f"{sorted(self._workers)}") from exc

    def workers(self) -> list[WorkerInfo]:
        return [self._workers[name] for name in sorted(self._workers)]

    def __contains__(self, name: str) -> bool:
        return name in self._workers

    def __len__(self) -> int:
        return len(self._workers)

    async def add_worker(self, name: str, host: str, port: int, *,
                         role: str = "shard",
                         replica_of: str | None = None,
                         sync: str = "fanout") -> WorkerInfo:
        """Connect, health-check and register one worker."""
        if role not in WORKER_ROLES:
            raise ServiceError(f"worker role must be one of {WORKER_ROLES}, "
                               f"got {role!r}")
        if sync not in SYNC_MODES:
            raise ServiceError(f"replica sync mode must be one of "
                               f"{SYNC_MODES}, got {sync!r}")
        if name in self._workers:
            raise ServiceError(f"worker {name!r} is already registered")
        if role == "replica":
            if replica_of is None:
                raise ServiceError("replica workers need replica_of=")
            self.worker(replica_of)  # raises for unknown sources
        elif replica_of is not None:
            raise ServiceError("replica_of applies to replica workers only")
        elif sync != "fanout":
            raise ServiceError("sync modes apply to replica workers only")
        link = WorkerLink(host, port, timeout=self.request_timeout,
                          wire=self.wire, token=self.worker_token)
        await link.connect()
        await link.request_ok({"op": "ping"}, timeout=self.heartbeat.timeout)
        info = WorkerInfo(name=name, host=host, port=int(port), link=link,
                          role=role, replica_of=replica_of, sync_mode=sync)
        self._workers[name] = info
        if role == "shard":
            self.ring.add(name)
        return info

    async def remove_worker(self, name: str) -> None:
        """Forget a worker entirely (its ring slots remap to the others)."""
        info = self.worker(name)
        del self._workers[name]
        if info.role == "shard" and name in self.ring:
            self.ring.remove(name)
        await info.link.close()

    async def replace_worker(self, name: str, host: str, port: int, *,
                             data: str | bytes | None = None) -> WorkerInfo:
        """Point a (typically dead) worker name at a replacement process.

        The ring is keyed by *name*, so replacing keeps every slot
        assignment — no data movement on the surviving workers.  ``data``
        (snapshot bytes as fetched — raw on binary links, base64 on
        NDJSON ones — e.g. from a healthy replica) is reloaded into the
        replacement before it goes live.
        """
        old = self.worker(name)
        link = WorkerLink(host, port, timeout=self.request_timeout,
                          wire=self.wire, token=self.worker_token)
        await link.connect()
        await link.request_ok({"op": "ping"}, timeout=self.heartbeat.timeout)
        if data is not None:
            await link.request_ok({"op": "reload", "data": data})
        await old.link.close()
        fresh = WorkerInfo(name=name, host=host, port=int(port), link=link,
                           role=old.role, replica_of=old.replica_of,
                           healthy=True, failures=0,
                           generation=old.generation + 1)
        self._workers[name] = fresh
        return fresh

    # -- replica bootstrap --------------------------------------------------------

    async def _fetch_snapshot_reply(self, source: str) -> dict:
        """The full ``snapshot fetch:true`` reply of one worker."""
        return await self.worker(source).link.request_ok(
            {"op": "snapshot", "fetch": True})

    async def fetch_snapshot(self, source: str) -> str | bytes:
        """A worker's binary v2 snapshot in wire form — raw ``bytes`` on a
        binary link, base64 text on an NDJSON one.  Either form can be
        passed back into ``reload``/:meth:`replace_worker` unchanged."""
        return (await self._fetch_snapshot_reply(source))["data"]

    async def bootstrap_replica(self, name: str, host: str, port: int, *,
                                source: str, sync: str = "fanout"
                                ) -> WorkerInfo:
        """Attach a fresh worker as a read replica of ``source``.

        The source's snapshot is fetched over the wire and reloaded into
        the new worker, after which the replica is a bit-identical mirror.
        ``sync="fanout"`` (default) joins the write fan-out immediately;
        ``sync="wal"`` registers a log-shipped follower instead, seeded at
        the WAL position the bootstrap snapshot covers and caught up
        incrementally by :meth:`sync_follower`.
        """
        source_info = self.worker(source)
        if source_info.role != "shard":
            raise ServiceError(
                f"replicas mirror shard workers; {source!r} is a "
                f"{source_info.role}")
        reply = await self._fetch_snapshot_reply(source)
        data = reply["data"]
        info = await self.add_worker(name, host, port, role="replica",
                                     replica_of=source, sync=sync)
        try:
            await info.link.request_ok({"op": "reload", "data": data})
        except ReproError:
            await self.remove_worker(name)
            raise
        info.synced_seqno = int(reply.get("wal_seqno", 0) or 0)
        self._record_transfer(name, "snapshot", int(reply.get("nbytes", 0)),
                              records=0)
        return info

    async def sync_follower(self, name: str) -> dict:
        """Catch a log-shipped follower up to its owner.

        Fetches the owner's WAL tail after the follower's last synced
        sequence number and replays it on the follower — the incremental
        alternative to re-shipping a full snapshot.  When the owner reports
        the requested tail ``truncated`` (a checkpoint dropped part of it),
        the follower is re-bootstrapped from a fresh snapshot instead.

        A successful sync proves the follower holds every owner write
        through the returned ``synced_seqno`` (the owner's log is the
        authoritative write record), so it also restores the follower to
        healthy — unlike fan-out replicas, where a mere ping recovery
        cannot prove no write was missed.
        """
        info = self.worker(name)
        if info.role != "replica" or info.sync_mode != "wal":
            raise ServiceError(
                f"sync_follower applies to wal-mode replicas; {name!r} is a "
                f"{info.sync_mode} {info.role}")
        owner = self.worker(info.replica_of)
        tail = await owner.link.request_ok(
            {"op": "wal", "fetch": True, "since": info.synced_seqno})
        if tail.get("truncated"):
            # The missed window predates the oldest retained record: the
            # incremental path cannot reconstruct it, so fall back to a
            # full snapshot bootstrap.
            reply = await self._fetch_snapshot_reply(info.replica_of)
            await info.link.request_ok({"op": "reload",
                                        "data": reply["data"]})
            info.synced_seqno = int(reply.get("wal_seqno", 0) or 0)
            report = self._record_transfer(name, "snapshot",
                                           int(reply.get("nbytes", 0)),
                                           records=0)
        else:
            if int(tail.get("count", 0)):
                await info.link.request_ok({"op": "wal",
                                            "apply": tail["data"]})
                info.synced_seqno = int(tail["last_seqno"])
            report = self._record_transfer(name, "wal",
                                           int(tail.get("nbytes", 0)),
                                           records=int(tail.get("count", 0)))
        info.healthy = True
        info.failures = 0
        report["synced_seqno"] = info.synced_seqno
        return report

    def _record_transfer(self, worker: str, mode: str, nbytes: int, *,
                         records: int) -> dict:
        """Account one state transfer (snapshot bootstrap or WAL tail)."""
        entry = {"worker": worker, "mode": mode, "bytes": int(nbytes),
                 "records": int(records)}
        self.transfers.append(entry)
        return dict(entry)

    # -- owner groups -------------------------------------------------------------

    def owner_group(self, owner: str) -> list[WorkerInfo]:
        """All registered members of one owner group (primary first)."""
        members = [info for info in self.workers() if info.owner == owner]
        return sorted(members, key=lambda info: (info.role != "shard",
                                                 info.name))

    def writers(self, owner: str) -> list[WorkerInfo]:
        """Healthy members that must all receive a write.

        Writes fan to the primary *and* every healthy fan-out replica —
        that is what keeps replicas bit-identical mirrors.  (A fan-out
        replica that missed writes while unhealthy must be re-bootstrapped
        before rejoining.)  Log-shipped (``wal``) followers are *not*
        fanned to: the owner's WAL is their write stream, applied in
        batches by :meth:`sync_follower`.
        """
        return [info for info in self.owner_group(owner)
                if info.healthy and info.sync_mode != "wal"]

    def reader(self, owner: str) -> WorkerInfo | None:
        """Round-robin over the owner group's healthy synchronous members.

        Log-shipped followers are excluded: between syncs they lag the
        owner, and the router promises reads bit-identical to a
        single-node service.  (Route to them explicitly for workloads
        that tolerate bounded staleness.)
        """
        members = self.writers(owner)
        if not members:
            return None
        index = self._round_robin.get(owner, 0)
        self._round_robin[owner] = index + 1
        return members[index % len(members)]

    # -- health -------------------------------------------------------------------

    async def heartbeat_once(self) -> dict[str, bool]:
        """Ping every worker once; update health; return name -> healthy."""
        async def ping(info: WorkerInfo) -> None:
            try:
                await info.link.request_ok({"op": "ping"},
                                           timeout=self.heartbeat.timeout)
            except Exception:
                info.failures += 1
                if info.failures >= self.heartbeat.max_failures:
                    info.healthy = False
            else:
                if info.healthy:
                    info.failures = 0
                # Once unhealthy a worker stays out — it may have missed
                # writes, so only replace_worker / bootstrap_replica (which
                # reload a current snapshot) bring a name back into
                # rotation.  Mere ping recovery cannot prove state.

        workers = self.workers()
        await asyncio.gather(*(ping(info) for info in workers))
        return {info.name: info.healthy for info in workers}

    def start_heartbeat(self) -> None:
        if self._heartbeat_task is None:
            self._heartbeat_task = asyncio.create_task(self._heartbeat_loop())

    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(self.heartbeat.interval)
            with contextlib.suppress(Exception):
                await self.heartbeat_once()

    async def stop_heartbeat(self) -> None:
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._heartbeat_task
            self._heartbeat_task = None

    # -- fan-out helpers ----------------------------------------------------------

    async def broadcast(self, payload: dict, *,
                        healthy_only: bool = True) -> dict[str, dict]:
        """Send one request to every (healthy) worker; gather typed replies."""
        targets = [info for info in self.workers()
                   if info.healthy or not healthy_only]

        async def ask(info: WorkerInfo) -> tuple[str, dict]:
            return info.name, await info.link.request_ok(dict(payload))

        return dict(await asyncio.gather(*(ask(info) for info in targets)))

    # -- introspection ------------------------------------------------------------

    def status(self) -> dict:
        """A JSON-friendly topology report (the ``cluster_status`` verb)."""
        return {
            "workers": [
                {
                    "name": info.name,
                    "address": info.address,
                    "role": info.role,
                    "replica_of": info.replica_of,
                    "healthy": info.healthy,
                    "failures": info.failures,
                    "generation": info.generation,
                    "sync_mode": info.sync_mode,
                    "synced_seqno": info.synced_seqno,
                }
                for info in self.workers()
            ],
            "ring": self.ring.workers(),
            "healthy_workers": sum(info.healthy for info in self.workers()),
            "transfers": [dict(entry) for entry in self.transfers],
        }

    async def close(self) -> None:
        await self.stop_heartbeat()
        for info in self.workers():
            await info.link.close()
        self._workers.clear()
