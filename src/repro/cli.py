"""Command-line interface.

``repro-spatial`` (or ``python -m repro.cli``) regenerates the paper's
figures and the ablation studies from the command line::

    repro-spatial list
    repro-spatial run figure5 --scale laptop
    repro-spatial run figure9 figure10 figure11 --scale tiny --seed 3
    repro-spatial all --scale laptop --output results.txt
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.experiments.config import SCALES, get_scale
from repro.experiments.figures import FIGURES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spatial",
        description="Reproduce the experiments of 'Approximation Techniques for Spatial Data'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available experiments and scales")

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+", choices=sorted(FIGURES),
                     help="experiment identifiers (e.g. figure5)")
    run.add_argument("--scale", default="laptop", choices=sorted(SCALES),
                     help="experiment scale (default: laptop)")
    run.add_argument("--seed", type=int, default=0, help="base random seed")
    run.add_argument("--output", type=str, default=None,
                     help="append the result tables to this file")

    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument("--scale", default="laptop", choices=sorted(SCALES))
    everything.add_argument("--seed", type=int, default=0)
    everything.add_argument("--output", type=str, default=None)
    return parser


def _run_experiments(names: Sequence[str], scale_name: str, seed: int,
                     output: str | None) -> int:
    scale = get_scale(scale_name)
    chunks: list[str] = []
    for name in names:
        generator = FIGURES[name]
        start = time.perf_counter()
        result = generator(scale, seed=seed)
        elapsed = time.perf_counter() - start
        text = result.to_text() + f"\n(completed in {elapsed:.1f} s)\n"
        print(text)
        chunks.append(text)
    if output:
        with open(output, "a", encoding="utf-8") as handle:
            handle.write("\n".join(chunks))
            handle.write("\n")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by the ``repro-spatial`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        print("experiments:")
        for name in sorted(FIGURES):
            doc = (FIGURES[name].__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"  {name:28s} {summary}")
        print("\nscales:")
        for name, scale in sorted(SCALES.items()):
            print(f"  {name:8s} runs={scale.runs} synthetic_sizes={scale.synthetic_sizes}")
        return 0

    if args.command == "run":
        return _run_experiments(args.experiments, args.scale, args.seed, args.output)

    if args.command == "all":
        return _run_experiments(sorted(FIGURES), args.scale, args.seed, args.output)

    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
