"""Command-line interface.

``repro-spatial`` (or ``python -m repro.cli``) regenerates the paper's
figures and the ablation studies from the command line::

    repro-spatial list
    repro-spatial run figure5 --scale laptop
    repro-spatial run figure9 figure10 figure11 --scale tiny --seed 3
    repro-spatial all --scale laptop --output results.txt

It also drives the sharded sketch service (:mod:`repro.service`)::

    repro-spatial ingest --snapshot svc.snap --name join --family rectangle \\
        --sizes 1024x1024 --count 5000 --side left
    repro-spatial estimate --snapshot svc.snap --name join
    repro-spatial estimate --snapshot svc.snap --name ranges \\
        --batch-file queries.jsonl --workers 4    # JSON-lines in/out
    repro-spatial estimate --snapshot svc.snap --name ranges \\
        --query 0,0,63,63 --explain               # print the compiled program
    repro-spatial serve --snapshot svc.snap        # JSON-lines loop on stdio
    repro-spatial serve --snapshot svc.snap --listen 127.0.0.1:7007  # TCP

With ``--listen`` the server speaks the newline-delimited JSON protocol of
:mod:`repro.server` (request coalescing, admission control, hot reload);
one-shot ``estimate``/``ingest`` invocations can then reuse that running
server with ``--connect host:port`` instead of paying a snapshot restore
per invocation (the ``--snapshot`` offline path remains the fallback).

Snapshots are written in the binary v2 format by default (raw counter
tensors, memory-mapped restores); a ``.json`` path — or ``--format json``
— selects the v1 JSON format instead, and reads auto-detect either.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import contextmanager
from typing import Sequence


from repro.errors import ReproError
from repro.experiments.config import SCALES, get_scale
from repro.experiments.figures import FIGURES
from repro.geometry.boxset import BoxSet


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spatial",
        description="Reproduce the experiments of 'Approximation Techniques for Spatial Data'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available experiments and scales")

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+", choices=sorted(FIGURES),
                     help="experiment identifiers (e.g. figure5)")
    run.add_argument("--scale", default="laptop", choices=sorted(SCALES),
                     help="experiment scale (default: laptop)")
    run.add_argument("--seed", type=int, default=0, help="base random seed")
    run.add_argument("--output", type=str, default=None,
                     help="append the result tables to this file")

    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument("--scale", default="laptop", choices=sorted(SCALES))
    everything.add_argument("--seed", type=int, default=0)
    everything.add_argument("--output", type=str, default=None)

    # -- sketch service commands ------------------------------------------------

    def add_snapshot_arg(p, required=True):
        p.add_argument("--snapshot", required=required,
                       help="path of the service snapshot file (binary v2 by "
                            "default; .json paths use the JSON v1 format)")

    def add_wire_arg(p):
        p.add_argument("--wire", default="auto",
                       choices=("auto", "binary", "ndjson"),
                       help="wire format for --connect: auto upgrades to "
                            "binary frames when the server offers them "
                            "(default), binary requires the upgrade, ndjson "
                            "stays on the debuggable JSON-lines protocol")

    def add_token_arg(p):
        p.add_argument("--token", default=None, metavar="TOKEN",
                       help="API token for --connect against a multi-tenant "
                            "server: a tenant token scopes every request to "
                            "that tenant's namespace, the admin token grants "
                            "the unscoped administrative role")

    def add_connect_arg(p):
        p.add_argument("--connect", default=None, metavar="HOST:PORT",
                       help="send the request to a running network server "
                            "instead of restoring --snapshot locally")
        add_token_arg(p)
        add_wire_arg(p)

    def add_format_arg(p):
        p.add_argument("--format", default="auto",
                       choices=("auto", "binary", "json"),
                       help="snapshot format to write: binary (v2), json "
                            "(v1), or auto (binary unless the path ends in "
                            ".json; reads always auto-detect)")

    ingest = sub.add_parser(
        "ingest", help="ingest data into a service snapshot (creating it if needed)")
    add_snapshot_arg(ingest, required=False)
    add_connect_arg(ingest)
    ingest.add_argument("--name", required=True, help="estimator name")
    ingest.add_argument("--family", default=None,
                        help="estimator family (required when registering a new name)")
    ingest.add_argument("--sizes", default=None,
                        help="domain sizes, e.g. 4096 or 1024x1024 "
                             "(required when registering a new name)")
    ingest.add_argument("--instances", type=int, default=None,
                        help="atomic-sketch instances (default: 256)")
    ingest.add_argument("--seed", type=int, default=None,
                        help="sketch seed (default: 0)")
    ingest.add_argument("--epsilon", type=int, default=None,
                        help="epsilon for the epsilon family")
    ingest.add_argument("--strict", action="store_true",
                        help="strict overlap semantics for the range family")
    ingest.add_argument("--endpoint-policy", default=None,
                        choices=("assume_distinct", "transform", "explicit"))
    ingest.add_argument("--shards", type=int, default=4,
                        help="shard count when creating a new snapshot (default: 4)")
    ingest.add_argument("--side", default="left", help="input side (default: left)")
    ingest.add_argument("--kind", default="insert", choices=("insert", "delete"))
    source = ingest.add_mutually_exclusive_group()
    source.add_argument("--count", type=int, default=None,
                        help="generate this many uniform synthetic boxes")
    source.add_argument("--boxes", default=None,
                        help="JSON file with box rows [lo_1..lo_d, hi_1..hi_d]")
    ingest.add_argument("--data-seed", type=int, default=0,
                        help="seed for synthetic data generation")
    add_format_arg(ingest)

    estimate = sub.add_parser("estimate", help="estimate from a service snapshot")
    add_snapshot_arg(estimate, required=False)
    add_connect_arg(estimate)
    estimate.add_argument("--name", required=True, help="estimator name")
    estimate.add_argument("--query", default=None,
                          help="query rectangle lo_1,..,lo_d,hi_1,..,hi_d "
                               "(range family only)")
    estimate.add_argument("--batch-file", default=None,
                          help="JSON-lines file of queries: one "
                               "[lo_1..lo_d, hi_1..hi_d] array (or null for "
                               "query-less families) per line; '-' for stdin")
    estimate.add_argument("--batch-output", default=None,
                          help="where to write the JSON-lines results "
                               "(default: stdout)")
    estimate.add_argument("--workers", type=int, default=None,
                          help="fan a batch out to this many worker processes "
                               "(threads when no process pool is available)")
    estimate.add_argument("--explain", action="store_true",
                          help="print the compiled sketch program(s) — word "
                               "products, letter-sum requests with dyadic "
                               "cover sizes, and the reduction plan — "
                               "instead of estimating (offline --snapshot "
                               "path only)")
    estimate.add_argument("--json", action="store_true",
                          help="with --connect: print a structured JSON "
                               "envelope (server address, wire format, "
                               "result fields) instead of the bare result "
                               "object")

    serve = sub.add_parser(
        "serve", help="serve estimates over stdio JSON-lines, or over TCP "
                      "with --listen")
    add_snapshot_arg(serve, required=False)
    serve.add_argument("--shards", type=int, default=4,
                       help="shard count when starting without a snapshot")
    serve.add_argument("--save-on-exit", action="store_true",
                       help="write the snapshot back on quit/EOF (needs --snapshot)")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="serve the newline-delimited JSON protocol over "
                            "TCP (request coalescing, metrics, hot reload) "
                            "instead of the stdio loop; port 0 picks a free "
                            "port")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="coalescer batch size: concurrent estimates are "
                            "answered through one batched engine call "
                            "(default: 64; 1 disables coalescing)")
    serve.add_argument("--max-delay-ms", type=float, default=2.0,
                       help="longest a queued estimate waits for batch "
                            "companions, in milliseconds (default: 2)")
    serve.add_argument("--no-binary-wire", action="store_true",
                       help="with --listen: refuse the binary frame "
                            "handshake and serve NDJSON only (debugging)")
    serve.add_argument("--max-queue", type=int, default=1024,
                       help="admission cap on queued+in-flight estimates; "
                            "beyond it requests get fast 'overloaded' errors "
                            "(default: 1024)")
    serve.add_argument("--max-frame-bytes", type=int, default=None,
                       metavar="BYTES",
                       help="with --listen: upper bound on one request or "
                            "response frame, enforced on both the NDJSON "
                            "and binary wire paths (default: 16 MiB)")
    serve.add_argument("--admin-token", default=None, metavar="TOKEN",
                       help="with --listen: enable the authenticated admin "
                            "role; with a tenant registry present, "
                            "unauthenticated connections keep only the "
                            "read-only surface")
    serve.add_argument("--snapshot-on-exit", action="store_true",
                       help="with --listen: on SIGTERM/SIGINT stop accepting, "
                            "drain in-flight requests and flush a final "
                            "snapshot to --snapshot before exiting")
    serve.add_argument("--wal-dir", default=None, metavar="DIR",
                       help="durable serving: recover from this write-ahead "
                            "log directory on start (snapshot + replay tail) "
                            "and log every ingest before applying it")
    serve.add_argument("--wal-sync", default="flush",
                       choices=("none", "flush", "fsync"),
                       help="WAL flush discipline: none (buffered, fastest), "
                            "flush (OS page cache per append — survives "
                            "kill -9, the default), fsync (survives power "
                            "loss)")
    serve.add_argument("--wal-checkpoint-boxes", type=int, default=None,
                       metavar="N",
                       help="auto-checkpoint: snapshot + truncate the WAL "
                            "once N update rows accumulate in the log "
                            "(default: manual checkpoints only)")
    add_format_arg(serve)

    tenant = sub.add_parser(
        "tenant", help="administer the tenant registry of a running server")
    tenant.add_argument("action",
                        choices=("create", "list", "describe", "update",
                                 "disable", "enable", "remove"),
                        help="registry action (all but a self-describe "
                             "require the admin token)")
    tenant.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="address of the running server or cluster "
                             "router")
    add_token_arg(tenant)
    add_wire_arg(tenant)
    tenant.add_argument("--tenant", default=None, metavar="ID",
                        help="tenant id the action applies to (optional for "
                             "list, and for describe on a tenant-token "
                             "connection)")
    tenant.add_argument("--tenant-token", default=None, metavar="TOKEN",
                        help="API token to install (create, or rotation via "
                             "update); only its SHA-256 hash is stored")
    tenant.add_argument("--quota", default=None, metavar="JSON",
                        help='quota object, e.g. \'{"ingest_boxes_per_sec": '
                             '50000, "max_estimates_in_flight": 64, '
                             '"share": 4}\' (create/update)')
    tenant.add_argument("--json", action="store_true",
                        help="print one compact machine-readable line "
                             "instead of indented JSON")

    wal = sub.add_parser(
        "wal", help="inspect a write-ahead log directory (segments, durable "
                    "records, torn-tail bytes)")
    wal.add_argument("--dir", required=True, metavar="DIR",
                     help="WAL directory to scan")
    wal.add_argument("--since", type=int, default=0, metavar="SEQNO",
                     help="only count records after this sequence number")
    wal.add_argument("--events", action="store_true",
                     help="also print one JSON line per durable record event")

    # -- cluster commands ---------------------------------------------------------

    cluster = sub.add_parser(
        "cluster", help="run many workers as one logical sketch service")
    csub = cluster.add_subparsers(dest="cluster_command", required=True)

    cserve = csub.add_parser(
        "serve", help="spawn N local worker processes and a router over them")
    cserve.add_argument("--workers", type=int, default=2,
                        help="worker subprocess count (default: 2)")
    cserve.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                        help="router listen address (default: 127.0.0.1:0 — "
                             "a free port, announced on stdout)")
    cserve.add_argument("--snapshot", default=None,
                        help="bootstrap mode: worker 0 loads this snapshot "
                             "and the others become bit-identical read "
                             "replicas of it (omit for N empty shard workers)")
    cserve.add_argument("--slots", type=int, default=64,
                        help="cluster shard slots on the hash ring (default: 64)")
    cserve.add_argument("--max-batch", type=int, default=64,
                        help="per-worker coalescer batch size (default: 64)")
    cserve.add_argument("--max-delay-ms", type=float, default=2.0,
                        help="per-worker coalescer delay in ms (default: 2)")
    cserve.add_argument("--worker-wire", default="auto",
                        choices=("auto", "binary", "ndjson"),
                        help="wire format for router->worker links "
                             "(default: auto — binary when workers offer it)")
    cserve.add_argument("--admin-token", default=None, metavar="TOKEN",
                        help="multi-tenant fleet: the router's admin token; "
                             "spawned workers start with the same token and "
                             "the router authenticates its worker links "
                             "with it")

    croute = csub.add_parser(
        "route", help="route over already-running workers (no spawning)")
    croute.add_argument("--worker", action="append", required=True,
                        metavar="HOST:PORT", dest="workers",
                        help="a running worker's address (repeatable)")
    croute.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                        help="router listen address (default: 127.0.0.1:0)")
    croute.add_argument("--slots", type=int, default=64,
                        help="cluster shard slots on the hash ring (default: 64)")
    croute.add_argument("--worker-wire", default="auto",
                        choices=("auto", "binary", "ndjson"),
                        help="wire format for router->worker links "
                             "(default: auto — binary when workers offer it)")
    croute.add_argument("--admin-token", default=None, metavar="TOKEN",
                        help="multi-tenant fleet: the router's admin token "
                             "(also presented on worker links unless "
                             "--worker-token overrides it)")
    croute.add_argument("--worker-token", default=None, metavar="TOKEN",
                        help="admin token the router presents on its worker "
                             "links (default: --admin-token)")

    cstatus = csub.add_parser(
        "status", help="print a running router's cluster topology as JSON")
    cstatus.add_argument("--connect", required=True, metavar="HOST:PORT",
                         help="the router's address")
    add_token_arg(cstatus)
    add_wire_arg(cstatus)
    cstatus.add_argument("--json", action="store_true",
                         help="print the topology as one compact JSON line "
                              "(machine-readable) instead of indented output")
    return parser


def _run_experiments(names: Sequence[str], scale_name: str, seed: int,
                     output: str | None) -> int:
    scale = get_scale(scale_name)
    chunks: list[str] = []
    for name in names:
        generator = FIGURES[name]
        start = time.perf_counter()
        result = generator(scale, seed=seed)
        elapsed = time.perf_counter() - start
        text = result.to_text() + f"\n(completed in {elapsed:.1f} s)\n"
        print(text)
        chunks.append(text)
    if output:
        with open(output, "a", encoding="utf-8") as handle:
            handle.write("\n".join(chunks))
            handle.write("\n")
    return 0


# -- sketch service helpers ----------------------------------------------------------


def _parse_sizes(text: str) -> tuple[int, ...]:
    parts = [p for p in text.replace("x", ",").split(",") if p]
    return tuple(int(p) for p in parts)


def _boxes_from_rows(rows, dimension: int | None = None) -> BoxSet:
    """Rows of ``[lo_1..lo_d, hi_1..hi_d]`` as a BoxSet (shared wire codec)."""
    from repro.server.protocol import boxes_from_rows

    return boxes_from_rows(rows, dimension)


def _parse_hostport(text: str) -> tuple[str, int]:
    """``host:port`` (or bare ``:port`` for localhost) as an address pair."""
    host, separator, port = text.rpartition(":")
    if not separator or not port.isdigit():
        raise ReproError(f"expected HOST:PORT, got {text!r}")
    return (host or "127.0.0.1", int(port))


def _connect_client(args):
    from repro.client import ServiceClient

    host, port = _parse_hostport(args.connect)
    try:
        return ServiceClient(host, port, wire=getattr(args, "wire", "auto"),
                             token=getattr(args, "token", None))
    except OSError as exc:
        raise ReproError(f"cannot connect to {host}:{port}: {exc}") from exc


def _require_target(args) -> None:
    """One-shot service ops need a running server or a snapshot file."""
    if args.connect is None and args.snapshot is None:
        raise ReproError(
            "pass --connect HOST:PORT to use a running server, or "
            "--snapshot PATH for the offline path"
        )


def _load_or_create_service(path: str | None, shards: int):
    from repro.service import EstimationService

    if path and os.path.exists(path):
        return EstimationService.load(path), True
    return EstimationService(num_shards=shards), False


def _estimate_payload(result) -> dict:
    return {
        "estimate": result.estimate,
        "selectivity": result.selectivity,
        "left_count": result.left_count,
        "right_count": result.right_count,
    }


def _ingest_options(args) -> dict:
    options = {}
    if args.epsilon is not None:
        options["epsilon"] = args.epsilon
    if args.strict:
        options["strict"] = True
    if args.endpoint_policy is not None:
        options["endpoint_policy"] = args.endpoint_policy
    return options


def _check_spec_conflicts(args, spec) -> None:
    """An already-registered name: configuration flags must agree with the
    stored spec rather than being silently ignored."""
    conflicts = []
    if args.family is not None and args.family != spec.family:
        conflicts.append(f"--family {args.family} (registered: {spec.family})")
    if args.sizes is not None and _parse_sizes(args.sizes) != spec.sizes:
        conflicts.append(f"--sizes {args.sizes} "
                         f"(registered: {'x'.join(map(str, spec.sizes))})")
    if args.epsilon is not None and args.epsilon != spec.option("epsilon", None):
        conflicts.append(f"--epsilon {args.epsilon} "
                         f"(registered: {spec.option('epsilon', None)})")
    if args.strict and not spec.option("strict", False):
        conflicts.append("--strict (registered: non-strict)")
    if args.endpoint_policy is not None and \
            args.endpoint_policy != spec.option("endpoint_policy", "transform"):
        conflicts.append(f"--endpoint-policy {args.endpoint_policy} "
                         f"(registered: {spec.option('endpoint_policy', 'transform')})")
    if args.instances is not None and args.instances != spec.num_instances:
        conflicts.append(f"--instances {args.instances} "
                         f"(registered: {spec.num_instances})")
    if args.seed is not None and args.seed != spec.seed:
        conflicts.append(f"--seed {args.seed} (registered: {spec.seed})")
    if conflicts:
        raise ReproError(
            f"estimator {args.name!r} is already registered with a "
            f"different configuration: {'; '.join(conflicts)}"
        )


def _ingest_boxes(args, spec) -> BoxSet:
    """The boxes to ingest: a JSON file of rows, or synthetic data."""
    from repro.core.domain import Domain
    from repro.service import synthetic_boxes

    if args.boxes is not None:
        with open(args.boxes, "r", encoding="utf-8") as handle:
            return _boxes_from_rows(json.load(handle), spec.dimension)
    count = args.count if args.count is not None else 1000
    degenerate = args.side in spec.info.point_sides or (
        spec.info.aliases.get(args.side, args.side) in spec.info.point_sides)
    return synthetic_boxes(Domain(spec.sizes, max_levels=spec.max_levels),
                           count, seed=args.data_seed, degenerate=degenerate)


def _run_ingest_remote(args) -> int:
    """Satellite path: reuse a running server instead of restoring a snapshot."""
    from repro.service import EstimatorSpec

    with _connect_client(args) as client:
        estimators = client.stats()["estimators"]
        created = args.name not in estimators
        if created:
            if args.family is None or args.sizes is None:
                raise ReproError(
                    f"estimator {args.name!r} is not on the server; pass "
                    f"--family and --sizes to register it"
                )
            reply = client.register(
                args.name, family=args.family, sizes=_parse_sizes(args.sizes),
                instances=256 if args.instances is None else args.instances,
                seed=0 if args.seed is None else args.seed,
                **_ingest_options(args))
            spec = EstimatorSpec.from_dict(reply["spec"])
        else:
            spec = EstimatorSpec.from_dict(estimators[args.name])
            _check_spec_conflicts(args, spec)
        boxes = _ingest_boxes(args, spec)
        reply = client.ingest(args.name, boxes, side=args.side, kind=args.kind)
        print(json.dumps({
            "connect": args.connect,
            "created": created,
            "name": args.name,
            "side": args.side,
            "kind": args.kind,
            "boxes": reply["boxes"],
            "pending": reply["pending"],
        }))
    return 0


def _run_ingest(args) -> int:
    from repro.service import EstimatorSpec

    _require_target(args)
    if args.connect is not None:
        return _run_ingest_remote(args)
    service, existed = _load_or_create_service(args.snapshot, args.shards)
    if args.name not in service:
        if args.family is None or args.sizes is None:
            raise ReproError(
                f"estimator {args.name!r} is not in the snapshot; pass --family "
                f"and --sizes to register it"
            )
        spec = EstimatorSpec.create(
            args.family, _parse_sizes(args.sizes),
            256 if args.instances is None else args.instances,
            seed=0 if args.seed is None else args.seed, **_ingest_options(args))
        service.register(args.name, spec)
    else:
        _check_spec_conflicts(args, service.spec(args.name))
    spec = service.spec(args.name)

    boxes = _ingest_boxes(args, spec)
    service.ingest(args.name, boxes, side=args.side, kind=args.kind)
    report = service.flush()
    service.save(args.snapshot, format=args.format)
    print(json.dumps({
        "snapshot": args.snapshot,
        "created": not existed,
        "name": args.name,
        "side": args.side,
        "kind": args.kind,
        "boxes": len(boxes),
        "flushed_batches": report.batches,
        "shards": service.num_shards,
    }))
    return 0


def _read_batch_queries(path: str, dimension: int):
    """Parse a JSON-lines batch file into a query batch.

    Every non-empty line is either a ``[lo_1..lo_d, hi_1..hi_d]`` array
    (queryable families) or ``null`` (query-less families); the two shapes
    cannot be mixed, because the batch goes to a single estimator.  Returns
    a :class:`BoxSet` for rectangle batches and a list of ``None`` for
    query-less ones.
    """
    handle = sys.stdin if path == "-" else open(path, "r", encoding="utf-8")
    rows: list = []
    try:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(f"batch file line {number}: {exc}") from exc
            rows.append(row)
    finally:
        if handle is not sys.stdin:
            handle.close()
    if all(row is None for row in rows):
        return list(rows)
    if any(row is None for row in rows):
        raise ReproError(
            "batch file mixes null entries with query rectangles; a batch "
            "targets one estimator and its queries are all of one shape"
        )
    return _boxes_from_rows(rows, dimension)


@contextmanager
def _jsonl_sink(path: str | None):
    """A JSON-lines output stream: stdout for ``None``/``-``, else a file."""
    out = (sys.stdout if path in (None, "-")
           else open(path, "w", encoding="utf-8"))
    try:
        yield out
    finally:
        if out is not sys.stdout:
            out.close()
        else:
            out.flush()


def _write_batch_results(results, args) -> None:
    """JSON-lines batch output, shared by the offline and remote paths."""
    with _jsonl_sink(args.batch_output) as out:
        for index, result in enumerate(results):
            out.write(json.dumps({"index": index, "name": args.name,
                                  **_estimate_payload(result)}) + "\n")


def _run_estimate_batch(service, args) -> int:
    spec = service.spec(args.name)
    queries = _read_batch_queries(args.batch_file, spec.dimension)
    results = service.estimate_batch(args.name, queries, workers=args.workers)
    _write_batch_results(results, args)
    return 0


def _parse_query_arg(text: str) -> BoxSet:
    coords = [int(c) for c in text.split(",") if c]
    if len(coords) % 2:
        raise ReproError("--query needs lo_1,..,lo_d,hi_1,..,hi_d")
    return _boxes_from_rows([coords], len(coords) // 2)


def _run_estimate_remote(args) -> int:
    """Satellite path: reuse a running server instead of restoring a snapshot."""
    from repro.service import EstimatorSpec

    if args.workers is not None:
        raise ReproError("--workers applies to the offline --snapshot path; "
                         "a running server batches through its coalescer")
    with _connect_client(args) as client:
        if args.batch_file is not None:
            if args.query is not None:
                raise ReproError("--query and --batch-file are mutually exclusive")
            estimators = client.stats()["estimators"]
            if args.name not in estimators:
                raise ReproError(f"estimator {args.name!r} is not on the server")
            spec = EstimatorSpec.from_dict(estimators[args.name])
            queries = _read_batch_queries(args.batch_file, spec.dimension)
            results = client.estimate_many(args.name, queries)
            _write_batch_results(results, args)
            return 0
        if args.batch_output is not None:
            raise ReproError("--batch-output requires --batch-file")
        query = _parse_query_arg(args.query) if args.query is not None else None
        result = client.estimate(args.name, query)
        if getattr(args, "json", False):
            # Structured envelope for scripting: where the answer came
            # from alongside the result fields themselves.
            print(json.dumps({
                "op": "estimate",
                "server": f"{client.host}:{client.port}",
                "wire": client.wire_format,
                "name": args.name,
                "query": args.query,
                "result": _estimate_payload(result),
            }, sort_keys=True))
        else:
            print(json.dumps({"name": args.name, **_estimate_payload(result)}))
    return 0


def _run_explain(service, args) -> int:
    """``estimate --explain``: print the compiled program(s) as JSON lines.

    Shows what the estimate *is* before it runs: one JSON object per
    program with the word-product terms, every letter-sum request (with
    its dyadic cover size) and the median-of-means reduction plan — the
    exact batch the ProgramExecutor would execute.
    """
    from repro.core.program import describe_program
    from repro.service.specs import compile_programs

    spec = service.spec(args.name)
    if args.batch_file is not None:
        if args.query is not None:
            raise ReproError("--query and --batch-file are mutually exclusive")
        queries = _read_batch_queries(args.batch_file, spec.dimension)
    elif spec.info.queryable:
        if args.query is None:
            raise ReproError(
                f"family {spec.family!r} programs compile per query; pass "
                f"--query or --batch-file")
        queries = _parse_query_arg(args.query)
    else:
        if args.query is not None:
            raise ReproError(
                f"family {spec.family!r} does not take a query argument")
        queries = 1
    view = service.merged_view(args.name)
    programs = compile_programs(spec, view, queries)
    with _jsonl_sink(args.batch_output) as out:
        for index, program in enumerate(programs):
            out.write(json.dumps({
                "index": index,
                "name": args.name,
                "family": spec.family,
                "program": describe_program(program),
            }) + "\n")
    return 0


def _run_estimate(args) -> int:
    from repro.service import EstimationService

    _require_target(args)
    if args.connect is not None:
        if args.explain:
            raise ReproError("--explain inspects a local snapshot; it does "
                             "not apply to --connect")
        return _run_estimate_remote(args)
    service = EstimationService.load(args.snapshot)
    if args.explain:
        if args.workers is not None:
            raise ReproError("--workers does not apply to --explain")
        return _run_explain(service, args)
    if args.batch_file is not None:
        if args.query is not None:
            raise ReproError("--query and --batch-file are mutually exclusive")
        return _run_estimate_batch(service, args)
    if args.batch_output is not None or args.workers is not None:
        raise ReproError("--batch-output and --workers require --batch-file")
    query = _parse_query_arg(args.query) if args.query is not None else None
    result = service.estimate(args.name, query)
    print(json.dumps({"name": args.name, **_estimate_payload(result)}))
    return 0


def service_command_loop(service, in_stream, out_stream, *,
                         snapshot_path: str | None = None,
                         save_on_exit: bool = False,
                         snapshot_format: str = "auto") -> int:
    """The ``serve`` loop: one JSON request per line, one JSON reply per line.

    Supported operations::

        {"op": "register", "name": ..., "family": ..., "sizes": [..],
         "instances": 256, "seed": 0, "options": {...}}
        {"op": "ingest", "name": ..., "side": "left", "kind": "insert",
         "boxes": [[lo_1..lo_d, hi_1..hi_d], ...]}
        {"op": "estimate", "name": ..., "query": [lo_1..lo_d, hi_1..hi_d]}
        {"op": "flush"} | {"op": "stats"}
        {"op": "save", "path": ..., "format": "auto" | "binary" | "json"}
        {"op": "quit"}
    """
    from repro.service import EstimatorSpec

    def reply(payload: dict) -> None:
        out_stream.write(json.dumps(payload) + "\n")
        out_stream.flush()

    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
            op = request.get("op")
            if op == "quit":
                reply({"ok": True, "op": "quit"})
                break
            if op == "register":
                spec = EstimatorSpec.create(
                    request["family"], request["sizes"],
                    int(request.get("instances", 256)),
                    seed=int(request.get("seed", 0)),
                    **request.get("options", {}),
                )
                service.register(request["name"], spec)
                reply({"ok": True, "op": op, "name": request["name"],
                       "spec": spec.to_dict()})
            elif op == "ingest":
                spec = service.spec(request["name"])
                boxes = _boxes_from_rows(request["boxes"], spec.dimension)
                pending = service.ingest(request["name"], boxes,
                                         side=request.get("side", "left"),
                                         kind=request.get("kind", "insert"))
                reply({"ok": True, "op": op, "boxes": len(boxes),
                       "pending": pending})
            elif op == "estimate":
                spec = service.spec(request["name"])
                query = None
                if request.get("query") is not None:
                    query = _boxes_from_rows([request["query"]], spec.dimension)
                result = service.estimate(request["name"], query)
                reply({"ok": True, "op": op, "name": request["name"],
                       **_estimate_payload(result)})
            elif op == "flush":
                report = service.flush()
                reply({"ok": True, "op": op, "boxes": report.boxes,
                       "batches": report.batches})
            elif op == "stats":
                reply({"ok": True, "op": op, **service.describe()})
            elif op == "save":
                path = request.get("path", snapshot_path)
                if not path:
                    raise ReproError("save needs a path (or start with --snapshot)")
                service.save(path, format=request.get("format", snapshot_format))
                reply({"ok": True, "op": op, "path": path})
            else:
                raise ReproError(f"unknown op {op!r}")
        except (ReproError, OSError, KeyError, TypeError, ValueError) as exc:
            # A failed op (including a bad save path or a full disk) must not
            # take down the server and its in-memory sketches.
            reply({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
    if save_on_exit and snapshot_path:
        service.save(snapshot_path, format=snapshot_format)
    return 0


def _run_serve_listen(args, service, *, recovery=None) -> int:
    import asyncio

    from repro.server import ServerConfig, serve

    host, port = _parse_hostport(args.listen)
    config_kwargs = {}
    if getattr(args, "max_frame_bytes", None) is not None:
        config_kwargs["max_line_bytes"] = args.max_frame_bytes
    config = ServerConfig(host=host, port=port, max_batch=args.max_batch,
                          max_delay=args.max_delay_ms / 1000.0,
                          max_queue=args.max_queue,
                          binary_wire=not args.no_binary_wire,
                          admin_token=getattr(args, "admin_token", None),
                          **config_kwargs)
    # With a WAL the snapshot default falls back to the in-directory
    # checkpoint base, so snapshot/reload verbs and inline bootstraps all
    # share one recovery lineage.
    snapshot_path = args.snapshot
    if snapshot_path is None and service.wal is not None:
        snapshot_path = service.wal_checkpoint_path

    started = {}

    def announce(server) -> None:
        started["server"] = server
        banner = {"listening": f"{host}:{server.port}",
                  "estimators": service.names(),
                  "max_batch": args.max_batch,
                  "max_queue": args.max_queue}
        if recovery is not None:
            banner["wal"] = {"dir": args.wal_dir, "sync": args.wal_sync,
                             "recovery": recovery}
        print(json.dumps(banner), flush=True)

    try:
        # Signal handlers make SIGTERM/SIGINT a graceful drain: the server
        # stops accepting, finishes in-flight coalescer buckets, then serve()
        # returns normally so the final snapshot below reflects every
        # acknowledged write.  KeyboardInterrupt stays as a fallback for
        # platforms without loop signal-handler support.
        asyncio.run(serve(service, config=config, snapshot_path=snapshot_path,
                          snapshot_format=args.format, ready=announce,
                          install_signal_handlers=True))
    except KeyboardInterrupt:
        pass
    finally:
        if (args.save_on_exit or args.snapshot_on_exit) and args.snapshot:
            # A reload may have hot-swapped the service; save the live one.
            current = started["server"].service if "server" in started else service
            current.save(args.snapshot, format=args.format)
    return 0


def _run_serve(args) -> int:
    recovery = None
    if args.wal_dir is not None:
        from repro.wal.recovery import default_checkpoint_path, recover_service

        # Durable serving: the snapshot (explicit, or the in-WAL-directory
        # checkpoint base) plus the log tail reconstruct every
        # acknowledged write, torn tail excluded.
        base = args.snapshot or default_checkpoint_path(args.wal_dir)
        service, report = recover_service(
            args.wal_dir, base, sync=args.wal_sync,
            checkpoint_path=base,
            checkpoint_boxes=args.wal_checkpoint_boxes,
            num_shards=args.shards)
        recovery = report.as_dict()
    else:
        service, _ = _load_or_create_service(args.snapshot, args.shards)
    if args.listen is not None:
        return _run_serve_listen(args, service, recovery=recovery)
    return service_command_loop(service, sys.stdin, sys.stdout,
                                snapshot_path=args.snapshot,
                                save_on_exit=args.save_on_exit,
                                snapshot_format=args.format)


def _run_wal_inspect(args) -> int:
    """The ``wal`` command: a JSON report of a log directory's contents."""
    from repro.wal.framing import decode_payload
    from repro.wal.reader import list_segments, scan_segment

    segments = []
    records = 0
    boxes = 0
    last_seqno = 0
    torn_bytes = 0
    events = []
    for path in list_segments(args.dir):
        scan = scan_segment(path)
        segments.append({"path": path, "records": len(scan.records),
                         "valid_bytes": scan.valid_bytes,
                         "truncated_bytes": scan.truncated_bytes})
        torn_bytes += scan.truncated_bytes
        for seqno, payload in scan.records:
            if seqno <= args.since:
                continue
            event = decode_payload(payload)
            records += 1
            last_seqno = max(last_seqno, seqno)
            if event["type"] == "update":
                boxes += int(len(event["rows"]))
            if args.events:
                summary = {"seqno": seqno, "type": event["type"],
                           "name": event["name"]}
                if event["type"] == "update":
                    summary.update(side=event["side"], kind=event["kind"],
                                   rows=int(len(event["rows"])))
                events.append(summary)
    for line in events:
        print(json.dumps(line))
    print(json.dumps({"dir": args.dir, "since": args.since,
                      "segments": segments, "records": records,
                      "boxes": boxes, "last_seqno": last_seqno,
                      "torn_bytes": torn_bytes}, indent=2))
    return 0


# -- cluster commands ----------------------------------------------------------------


def _announce_router(router, *, workers, mode) -> None:
    """The router's stdout banner (same shape fleet tooling parses)."""
    print(json.dumps({"listening": f"{router.config.host}:{router.port}",
                      "mode": mode,
                      "workers": workers,
                      "estimators": router.estimators()}), flush=True)


def _run_cluster_serve(args) -> int:
    """Spawn N local workers, wire a router over them, serve until signalled."""
    import asyncio

    from repro.cluster import ClusterRouter, RouterConfig
    from repro.cluster.fleet import spawn_worker
    from repro.cluster.router import serve_router

    if args.workers < 1:
        raise ReproError("--workers must be at least 1")
    host, port = _parse_hostport(args.listen)
    processes = []
    extra_args: tuple[str, ...] = ()
    if args.admin_token:
        # The whole fleet shares one admin token: spawned workers enforce
        # it, and the router both offers it to clients and presents it on
        # its worker links.
        extra_args = ("--admin-token", args.admin_token)
    try:
        for index in range(args.workers):
            snapshot = args.snapshot if index == 0 else None
            processes.append(spawn_worker(snapshot=snapshot,
                                          max_batch=args.max_batch,
                                          max_delay_ms=args.max_delay_ms,
                                          extra_args=extra_args))
        router = ClusterRouter(config=RouterConfig(
            host=host, port=port, num_slots=args.slots,
            worker_wire=args.worker_wire,
            admin_token=args.admin_token,
            worker_token=args.admin_token))

        async def run() -> None:
            await router.attach("w0", processes[0].host, processes[0].port)
            for index, worker in enumerate(processes[1:], start=1):
                if args.snapshot:
                    # Bootstrap mode: replicas mirror worker 0's snapshot
                    # bit-identically, scaling estimate throughput.
                    await router.bootstrap_replica(f"r{index}", worker.host,
                                                   worker.port, source="w0")
                else:
                    await router.attach(f"w{index}", worker.host, worker.port)

            def announce(started) -> None:
                _announce_router(
                    started, workers=[w.address for w in processes],
                    mode="replicas" if args.snapshot else "shards")

            await serve_router(router, ready=announce,
                               install_signal_handlers=True)

        try:
            asyncio.run(run())
        except KeyboardInterrupt:
            pass
    finally:
        for worker in processes:
            worker.stop()
    return 0


def _run_cluster_route(args) -> int:
    """Route over an externally-managed fleet of running workers."""
    import asyncio

    from repro.cluster import ClusterRouter, RouterConfig
    from repro.cluster.router import serve_router

    host, port = _parse_hostport(args.listen)
    targets = [_parse_hostport(text) for text in args.workers]
    router = ClusterRouter(config=RouterConfig(
        host=host, port=port, num_slots=args.slots,
        worker_wire=args.worker_wire,
        admin_token=args.admin_token,
        worker_token=args.worker_token or args.admin_token))

    async def run() -> None:
        for index, (whost, wport) in enumerate(targets):
            await router.attach(f"w{index}", whost, wport)

        def announce(started) -> None:
            _announce_router(started,
                             workers=[f"{h}:{p}" for h, p in targets],
                             mode="shards")

        await serve_router(router, ready=announce,
                           install_signal_handlers=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _run_cluster_status(args) -> int:
    with _connect_client(args) as client:
        status = client.cluster_status()
        if getattr(args, "json", False):
            # One compact machine-readable line (for shell pipelines);
            # the human-facing default stays indented.
            print(json.dumps(status, separators=(",", ":"), sort_keys=True))
        else:
            print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def _run_tenant(args) -> int:
    fields: dict = {}
    if args.tenant_token is not None:
        fields["token"] = args.tenant_token
    if args.quota is not None:
        try:
            fields["quota"] = json.loads(args.quota)
        except json.JSONDecodeError as exc:
            raise ReproError(f"--quota must be a JSON object: {exc}") from exc
    with _connect_client(args) as client:
        reply = client.tenant(args.action, args.tenant, **fields)
    body = {key: value for key, value in reply.items()
            if key not in ("ok", "op")}
    if args.json:
        print(json.dumps(body, separators=(",", ":"), sort_keys=True))
    else:
        print(json.dumps(body, indent=2, sort_keys=True))
    return 0


def _run_cluster(args) -> int:
    if args.cluster_command == "serve":
        return _run_cluster_serve(args)
    if args.cluster_command == "route":
        return _run_cluster_route(args)
    return _run_cluster_status(args)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by the ``repro-spatial`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        print("experiments:")
        for name in sorted(FIGURES):
            doc = (FIGURES[name].__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"  {name:28s} {summary}")
        print("\nscales:")
        for name, scale in sorted(SCALES.items()):
            print(f"  {name:8s} runs={scale.runs} synthetic_sizes={scale.synthetic_sizes}")
        return 0

    if args.command == "run":
        return _run_experiments(args.experiments, args.scale, args.seed, args.output)

    if args.command == "all":
        return _run_experiments(sorted(FIGURES), args.scale, args.seed, args.output)

    try:
        if args.command == "ingest":
            return _run_ingest(args)
        if args.command == "estimate":
            return _run_estimate(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "tenant":
            return _run_tenant(args)
        if args.command == "wal":
            return _run_wal_inspect(args)
        if args.command == "cluster":
            return _run_cluster(args)
    except FileNotFoundError as exc:
        print(f"error: no such file: {exc.filename or exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
