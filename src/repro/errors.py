"""Exception types raised by the :mod:`repro` library.

Keeping a small, explicit exception hierarchy lets callers distinguish
user errors (bad parameters, malformed data) from internal invariant
violations without having to parse message strings.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class DomainError(ReproError):
    """A coordinate or domain specification is invalid.

    Raised for negative domain sizes, coordinates outside the declared
    domain, or intervals whose lower endpoint exceeds the upper endpoint.
    """


class DimensionalityError(ReproError):
    """Data of the wrong dimensionality was passed to an operator."""


class SketchConfigError(ReproError):
    """A sketch was configured inconsistently.

    Examples: zero instances, a boosting split that does not divide the
    instance count, or mixing sketches built over different xi families.
    """


class MergeCompatibilityError(SketchConfigError):
    """Two sketches cannot be combined (merged or snapshot-restored).

    Raised when the domains, word sets, instance counts or xi families
    (seeds) of two sketches disagree.  Sketches are linear projections, so
    merging is only meaningful between sketches of the *same* projection;
    anything else would silently produce garbage counters.
    """


class EstimationError(ReproError):
    """An estimate could not be produced (e.g. empty sketch, no instances)."""


class WorkloadError(ReproError):
    """A workload generator received invalid parameters."""


class EngineError(ReproError):
    """The mini query engine was asked to do something inconsistent."""


class ServiceError(ReproError):
    """The estimation service was misused.

    Examples: registering the same estimator name twice, ingesting into an
    unknown estimator or side, or asking a non-queryable family for a
    range-query estimate.
    """


class SnapshotError(ReproError):
    """A service snapshot is malformed or incompatible with this build."""


class ServerError(ReproError):
    """The network serving layer failed to process a request.

    Raised client-side when a server replies ``ok: false``; the protocol
    error code is preserved in :attr:`code` so callers can branch without
    parsing messages.
    """

    def __init__(self, message: str, *, code: str = "error") -> None:
        super().__init__(message)
        self.code = code


class ProtocolError(ServerError):
    """A network frame could not be parsed (bad JSON, oversized line, EOF)."""

    def __init__(self, message: str) -> None:
        super().__init__(message, code="protocol")


class ConnectionLostError(ProtocolError):
    """The connection dropped mid-request (EOF or reset between frames).

    Distinguished from other :class:`ProtocolError` cases (malformed JSON,
    oversized frames) because it is the one protocol failure a client may
    transparently retry: reconnect and resend, provided the request was
    idempotent.  :class:`~repro.client.ServiceClient` does exactly that.
    """


class FrameTooLargeError(ServerError):
    """A wire frame exceeded the server's configured size bound.

    Raised client-side when a server answers ``error_code:
    "frame_too_large"``.  Under the binary wire format the frame prefix
    declares its length up front, so the server drains and rejects the
    oversized frame while keeping the connection usable; under NDJSON the
    line framing is lost and the server closes the connection after
    replying.  :attr:`recoverable` records which case applies.
    """

    def __init__(self, message: str, *, recoverable: bool = False) -> None:
        super().__init__(message, code="frame_too_large")
        self.recoverable = recoverable


class DegradedError(ServerError):
    """A cluster request could not be fully served: shard owners are down.

    Raised client-side when a :class:`~repro.cluster.router.ClusterRouter`
    answers with ``error_code: "degraded"`` — some consistent-hash slots
    have no healthy worker, so estimates touching them cannot be reduced
    (and ingest batches routed to them are dropped).  :attr:`detail` holds
    the structured report: the missing workers and, for ingest, how many
    boxes were applied to surviving shards versus dropped.
    """

    def __init__(self, message: str = "cluster degraded: shard owners down",
                 *, detail: dict | None = None) -> None:
        super().__init__(message, code="degraded")
        self.detail = detail or {}


class OverloadedError(ServerError):
    """The server's admission queue is full; retry later.

    This is the graceful-degradation path: instead of queueing without
    bound (and eventually stalling every connection), the server answers
    immediately with a structured ``overloaded`` error.
    """

    def __init__(self, message: str = "server overloaded: admission queue full"
                 ) -> None:
        super().__init__(message, code="overloaded")


class AuthenticationError(ServerError):
    """A request could not be tied to an authorized principal.

    Two protocol codes share this type: ``auth_required`` (the server is
    tenant-aware and the connection has not completed the ``auth`` step)
    and ``auth_failed`` (the presented token is unknown/disabled, or an
    authenticated tenant asked for an admin-only verb).
    """

    def __init__(self, message: str, *, code: str = "auth_failed") -> None:
        super().__init__(message, code=code)


class QuotaExceededError(ServerError):
    """A tenant exhausted an admission quota; retry after a hint interval.

    Unlike :class:`OverloadedError` (the *server* is saturated), this is a
    per-tenant verdict: the tenant's ingest token bucket ran dry or its
    estimates-in-flight cap is reached.  :attr:`retry_after` carries the
    bucket's refill estimate in seconds (0.0 when unknown) so well-behaved
    clients can back off precisely instead of hammering.
    """

    def __init__(self, message: str = "tenant quota exceeded",
                 *, retry_after: float = 0.0) -> None:
        super().__init__(message, code="quota_exceeded")
        self.retry_after = float(retry_after)


class ClientTimeoutError(ServerError):
    """A client-side connect or read deadline expired.

    Raised only by :class:`~repro.client.ServiceClient` — never sent on the
    wire.  Timeouts are deliberately *not* retried by the idempotent-op
    retry path: the request may still be executing server-side, and the
    caller asked for a bounded wait, not a doubled one.
    """

    def __init__(self, message: str = "client deadline expired") -> None:
        super().__init__(message, code="timeout")
