"""Feed :mod:`repro.data.streams` update streams into a running service.

:class:`StreamDriver` adapts the repository's reproducible insert/delete
streams (:class:`~repro.data.streams.UpdateStream`) to the service's
batched ingestion API: operations are grouped into same-kind batches and
submitted as bulk inserts/deletes, which is both how a real feed would
arrive and what the vectorised sketch update path wants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.domain import Domain
from repro.data.streams import UpdateKind, UpdateStream
from repro.errors import ServiceError
from repro.geometry.boxset import BoxSet


@dataclass(frozen=True)
class DriveReport:
    """Totals of one stream replay."""

    inserts: int
    deletes: int
    batches: int

    @property
    def operations(self) -> int:
        return self.inserts + self.deletes


def synthetic_boxes(domain: Domain, count: int, *, seed: int = 0,
                    max_extent_fraction: float = 0.25,
                    degenerate: bool = False) -> BoxSet:
    """Uniform random boxes inside a domain (any dimensionality).

    A deliberately simple generator for examples, benchmarks and the CLI —
    the richer skewed/clustered generators live in :mod:`repro.data.synthetic`.
    ``degenerate=True`` produces points (``lo == hi``), as the epsilon-join
    family expects.
    """
    if count < 0:
        raise ServiceError("count must be non-negative")
    rng = np.random.default_rng(seed)
    sizes = np.asarray(domain.requested_sizes, dtype=np.int64)
    lows = rng.integers(0, np.maximum(sizes - 1, 1), size=(count, domain.dimension))
    if degenerate:
        return BoxSet(lows, lows.copy(), validate=False)
    max_extent = np.maximum((sizes * max_extent_fraction).astype(np.int64), 1)
    extents = rng.integers(1, np.maximum(max_extent, 2),
                           size=(count, domain.dimension))
    highs = np.minimum(lows + extents, sizes - 1)
    lows = np.minimum(lows, highs)
    return BoxSet(lows, highs, validate=False)


def synthetic_queries(domain: Domain, count: int, *, seed: int = 0,
                      max_extent_fraction: float = 0.25) -> BoxSet:
    """Uniform random query rectangles for batch-estimation workloads.

    A thin alias of :func:`synthetic_boxes` under a query-shaped name: the
    batched estimation benchmarks and the CLI's ``--batch-file`` tooling
    want reproducible query batches, and a query rectangle is just a box.
    """
    return synthetic_boxes(domain, count, seed=seed,
                           max_extent_fraction=max_extent_fraction)


class StreamDriver:
    """Replays an update stream into one side of a service estimator."""

    def __init__(self, service, name: str, *, side: str = "left",
                 batch_size: int = 512) -> None:
        if batch_size < 1:
            raise ServiceError("batch_size must be positive")
        service.spec(name)  # fail fast on unknown names
        self._service = service
        self._name = name
        self._side = side
        self._batch_size = int(batch_size)

    def drive(self, stream: UpdateStream) -> DriveReport:
        """Push the whole stream through the service in same-kind batches."""
        inserts = deletes = batches = 0
        for kind, boxes in stream.batches(self._batch_size):
            self._service.ingest(self._name, boxes, side=self._side,
                                 kind="insert" if kind is UpdateKind.INSERT else "delete")
            if kind is UpdateKind.INSERT:
                inserts += len(boxes)
            else:
                deletes += len(boxes)
            batches += 1
        return DriveReport(inserts=inserts, deletes=deletes, batches=batches)


def drive_stream(service, name: str, stream: UpdateStream, *,
                 side: str = "left", batch_size: int = 512) -> DriveReport:
    """One-shot convenience wrapper around :class:`StreamDriver`."""
    return StreamDriver(service, name, side=side, batch_size=batch_size).drive(stream)
