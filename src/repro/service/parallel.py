"""Process-parallel batched estimation over snapshot-restored workers.

Answering a large query batch is embarrassingly parallel: every query's
per-instance values depend only on the (immutable) merged-view counters,
so the batch can be split into sub-batches and evaluated on separate
workers.  Because estimators rebuild deterministically from their
``EstimatorSpec`` plus a state snapshot — the exact machinery the
service's persistence layer uses — a worker *process* can reconstruct a
bit-identical copy of the merged view and answer its sub-batch without
sharing any memory with the parent.

:func:`estimate_batch_parallel` implements that plan with a
``ProcessPoolExecutor``: the parent writes the merged view to a binary v2
snapshot file (:func:`~repro.service.snapshot.write_view_snapshot`) and
every worker **memory-maps** it once, at pool start-up (the executor's
``initializer``).  Nothing but a file path crosses the process boundary —
no pickled counter lists, no per-worker JSON decode; the counter tensors
are read-only mmap views shared through the page cache, so worker
start-up is near-zero-copy no matter how large the sketch is.  The
per-task payload is just the sub-batch coordinates.  Whenever a process
pool is unavailable — sandboxed environments, pickling limits, or
interpreter shutdown — the same sub-batches run on a thread pool over the
in-process view instead.  Results are bit-identical across the serial,
threaded and process paths.
"""

from __future__ import annotations

import os
import tempfile
from concurrent.futures import ThreadPoolExecutor
from typing import Any

import numpy as np

from repro.core.result import EstimateResult
from repro.errors import SnapshotError
from repro.geometry.boxset import BoxSet
from repro.service.specs import (
    EstimatorSpec,
    normalise_query_batch,
    run_estimate_batch,
)

#: Per-worker-process restored view, set by the pool initializer:
#: ``(cache_key, spec, estimator)``.  Pools live for one batch, so a worker
#: only ever holds the single view it was initialised with; the key guards
#: against a task ever being paired with the wrong view.
_WORKER_VIEW: tuple[tuple, EstimatorSpec, Any] | None = None


def _chunk_bounds(total: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into at most ``chunks`` contiguous spans."""
    chunks = max(1, min(chunks, total))
    base, extra = divmod(total, chunks)
    bounds = []
    start = 0
    for index in range(chunks):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _worker_init(cache_key: tuple, snapshot_path: str) -> None:
    """Pool initializer: memory-map the merged view once per worker process.

    The counters stay read-only mmap views into the snapshot file — the
    estimators only read them, and the copy-on-write guard in
    :class:`~repro.core.atomic.SketchBank` would materialise them if
    anything ever tried to mutate the restored view.
    """
    global _WORKER_VIEW
    from repro.service.snapshot import load_view_snapshot

    spec, view = load_view_snapshot(snapshot_path)
    _WORKER_VIEW = (cache_key, spec, view)


def _worker_estimate(cache_key: tuple, lows, highs) -> list[EstimateResult]:
    """Executed inside a worker process: answer one sub-batch from the view."""
    if _WORKER_VIEW is None or _WORKER_VIEW[0] != cache_key:
        # pragma: no cover - the initializer always ran for this pool
        raise RuntimeError("worker has no restored view for this batch")
    _, spec, view = _WORKER_VIEW
    boxes = BoxSet(np.asarray(lows, dtype=np.int64),
                   np.asarray(highs, dtype=np.int64), validate=False)
    return run_estimate_batch(spec, view, boxes)


def estimate_batch_parallel(spec: EstimatorSpec, view: Any, queries, *,
                            workers: int | None = None,
                            cache_key: tuple = ()) -> list[EstimateResult]:
    """Answer a query batch from a merged view, optionally fanned out.

    Parameters
    ----------
    spec / view:
        The estimator specification and the merged (all-shard) view to
        answer from.  The view is never mutated.
    queries:
        A :class:`BoxSet` / sequence of rectangles (queryable families) or
        a count / sequence of ``None`` (query-less families).
    workers:
        ``None``, ``0`` or ``1`` answers serially in-process (the default —
        the vectorised batch kernel is already fast); ``>= 2`` splits the
        batch into that many sub-batches and fans them out to a process
        pool, falling back to threads when no pool can be created.
    cache_key:
        Identifies the view across calls (name + store version); worker
        processes key their restored estimator by it, so a mislabelled key
        would answer from a stale view.  Callers must derive it atomically
        with the view.
    """
    normalised = normalise_query_batch(spec, queries)
    if isinstance(normalised, int):
        # Query-less families: the batch is one shared reduction regardless
        # of size, so there is nothing to fan out.
        return run_estimate_batch(spec, view, normalised)
    total = len(normalised)
    if total == 0:
        return []
    if workers is None or workers <= 1 or total < 2:
        return run_estimate_batch(spec, view, normalised)

    bounds = _chunk_bounds(total, workers)
    results = _try_process_pool(spec, view, normalised, bounds, cache_key)
    if results is None:
        results = _thread_pool(spec, view, normalised, bounds)
    return results


def _try_process_pool(spec: EstimatorSpec, view: Any, boxes: BoxSet,
                      bounds: list[tuple[int, int]], cache_key: tuple
                      ) -> list[EstimateResult] | None:
    """Fan sub-batches out to worker processes; ``None`` if no pool works.

    The merged view is written once to a temporary binary snapshot; worker
    processes receive only its path and restore by memory-mapping it.  The
    file is unlinked as soon as the pool has shut down (workers keep their
    mappings alive through the open file, POSIX-style).
    """
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:  # pragma: no cover - always available on CPython
        return None
    from repro.service.snapshot import write_view_snapshot

    snapshot_path = None
    try:
        handle, snapshot_path = tempfile.mkstemp(prefix="repro-view-",
                                                 suffix=".snap")
        os.close(handle)
        write_view_snapshot(spec, view, snapshot_path)
        with ProcessPoolExecutor(
                max_workers=len(bounds), initializer=_worker_init,
                initargs=(cache_key, snapshot_path)) as pool:
            futures = [
                pool.submit(_worker_estimate, cache_key,
                            boxes.lows[start:stop], boxes.highs[start:stop])
                for start, stop in bounds
            ]
            chunks = [future.result() for future in futures]
    except (OSError, PermissionError, BrokenProcessPool, RuntimeError,
            ImportError, SnapshotError):
        # No usable process pool (sandbox, shutdown, unwritable tmp dir):
        # the caller falls back to threads over the in-process view.
        return None
    finally:
        if snapshot_path is not None:
            try:
                os.unlink(snapshot_path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
    return [result for chunk in chunks for result in chunk]


def _thread_pool(spec: EstimatorSpec, view: Any, boxes: BoxSet,
                 bounds: list[tuple[int, int]]) -> list[EstimateResult]:
    """Thread fallback: sub-batches on the shared view (NumPy drops the GIL)."""
    def answer(span: tuple[int, int]) -> list[EstimateResult]:
        start, stop = span
        return run_estimate_batch(spec, view, boxes[start:stop])

    with ThreadPoolExecutor(max_workers=len(bounds),
                            thread_name_prefix="sketch-estimate") as pool:
        chunks = list(pool.map(answer, bounds))
    return [result for chunk in chunks for result in chunk]
