"""A sharded streaming sketch service built on the paper's linear sketches.

Atomic/dyadic sketches are linear projections, so sketches built
independently over partitions of a stream can be merged *exactly*.  This
package turns that property into a serving layer:

* :class:`~repro.service.specs.EstimatorSpec` — shared-seed specifications
  that keep shard sketches merge-compatible, for all eight estimator
  families,
* :class:`~repro.service.store.ShardedSketchStore` — hash-partitioned
  per-shard estimators with exact :meth:`merge_view` combination,
* :class:`~repro.service.ingest.IngestPipeline` — batched, optionally
  thread-parallel ingestion through the vectorised sketch updates,
* :class:`~repro.service.service.EstimationService` — the
  register/ingest/estimate/snapshot front-end with an LRU cache of merged
  query views and a batched ``estimate_batch`` query path,
* :mod:`~repro.service.parallel` — process-parallel batch evaluation over
  snapshot-restored workers (thread fallback included),
* :mod:`~repro.service.snapshot` — checkpoint/restore built on
  ``state_dict``/``load_state_dict``: binary v2 snapshots (raw counter
  tensors, memory-mapped restores) with a read-compatible JSON v1 format,
* :class:`~repro.service.driver.StreamDriver` — feeds
  :mod:`repro.data.streams` update streams into a running service.
"""

from repro.service.specs import (
    FAMILIES,
    EstimatorSpec,
    FamilyInfo,
    apply_update,
    family_info,
    run_estimate,
    run_estimate_batch,
)
from repro.service.store import ShardedSketchStore, partition_boxes, shard_ids
from repro.service.ingest import FlushReport, IngestPipeline, IngestStats
from repro.service.parallel import estimate_batch_parallel
from repro.service.service import EstimationService, ServiceStats
from repro.service.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_FORMATS,
    SNAPSHOT_VERSION,
    load_snapshot,
    load_view_snapshot,
    read_snapshot_state,
    restore_service,
    save_snapshot,
    service_snapshot,
    write_view_snapshot,
)
from repro.service.driver import (
    DriveReport,
    StreamDriver,
    drive_stream,
    synthetic_boxes,
    synthetic_queries,
)

__all__ = [
    "FAMILIES",
    "EstimatorSpec",
    "FamilyInfo",
    "family_info",
    "apply_update",
    "run_estimate",
    "run_estimate_batch",
    "estimate_batch_parallel",
    "ShardedSketchStore",
    "shard_ids",
    "partition_boxes",
    "IngestPipeline",
    "IngestStats",
    "FlushReport",
    "EstimationService",
    "ServiceStats",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_FORMATS",
    "SNAPSHOT_VERSION",
    "service_snapshot",
    "save_snapshot",
    "load_snapshot",
    "read_snapshot_state",
    "write_view_snapshot",
    "load_view_snapshot",
    "restore_service",
    "StreamDriver",
    "DriveReport",
    "drive_stream",
    "synthetic_boxes",
    "synthetic_queries",
]
