"""Batched ingestion: buffer updates, flush them through vectorised inserts.

Per-box sketch updates pay the full Python/NumPy dispatch overhead for a
single dyadic cover; the vectorised :meth:`repro.core.atomic.SketchBank.insert`
amortises that overhead over thousands of boxes.  The
:class:`IngestPipeline` therefore *buffers* submitted updates as per-shard
deltas and only touches the shard estimators on :meth:`flush`, where all
buffered inserts (and, separately, all deletes) of one ``(shard, name,
side)`` destination are concatenated into a single large batch.

Correctness relies on sketch linearity twice over: within one flush the
inserts and deletes of a destination commute, so regrouping them loses
nothing; and across shards the hash-partitioned deltas sum to exactly the
unsharded sketch.  Flushing is embarrassingly parallel across shards (no
two shards share estimator state), so the pipeline can optionally fan the
per-shard work out to a thread pool — NumPy releases the GIL for the bulk
of the update work.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServiceError
from repro.geometry.boxset import BoxSet
from repro.service.specs import UPDATE_KINDS, as_boxes
from repro.service.store import ShardedSketchStore


@dataclass(frozen=True)
class FlushReport:
    """What one :meth:`IngestPipeline.flush` call actually did."""

    boxes: int
    batches: int
    shards_touched: int
    names: tuple[str, ...]
    parallel: bool

    def __bool__(self) -> bool:
        return self.boxes > 0


@dataclass
class IngestStats:
    """Running totals of a pipeline's lifetime."""

    submitted_boxes: int = 0
    flushed_boxes: int = 0
    flushes: int = 0
    auto_flushes: int = 0
    flushed_batches: int = 0
    names: set = field(default_factory=set)


class IngestPipeline:
    """Buffers updates into per-shard deltas and flushes them in bulk.

    Parameters
    ----------
    store:
        The sharded store receiving the flushed deltas.
    flush_threshold:
        Submitting beyond this many buffered boxes triggers an automatic
        flush (``None`` disables auto-flushing).
    max_workers:
        Thread-pool width for parallel shard flushes.  ``None`` picks the
        shard count; ``0`` or ``1`` forces serial flushes.
    """

    def __init__(self, store: ShardedSketchStore, *,
                 flush_threshold: int | None = 8192,
                 max_workers: int | None = None) -> None:
        if flush_threshold is not None and flush_threshold < 1:
            raise ServiceError("flush_threshold must be positive (or None)")
        if max_workers is not None and max_workers < 0:
            raise ServiceError("max_workers must be non-negative")
        self._store = store
        self._threshold = flush_threshold
        self._max_workers = max_workers
        # deltas[shard][(name, side, kind)] -> list[BoxSet]
        self._deltas: list[dict[tuple[str, str, str], list[BoxSet]]] = [
            {} for _ in range(store.num_shards)
        ]
        self._pending = 0
        self._lock = threading.Lock()
        self._stats = IngestStats()

    # -- introspection ------------------------------------------------------------

    @property
    def store(self) -> ShardedSketchStore:
        return self._store

    @property
    def pending(self) -> int:
        """Number of buffered boxes not yet applied to the shards."""
        return self._pending

    @property
    def stats(self) -> IngestStats:
        return self._stats

    # -- buffering ----------------------------------------------------------------

    def submit(self, name: str, boxes, *, side: str = "left",
               kind: str = "insert") -> int:
        """Buffer one batch of updates; returns the new pending count.

        The batch is hash-partitioned immediately (routing is cheap and
        vectorised) so that flushing only has to concatenate and apply.
        """
        spec = self._store.spec(name)
        side = spec.info.resolve_side(side)
        if kind not in UPDATE_KINDS:
            raise ServiceError(f"update kind must be one of {UPDATE_KINDS}, got {kind!r}")
        boxes = as_boxes(boxes)
        if len(boxes) == 0:
            return self._pending
        key = (name, side, kind)
        with self._lock:
            for shard_index, part in enumerate(self._store.partition(boxes)):
                if part is not None:
                    self._deltas[shard_index].setdefault(key, []).append(part)
            self._pending += len(boxes)
            self._stats.submitted_boxes += len(boxes)
            self._stats.names.add(name)
            pending = self._pending
        if self._threshold is not None and pending >= self._threshold:
            self.flush(auto=True)
        return self._pending

    def discard(self, name: str) -> int:
        """Drop every buffered delta for *name*; returns boxes discarded.

        Unregistering an estimator with updates still buffered must not
        leave deltas behind — the next flush would try to apply them to a
        spec that no longer exists.
        """
        dropped = 0
        with self._lock:
            for shard_deltas in self._deltas:
                for key in [k for k in shard_deltas if k[0] == name]:
                    dropped += sum(len(part) for part in shard_deltas.pop(key))
            self._pending -= dropped
        return dropped

    # -- flushing -----------------------------------------------------------------

    def flush(self, *, parallel: bool | None = None, auto: bool = False) -> FlushReport:
        """Apply every buffered delta to its shard and clear the buffers.

        ``parallel=None`` (the default) uses the thread pool whenever the
        store has more than one shard and ``max_workers`` allows it.
        """
        with self._lock:
            deltas, self._deltas = self._deltas, [
                {} for _ in range(self._store.num_shards)
            ]
            flushed_boxes, self._pending = self._pending, 0

        work: list[tuple[int, dict[tuple[str, str, str], BoxSet]]] = []
        batches = 0
        names: set[str] = set()
        # Names under a delta watch additionally get a copy of their flushed
        # boxes recorded into the store's delta tracker (concatenated across
        # shards — the tracker estimator is unsharded).  Within one flush
        # the updates of a destination commute, so shard order is free.
        watched: dict[tuple[str, str, str], list[BoxSet]] = {}
        for shard_index, shard_deltas in enumerate(deltas):
            if not shard_deltas:
                continue
            grouped: dict[tuple[str, str, str], BoxSet] = {}
            for key in sorted(shard_deltas):
                grouped[key] = _concat(shard_deltas[key])
                names.add(key[0])
                batches += 1
                if self._store.is_watching(key[0]):
                    watched.setdefault(key, []).append(grouped[key])
            work.append((shard_index, grouped))

        if parallel is None:
            parallel = len(work) > 1 and (self._max_workers is None
                                          or self._max_workers > 1)
        if self._max_workers in (0, 1):
            parallel = False

        if parallel and len(work) > 1:
            workers = min(len(work), self._max_workers or len(work))
            with ThreadPoolExecutor(max_workers=workers,
                                    thread_name_prefix="sketch-flush") as pool:
                for _ in pool.map(self._flush_shard, work):
                    pass
        else:
            parallel = False
            for item in work:
                self._flush_shard(item)

        for (name, side, kind), parts in sorted(watched.items()):
            self._store.record_delta(name, side, kind, _concat(parts))
        # Every box of this flush was offered to the trackers above, so
        # watches stay live across the version bump.
        for name in names:
            self._store.mark_updated(name, delta_recorded=True)
        self._stats.flushes += 1 if work else 0
        self._stats.auto_flushes += 1 if (work and auto) else 0
        self._stats.flushed_boxes += flushed_boxes
        self._stats.flushed_batches += batches
        return FlushReport(boxes=flushed_boxes, batches=batches,
                           shards_touched=len(work), names=tuple(sorted(names)),
                           parallel=parallel)

    def _flush_shard(self, item: tuple[int, dict[tuple[str, str, str], BoxSet]]) -> None:
        shard_index, grouped = item
        for (name, side, kind), boxes in grouped.items():
            self._store.apply_to_shard(shard_index, name, side, kind, boxes)


def _concat(parts: list[BoxSet]) -> BoxSet:
    if len(parts) == 1:
        return parts[0]
    lows = np.vstack([part.lows for part in parts])
    highs = np.vstack([part.highs for part in parts])
    return BoxSet(lows, highs, validate=False)
