"""A hash-partitioned store of merge-compatible sketch shards.

:class:`ShardedSketchStore` is the heart of the sketch service: for every
registered estimator name it keeps ``num_shards`` independent estimators,
all built from one shared :class:`~repro.service.specs.EstimatorSpec`.
Because the spec fixes the seed, every shard draws identical xi families,
and the linearity of atomic sketches makes the shard copies *exactly*
mergeable: summing the shard counters yields bit-for-bit the sketch a
single estimator would have produced over the whole stream (counter
updates are integer-valued, so float64 addition is exact and
order-independent).

Boxes are routed to shards by a deterministic mix of their integer
coordinates (:func:`shard_ids`), so the same box always lands on the same
shard — a delete finds the shard that saw the insert, keeping every shard
sketch a valid linear summary of its partition.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.errors import ServiceError
from repro.geometry.boxset import BoxSet
from repro.service.specs import (
    EstimatorSpec,
    apply_update,
    run_estimate,
    run_estimate_batch,
)

_FNV_OFFSET = np.uint64(0xCBF29CE484222325)
_MIX_A = np.uint64(0x9E3779B97F4A7C15)
_MIX_B = np.uint64(0xBF58476D1CE4E5B9)
_MIX_C = np.uint64(0x94D049BB133111EB)


def shard_ids(boxes: BoxSet, num_shards: int) -> np.ndarray:
    """Deterministic shard assignment for every box (splitmix-style hash).

    The hash depends only on the box coordinates and the shard count, never
    on insertion order or process state, so inserts and their matching
    deletes always meet on the same shard.
    """
    if num_shards < 1:
        raise ServiceError("num_shards must be at least 1")
    count = len(boxes)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if num_shards == 1:
        return np.zeros(count, dtype=np.int64)
    lows = boxes.lows.astype(np.uint64)
    highs = boxes.highs.astype(np.uint64)
    h = np.full(count, _FNV_OFFSET, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for dim in range(boxes.dimension):
            h = (h ^ (lows[:, dim] + _MIX_A)) * _MIX_B
            h = (h ^ (highs[:, dim] + _MIX_C)) * _MIX_B
        h ^= h >> np.uint64(31)
        h *= _MIX_A
        h ^= h >> np.uint64(33)
    return (h % np.uint64(num_shards)).astype(np.int64)


def partition_boxes(boxes: BoxSet, num_shards: int,
                    ids: np.ndarray | None = None) -> list[BoxSet | None]:
    """Split a box set into per-shard subsets (``None`` for empty shards)."""
    if ids is None:
        ids = shard_ids(boxes, num_shards)
    parts: list[BoxSet | None] = [None] * num_shards
    if len(boxes) == 0:
        return parts
    for shard in np.unique(ids):
        parts[int(shard)] = boxes[ids == shard]
    return parts


class _DeltaTracker:
    """Updates accumulated for one name since its merged view was built.

    ``estimator`` is a fresh, *unsharded* estimator of the name's spec that
    receives a copy of every flushed update while the watch is live; by
    sketch linearity, ``cached view + tracker estimator`` equals a
    from-scratch shard re-merge bit for bit.  ``boxes`` counts the
    accumulated updates against :data:`repro.service.delta.DELTA_BOX_BUDGET`.
    """

    __slots__ = ("estimator", "boxes")

    def __init__(self, estimator: Any) -> None:
        self.estimator = estimator
        self.boxes = 0


class ShardedSketchStore:
    """``num_shards`` merge-compatible estimators per registered name.

    The store itself performs no buffering — every :meth:`apply` call goes
    straight into the shard estimators.  Batching and parallelism live in
    :class:`repro.service.ingest.IngestPipeline`; combined query views come
    from :meth:`merge_view`.

    A name may additionally carry a *delta watch*
    (:meth:`watch_delta`/:meth:`record_delta`/:meth:`take_delta`): a compact
    estimator of everything applied since the watcher's merged view was
    built, which lets the service refresh that view in O(delta) instead of
    re-merging every shard.  Any mutation that bypasses delta recording —
    a direct :meth:`apply`, a snapshot restore — drops the watch via
    :meth:`mark_updated`'s default, so a stale delta can never be applied.
    """

    def __init__(self, num_shards: int = 4) -> None:
        if num_shards < 1:
            raise ServiceError("a sharded store needs at least one shard")
        self._num_shards = int(num_shards)
        self._specs: dict[str, EstimatorSpec] = {}
        # One {name: estimator} mapping per shard.
        self._shards: list[dict[str, Any]] = [{} for _ in range(self._num_shards)]
        # Bumped on every mutation of a name; lets caches detect staleness.
        self._versions: dict[str, int] = {}
        # Live delta watches (see class docstring); absence means the next
        # merged-view refresh of that name must fully rebuild.
        self._trackers: dict[str, _DeltaTracker] = {}

    # -- registration -------------------------------------------------------------

    def register(self, name: str, spec: EstimatorSpec) -> None:
        """Create the shard estimators for a new name."""
        if not name:
            raise ServiceError("estimator names must be non-empty")
        if name in self._specs:
            raise ServiceError(f"estimator {name!r} is already registered")
        if not isinstance(spec, EstimatorSpec):
            raise ServiceError(f"expected an EstimatorSpec, got {type(spec).__name__}")
        estimators = [spec.build() for _ in range(self._num_shards)]
        self._specs[name] = spec
        for shard, estimator in zip(self._shards, estimators):
            shard[name] = estimator
        self._versions[name] = 0

    def unregister(self, name: str) -> None:
        self.spec(name)  # raises for unknown names
        del self._specs[name]
        del self._versions[name]
        self._trackers.pop(name, None)
        for shard in self._shards:
            del shard[name]

    # -- introspection ------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return self._num_shards

    def names(self) -> list[str]:
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def spec(self, name: str) -> EstimatorSpec:
        try:
            return self._specs[name]
        except KeyError as exc:
            raise ServiceError(f"unknown estimator {name!r}; registered: "
                               f"{self.names()}") from exc

    def version(self, name: str) -> int:
        """Mutation counter for a name (used for cache invalidation)."""
        self.spec(name)
        return self._versions[name]

    def shard_estimators(self, name: str) -> tuple[Any, ...]:
        self.spec(name)
        return tuple(shard[name] for shard in self._shards)

    # -- routing and updates ------------------------------------------------------

    def shard_ids(self, boxes: BoxSet) -> np.ndarray:
        return shard_ids(boxes, self._num_shards)

    def partition(self, boxes: BoxSet,
                  ids: np.ndarray | None = None) -> list[BoxSet | None]:
        return partition_boxes(boxes, self._num_shards, ids)

    def apply(self, name: str, side: str, kind: str, boxes: BoxSet) -> None:
        """Hash-partition a batch and update every affected shard.

        Direct applies bypass delta recording, so :meth:`mark_updated`'s
        default drops any live delta watch — the next merged-view refresh
        rebuilds from the shards.
        """
        spec = self.spec(name)
        for shard_index, part in enumerate(self.partition(boxes)):
            if part is not None:
                apply_update(spec, self._shards[shard_index][name], side, kind, part)
        if len(boxes):
            self.mark_updated(name)

    def apply_to_shard(self, shard_index: int, name: str, side: str, kind: str,
                       boxes: BoxSet) -> None:
        """Update a single shard with a pre-partitioned batch.

        Used by the ingestion pipeline, which routes once and flushes
        shard-locally (possibly from a worker thread per shard).  The caller
        is responsible for bumping the version via :meth:`mark_updated`
        after all shards of a flush have been applied.
        """
        spec = self.spec(name)
        apply_update(spec, self._shards[shard_index][name], side, kind, boxes)

    def mark_updated(self, name: str, *, delta_recorded: bool = False) -> None:
        """Bump a name's version after a mutation.

        ``delta_recorded=False`` (the default) also drops any live delta
        watch: a mutation whose boxes were *not* fed to the tracker (direct
        applies, snapshot restores) would otherwise leave the tracker
        claiming to cover updates it never saw.  Flush paths that did route
        every box through :meth:`record_delta` pass ``delta_recorded=True``
        to keep the watch alive.
        """
        self._versions[name] = self._versions.get(name, 0) + 1
        if not delta_recorded:
            self._trackers.pop(name, None)

    # -- delta watches ------------------------------------------------------------

    def watch_delta(self, name: str) -> None:
        """Start (or restart) accumulating post-merge deltas for a name.

        Called by the service right after it builds and caches a merged
        view, under the same lock hold — the tracker's implicit baseline is
        "the shard state that view summarises".  The tracker estimator is a
        zero-counter clone of shard 0's (empty banks, aliased xi families),
        so re-arming a watch after every refresh costs array allocation,
        not a fresh seeded xi draw.
        """
        from repro.service.delta import empty_delta_estimator

        self.spec(name)  # raises for unknown names
        self._trackers[name] = _DeltaTracker(
            empty_delta_estimator(self._shards[0][name]))

    def unwatch_delta(self, name: str) -> None:
        """Stop delta accumulation for a name (evicted/dropped views)."""
        self._trackers.pop(name, None)

    def is_watching(self, name: str) -> bool:
        return name in self._trackers

    def watched_names(self) -> list[str]:
        return sorted(self._trackers)

    def record_delta(self, name: str, side: str, kind: str,
                     boxes: BoxSet) -> None:
        """Feed one flushed batch into a name's delta tracker, if watched.

        The tracker estimator is unsharded: it simply sees every update of
        the name since the watch began, in flush order.  Updates commute
        (integer counter adds are exact and order-independent), so the
        tracker plus the watched view reproduces a full re-merge exactly.
        Trackers that outgrow :data:`repro.service.delta.DELTA_BOX_BUDGET`
        are dropped — the name is being written far more than it is read,
        so rebuild-on-next-query is the cheaper regime.
        """
        from repro.service.delta import DELTA_BOX_BUDGET

        tracker = self._trackers.get(name)
        if tracker is None:
            return
        tracker.boxes += len(boxes)
        if tracker.boxes > DELTA_BOX_BUDGET:
            del self._trackers[name]
            return
        apply_update(self.spec(name), tracker.estimator, side, kind, boxes)

    def take_delta(self, name: str):
        """Consume and return a name's accumulated delta estimator.

        Returns ``None`` when no (valid) watch exists — the caller must
        rebuild.  Consuming resets the watch; the caller re-arms it via
        :meth:`watch_delta` after installing the refreshed view.
        """
        tracker = self._trackers.pop(name, None)
        return None if tracker is None else tracker.estimator

    # -- merged views and estimates -----------------------------------------------

    def merge_view(self, name: str) -> Any:
        """A fresh estimator equal to the sum of all shard estimators.

        The view is built from the shared spec (hence merge-compatible with
        every shard) and is independent of the store: later shard updates do
        not affect it, which is exactly what a query-side cache wants.  Each
        fold is one vectorised add of contiguous counter tensors
        (:meth:`repro.core.atomic.SketchBank.merge`) — no per-word
        traversal, so view construction is O(shards) array ops per bank.
        """
        spec = self.spec(name)
        merged = spec.build()
        for shard in self._shards:
            merged.merge(shard[name])
        return merged

    def estimate(self, name: str, query=None):
        """Convenience: estimate from a freshly merged view (no caching)."""
        return run_estimate(self.spec(name), self.merge_view(name), query)

    def estimate_batch(self, name: str, queries):
        """Convenience: batched estimates from a freshly merged view."""
        return run_estimate_batch(self.spec(name), self.merge_view(name), queries)

    # -- persistence ----------------------------------------------------------------

    def state_dict(self, *, arrays: bool = False) -> dict:
        """A snapshot of every spec and shard estimator.

        ``arrays=False`` (default) yields the JSON-serialisable v1 tree;
        ``arrays=True`` keeps every bank's counters as contiguous tensors —
        the form the binary snapshot writer serialises directly.
        """
        return {
            "num_shards": self._num_shards,
            "estimators": {
                name: {
                    "spec": spec.to_dict(),
                    "version": self._versions[name],
                    "shards": [shard[name].state_dict(arrays=arrays)
                               for shard in self._shards],
                }
                for name, spec in self._specs.items()
            },
        }

    def load_state_dict(self, state: Mapping) -> None:
        """Restore a snapshot into this (compatible, possibly empty) store."""
        from repro.service.snapshot import restore_store_state

        restore_store_state(self, state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ShardedSketchStore(shards={self._num_shards}, "
                f"estimators={self.names()})")
