"""Checkpoint and restore a sketch service (JSON v1 and binary v2).

Snapshots build directly on the estimators' ``state_dict``/``load_state_dict``
(which in turn build on :meth:`repro.core.atomic.SketchBank.state_dict`): a
snapshot stores, per registered name, the
:class:`~repro.service.specs.EstimatorSpec` and one estimator state per
shard.  Restoring rebuilds each estimator from the spec and loads its shard
state — the xi-seed fingerprints embedded in the bank snapshots guard
against restoring counters into incompatible sketches.

Two on-disk formats are supported:

* **v1 — JSON** (``snapshot_version`` 1): counters round-trip through
  per-word Python lists.  Human-readable, diff-able, and kept fully
  read/write compatible.
* **v2 — binary** (``snapshot_version`` 2): one JSON header describing the
  snapshot tree, followed by the raw, 64-byte-aligned counter and xi-seed
  tensors exactly as the banks hold them in memory (``.npz``-style: header +
  raw arrays).  Restores memory-map the file and hand the banks read-only
  tensor views (:func:`read_binary_snapshot_state`), so loading costs one
  ``mmap`` plus a JSON header parse — near-zero-copy — and the counters are
  only materialised (copy-on-write) if the restored sketch is mutated.

:func:`load_snapshot` auto-detects the format from the file's magic bytes,
so readers never need to know how a snapshot was written.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from typing import Any, Mapping

import numpy as np

from repro.errors import MergeCompatibilityError, SnapshotError
from repro.service.specs import EstimatorSpec
from repro.service.store import ShardedSketchStore

#: Identifies the snapshot schema; bump on incompatible layout changes.
SNAPSHOT_FORMAT = "repro.service.snapshot"
#: Version written by the binary (array-native) writer.
SNAPSHOT_VERSION = 2
#: Version written by the JSON writer (the original list-based schema).
SNAPSHOT_VERSION_JSON = 1

#: First bytes of every binary (v2) snapshot file.
BINARY_MAGIC = b"REPROSNAP2\n"
#: Data-section alignment: tensors start on cache-line boundaries.
_ALIGNMENT = 64
#: Marker key for tensor slots inside the packed header tree.
_ARRAY_KEY = "__array__"

SNAPSHOT_FORMATS = ("auto", "binary", "json")


def store_snapshot(store: ShardedSketchStore, *, arrays: bool = False) -> dict:
    """A self-describing snapshot of a sharded store.

    With ``arrays=False`` the result is the JSON-serialisable v1 tree; with
    ``arrays=True`` the bank counters stay contiguous NumPy tensors (the
    form :func:`write_binary_snapshot_state` serialises without any
    per-word traversal).
    """
    state = store.state_dict(arrays=arrays)
    state["format"] = SNAPSHOT_FORMAT
    state["snapshot_version"] = SNAPSHOT_VERSION if arrays else SNAPSHOT_VERSION_JSON
    return state


def service_snapshot(service, *, arrays: bool = False) -> dict:
    """Snapshot of a service (delegates to its store)."""
    return store_snapshot(service.store, arrays=arrays)


def _validated(state: Mapping) -> Mapping:
    if not isinstance(state, Mapping):
        raise SnapshotError(f"snapshot must be a mapping, got {type(state).__name__}")
    fmt = state.get("format", SNAPSHOT_FORMAT)
    if fmt != SNAPSHOT_FORMAT:
        raise SnapshotError(f"not a service snapshot (format {fmt!r})")
    version = int(state.get("snapshot_version", SNAPSHOT_VERSION))
    if version > SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version} is newer than supported ({SNAPSHOT_VERSION})"
        )
    if state.get("kind", "service") != "service":
        raise SnapshotError(
            f"snapshot holds a {state.get('kind')!r} payload, not a service"
        )
    for key in ("num_shards", "estimators"):
        if key not in state:
            raise SnapshotError(f"snapshot is missing the {key!r} field")
    return state


def restore_store_state(store: ShardedSketchStore, state: Mapping) -> None:
    """Register and load every estimator of a snapshot into an empty store.

    Works for both snapshot forms: shard states whose counters are per-word
    lists (v1) and shard states holding contiguous tensors (v2) — including
    read-only memory-mapped views, which are adopted without copying and
    materialised lazily on first mutation.
    """
    state = _validated(state)
    if int(state["num_shards"]) != store.num_shards:
        raise SnapshotError(
            f"snapshot was taken with {state['num_shards']} shards, "
            f"store has {store.num_shards}"
        )
    for name, entry in state["estimators"].items():
        try:
            spec = EstimatorSpec.from_dict(entry["spec"])
            shard_states = entry["shards"]
        except (KeyError, TypeError) as exc:
            raise SnapshotError(f"malformed snapshot entry for {name!r}: {exc}") from exc
        if len(shard_states) != store.num_shards:
            raise SnapshotError(
                f"snapshot entry {name!r} has {len(shard_states)} shard states, "
                f"expected {store.num_shards}"
            )
        store.register(name, spec)
        try:
            for estimator, shard_state in zip(store.shard_estimators(name), shard_states):
                estimator.load_state_dict(shard_state, copy=False)
        except MergeCompatibilityError as exc:
            raise SnapshotError(
                f"snapshot entry {name!r} is incompatible with its own spec: {exc}"
            ) from exc
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"malformed snapshot entry for {name!r}: {exc}") from exc
        # Versions restart per process; bump once so caches never confuse a
        # freshly-restored estimator with a just-registered empty one.
        store.mark_updated(name)


def restore_service(state: Mapping, *, flush_threshold: int | None = 8192,
                    cache_size: int = 16, max_workers: int | None = None):
    """Build a fresh :class:`~repro.service.service.EstimationService`."""
    from repro.service.service import EstimationService

    state = _validated(state)
    service = EstimationService(num_shards=int(state["num_shards"]),
                                flush_threshold=flush_threshold,
                                cache_size=cache_size, max_workers=max_workers)
    restore_store_state(service.store, state)
    if state.get("tenants") is not None:
        from repro.tenancy import TenantRegistry

        service.enable_tenancy(TenantRegistry.from_state(state["tenants"]))
    return service


# -- binary container (v2) ------------------------------------------------------


def _pack_tree(node: Any, arrays: list[np.ndarray],
               dedup: dict[tuple, int]) -> Any:
    """Replace every ndarray leaf with a slot reference, collecting arrays.

    Identical tensors are stored once and referenced from every slot: all
    shards of an estimator (and both banks of a paired estimator) share the
    same xi families, so deduplication shrinks snapshots by roughly the
    shard count on the seed side without any schema special-casing.
    """
    if isinstance(node, np.ndarray):
        array = np.ascontiguousarray(node)
        key = (array.dtype.str, array.shape,
               hashlib.sha256(array.tobytes()).digest())
        slot = dedup.get(key)
        if slot is None:
            arrays.append(array)
            slot = dedup[key] = len(arrays) - 1
        return {_ARRAY_KEY: slot}
    if isinstance(node, Mapping):
        return {str(key): _pack_tree(value, arrays, dedup)
                for key, value in node.items()}
    if isinstance(node, (list, tuple)):
        return [_pack_tree(value, arrays, dedup) for value in node]
    return node


def _unpack_tree(node: Any, arrays: list[np.ndarray]) -> Any:
    """Inverse of :func:`_pack_tree`: resolve slot references to arrays."""
    if isinstance(node, dict):
        if set(node) == {_ARRAY_KEY}:
            try:
                return arrays[int(node[_ARRAY_KEY])]
            except (IndexError, ValueError, TypeError) as exc:
                raise SnapshotError(f"dangling array reference: {exc}") from exc
        return {key: _unpack_tree(value, arrays) for key, value in node.items()}
    if isinstance(node, list):
        return [_unpack_tree(value, arrays) for value in node]
    return node


def _aligned(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def write_binary_snapshot_state(state: Mapping, path) -> None:
    """Atomically write a state tree as a binary (v2) snapshot file.

    Layout: ``BINARY_MAGIC``, a little-endian uint64 header length, the JSON
    header (the state tree with tensors replaced by slot references plus a
    table of ``{dtype, shape, offset, nbytes}`` entries), zero padding, then
    the raw tensor bytes, each section 64-byte aligned.  Offsets are
    relative to the data section, so the header can be serialised before
    its own length is known.
    """
    arrays: list[np.ndarray] = []
    tree = _pack_tree(state, arrays, {})
    table = []
    offset = 0
    for array in arrays:
        if array.dtype.hasobject:  # pragma: no cover - states never hold objects
            raise SnapshotError("cannot serialise object arrays")
        offset = _aligned(offset)
        table.append({
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
            "nbytes": int(array.nbytes),
        })
        offset += array.nbytes
    header = json.dumps({"state": tree, "arrays": table},
                        separators=(",", ":")).encode("utf-8")
    data_start = _aligned(len(BINARY_MAGIC) + 8 + len(header))

    path = os.fspath(path)
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as handle:
        handle.write(BINARY_MAGIC)
        handle.write(struct.pack("<Q", len(header)))
        handle.write(header)
        position = len(BINARY_MAGIC) + 8 + len(header)
        for entry, array in zip(table, arrays):
            target = data_start + entry["offset"]
            handle.write(b"\0" * (target - position))
            handle.write(array.tobytes())
            position = target + entry["nbytes"]
    os.replace(tmp, path)


def _read_binary_header(handle) -> tuple[dict, int]:
    """Parse the magic + header of an open binary snapshot file."""
    magic = handle.read(len(BINARY_MAGIC))
    if magic != BINARY_MAGIC:
        raise SnapshotError("not a binary snapshot (bad magic bytes)")
    raw_length = handle.read(8)
    if len(raw_length) != 8:
        raise SnapshotError("truncated binary snapshot (incomplete header length)")
    (header_length,) = struct.unpack("<Q", raw_length)
    header_bytes = handle.read(header_length)
    if len(header_bytes) != header_length:
        raise SnapshotError("truncated binary snapshot (incomplete header)")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"corrupt binary snapshot header: {exc}") from exc
    if not isinstance(header, dict) or "state" not in header or "arrays" not in header:
        raise SnapshotError("corrupt binary snapshot header: missing fields")
    return header, _aligned(len(BINARY_MAGIC) + 8 + header_length)


def read_binary_snapshot_state(path, *, mmap: bool | None = None):
    """Read a binary snapshot file back into a state tree.

    With ``mmap=True`` the tensors are read-only views into a single
    memory-mapped buffer — nothing is copied; the OS pages counter data in
    on demand.  ``mmap=False`` reads the file into private memory instead
    (use when the file is about to be replaced or unlinked on a platform
    without POSIX semantics).  The default maps on POSIX systems and reads
    elsewhere: Windows refuses to replace a file with live mappings, which
    would break save-over-restore round trips.
    """
    if mmap is None:
        mmap = os.name == "posix"
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            header, data_start = _read_binary_header(handle)
            if not mmap:
                handle.seek(0)
                buffer = handle.read()
    except OSError as exc:
        if isinstance(exc, FileNotFoundError):
            raise
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if mmap:
        try:
            buffer = np.memmap(path, dtype=np.uint8, mode="r")
        except (OSError, ValueError) as exc:
            raise SnapshotError(f"cannot map snapshot {path}: {exc}") from exc
        total = buffer.size
    else:
        total = len(buffer)

    arrays: list[np.ndarray] = []
    for entry in header["arrays"]:
        try:
            dtype = np.dtype(str(entry["dtype"]))
            shape = tuple(int(value) for value in entry["shape"])
            relative = int(entry["offset"])
            nbytes = int(entry["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"corrupt array table entry: {exc}") from exc
        if dtype.hasobject:
            raise SnapshotError("snapshot declares an object array")
        if relative < 0 or nbytes < 0 or any(extent < 0 for extent in shape):
            raise SnapshotError(
                "array table entry is inconsistent (negative offset or size)"
            )
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if expected != nbytes:
            raise SnapshotError(
                f"array table entry is inconsistent ({expected} != {nbytes} bytes)"
            )
        offset = data_start + relative
        if offset + nbytes > total:
            raise SnapshotError("truncated binary snapshot (array data missing)")
        if mmap:
            array = np.ndarray(shape, dtype=dtype, buffer=buffer, offset=offset)
        else:
            array = np.frombuffer(buffer, dtype=dtype,
                                  count=int(np.prod(shape, dtype=np.int64)),
                                  offset=offset).reshape(shape)
        arrays.append(array)
    return _unpack_tree(header["state"], arrays)


# -- single-estimator (merged view) snapshots -----------------------------------


def write_view_snapshot(spec: EstimatorSpec, estimator, path) -> None:
    """Binary snapshot of one estimator (spec + state), for worker restores."""
    write_binary_snapshot_state({
        "format": SNAPSHOT_FORMAT,
        "snapshot_version": SNAPSHOT_VERSION,
        "kind": "view",
        "spec": spec.to_dict(),
        "estimator": estimator.state_dict(arrays=True),
    }, path)


def load_view_snapshot(path) -> tuple[EstimatorSpec, Any]:
    """Rebuild the estimator of a :func:`write_view_snapshot` file.

    The counters are adopted straight from the memory-mapped file
    (``copy=False``), so restoring costs one mmap plus sketch construction
    — the pool-worker start-up path of :mod:`repro.service.parallel`.
    """
    state = read_binary_snapshot_state(path)
    if not isinstance(state, Mapping) or state.get("kind") != "view":
        raise SnapshotError(f"{os.fspath(path)} is not a view snapshot")
    try:
        spec = EstimatorSpec.from_dict(state["spec"])
        view = spec.build()
        view.load_state_dict(state["estimator"], copy=False)
    except MergeCompatibilityError as exc:
        raise SnapshotError(f"view snapshot is incompatible with its spec: {exc}") from exc
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"malformed view snapshot: {exc}") from exc
    return spec, view


# -- file-level helpers ----------------------------------------------------------


def resolve_snapshot_format(format: str, path) -> str:
    """Normalise a requested format: ``auto`` keeps ``.json`` paths JSON."""
    if format not in SNAPSHOT_FORMATS:
        raise SnapshotError(
            f"snapshot format must be one of {SNAPSHOT_FORMATS}, got {format!r}"
        )
    if format != "auto":
        return format
    return "json" if os.fspath(path).endswith(".json") else "binary"


def write_snapshot_state(state: Mapping, path) -> None:
    """Atomically write an already-captured v1 snapshot dict as JSON."""
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(state, handle)
    os.replace(tmp, path)


def save_snapshot(service_or_store, path, *, format: str = "auto") -> None:
    """Atomically write a snapshot file for a service or a bare store.

    ``format`` is ``"binary"`` (v2), ``"json"`` (v1) or ``"auto"`` (the
    default): binary unless the path ends in ``.json``.  For a service the
    state is captured through its (lock-holding, auto-flushing) ``snapshot``
    method; a bare store is serialised directly.
    """
    fmt = resolve_snapshot_format(format, path)
    arrays = fmt == "binary"
    if hasattr(service_or_store, "snapshot"):
        state = service_or_store.snapshot(arrays=arrays)
    else:
        state = store_snapshot(service_or_store, arrays=arrays)
    if arrays:
        write_binary_snapshot_state(state, path)
    else:
        write_snapshot_state(state, path)


def read_snapshot_state(path):
    """Read a snapshot file (either format, auto-detected) into a state tree."""
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            is_binary = handle.read(len(BINARY_MAGIC)) == BINARY_MAGIC
    except FileNotFoundError:
        raise
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if is_binary:
        return read_binary_snapshot_state(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc


def load_snapshot(path, *, flush_threshold: int | None = 8192,
                  cache_size: int = 16, max_workers: int | None = None):
    """Read a snapshot file (v1 JSON or v2 binary) and rebuild its service."""
    state = read_snapshot_state(path)
    return restore_service(state, flush_threshold=flush_threshold,
                           cache_size=cache_size, max_workers=max_workers)
