"""Checkpoint and restore a sketch service.

The snapshot format builds directly on the estimators'
``state_dict``/``load_state_dict`` (which in turn build on
:meth:`repro.core.atomic.SketchBank.state_dict`): a snapshot stores, per
registered name, the :class:`~repro.service.specs.EstimatorSpec` and one
estimator state per shard.  Restoring rebuilds each estimator from the spec
and loads its shard state — the xi-seed fingerprints embedded in the bank
snapshots guard against restoring counters into incompatible sketches.

Snapshots are plain JSON: small enough to ship between machines (counters
are ``O(instances * words)`` floats per shard, independent of the data
volume summarised) and stable enough to checkpoint a long-running service.
"""

from __future__ import annotations

import json
import os
from typing import Mapping

from repro.errors import MergeCompatibilityError, SnapshotError
from repro.service.specs import EstimatorSpec
from repro.service.store import ShardedSketchStore

#: Identifies the snapshot schema; bump on incompatible layout changes.
SNAPSHOT_FORMAT = "repro.service.snapshot"
SNAPSHOT_VERSION = 1


def store_snapshot(store: ShardedSketchStore) -> dict:
    """A self-describing, JSON-serialisable snapshot of a sharded store."""
    state = store.state_dict()
    state["format"] = SNAPSHOT_FORMAT
    state["snapshot_version"] = SNAPSHOT_VERSION
    return state


def service_snapshot(service) -> dict:
    """Snapshot of a service (delegates to its store)."""
    return store_snapshot(service.store)


def _validated(state: Mapping) -> Mapping:
    if not isinstance(state, Mapping):
        raise SnapshotError(f"snapshot must be a mapping, got {type(state).__name__}")
    fmt = state.get("format", SNAPSHOT_FORMAT)
    if fmt != SNAPSHOT_FORMAT:
        raise SnapshotError(f"not a service snapshot (format {fmt!r})")
    version = int(state.get("snapshot_version", SNAPSHOT_VERSION))
    if version > SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version} is newer than supported ({SNAPSHOT_VERSION})"
        )
    for key in ("num_shards", "estimators"):
        if key not in state:
            raise SnapshotError(f"snapshot is missing the {key!r} field")
    return state


def restore_store_state(store: ShardedSketchStore, state: Mapping) -> None:
    """Register and load every estimator of a snapshot into an empty store."""
    state = _validated(state)
    if int(state["num_shards"]) != store.num_shards:
        raise SnapshotError(
            f"snapshot was taken with {state['num_shards']} shards, "
            f"store has {store.num_shards}"
        )
    for name, entry in state["estimators"].items():
        try:
            spec = EstimatorSpec.from_dict(entry["spec"])
            shard_states = entry["shards"]
        except (KeyError, TypeError) as exc:
            raise SnapshotError(f"malformed snapshot entry for {name!r}: {exc}") from exc
        if len(shard_states) != store.num_shards:
            raise SnapshotError(
                f"snapshot entry {name!r} has {len(shard_states)} shard states, "
                f"expected {store.num_shards}"
            )
        store.register(name, spec)
        try:
            for estimator, shard_state in zip(store.shard_estimators(name), shard_states):
                estimator.load_state_dict(shard_state)
        except MergeCompatibilityError as exc:
            raise SnapshotError(
                f"snapshot entry {name!r} is incompatible with its own spec: {exc}"
            ) from exc
        # Versions restart per process; bump once so caches never confuse a
        # freshly-restored estimator with a just-registered empty one.
        store.mark_updated(name)


def restore_service(state: Mapping, *, flush_threshold: int | None = 8192,
                    cache_size: int = 16, max_workers: int | None = None):
    """Build a fresh :class:`~repro.service.service.EstimationService`."""
    from repro.service.service import EstimationService

    state = _validated(state)
    service = EstimationService(num_shards=int(state["num_shards"]),
                                flush_threshold=flush_threshold,
                                cache_size=cache_size, max_workers=max_workers)
    restore_store_state(service.store, state)
    return service


def write_snapshot_state(state: Mapping, path) -> None:
    """Atomically write an already-captured snapshot dict as JSON."""
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(state, handle)
    os.replace(tmp, path)


def save_snapshot(service_or_store, path) -> None:
    """Atomically write a snapshot file (JSON) for a service or a bare store.

    For a service this delegates to its (lock-holding, auto-flushing)
    ``snapshot`` method; a bare store is serialised directly.
    """
    if hasattr(service_or_store, "snapshot"):
        state = service_or_store.snapshot()
    else:
        state = store_snapshot(service_or_store)
    write_snapshot_state(state, path)


def load_snapshot(path, *, flush_threshold: int | None = 8192,
                  cache_size: int = 16, max_workers: int | None = None):
    """Read a snapshot file and rebuild the service it describes."""
    try:
        with open(os.fspath(path), "r", encoding="utf-8") as handle:
            state = json.load(handle)
    except FileNotFoundError:
        raise
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    return restore_service(state, flush_threshold=flush_threshold,
                           cache_size=cache_size, max_workers=max_workers)
