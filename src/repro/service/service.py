"""The query front-end of the sketch service.

:class:`EstimationService` ties the sharded store and the batched ingestion
pipeline together behind four verbs:

* ``register(name, spec)`` — declare an estimator (any of the eight
  families) to be maintained across all shards,
* ``ingest(name, boxes, side=..., kind=...)`` — buffer stream updates,
* ``estimate(name, query=None)`` — answer from a *merged view* combining
  every shard, with an LRU cache of views that is invalidated when a flush
  touches the underlying name,
* ``estimate_batch(name, queries, workers=...)`` — answer a whole query
  batch from one cached merged view through the estimators' vectorised
  batch kernels, optionally fanning sub-batches out to snapshot-restored
  worker processes (:mod:`repro.service.parallel`),
* ``estimate_multi(requests)`` — answer a **mixed-estimator** batch of
  ``(name, query)`` pairs with one merged-view fetch per name and one
  shared :class:`~repro.core.program.ProgramExecutor` dispatch for the
  whole batch (cross-query and cross-family letter-sum sharing),
* ``snapshot()`` / ``restore()`` — checkpoint the whole service (specs plus
  every shard's counters) to a JSON-serialisable dict and back.

All public methods are thread-safe: ingestion from several producer
threads and concurrent estimates are supported (estimates read only
immutable merged views once built).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Mapping

import numpy as np

from repro.core.program import ProgramExecutor
from repro.core.result import EstimateResult
from repro.errors import MergeCompatibilityError, ServiceError
from repro.geometry.boxset import BoxSet
from repro.geometry.rectangle import Rect
from repro.service.delta import delta_merged_view
from repro.service.ingest import FlushReport, IngestPipeline
from repro.service.specs import (
    UPDATE_KINDS,
    EstimatorSpec,
    as_boxes,
    compile_programs,
    run_estimate,
)
from repro.service.store import ShardedSketchStore

#: Capacity of a service's cross-batch letter-sum cache (executor entries).
PROGRAM_CACHE_SIZE = 8192


@dataclass
class ServiceStats:
    """Counters describing a service's lifetime.

    Instances handed out by :attr:`EstimationService.stats` are immutable
    copies taken under the service lock, so a reader never observes a
    half-updated set of counters (e.g. ``estimates`` bumped but
    ``batch_estimates`` not yet).
    """

    ingested_boxes: int = 0
    estimates: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Refinement of ``cache_misses``: every miss is served either by the
    #: delta fast path (``delta_applies``) or a full shard re-merge
    #: (``rebuilds``); the two always sum to ``cache_misses``.
    delta_applies: int = 0
    rebuilds: int = 0
    evictions: int = 0
    batch_estimates: int = 0
    coalesced_queries: int = 0

    def copy(self) -> "ServiceStats":
        return replace(self)

    def as_dict(self) -> dict:
        return {
            "ingested_boxes": self.ingested_boxes,
            "estimates": self.estimates,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "delta_applies": self.delta_applies,
            "rebuilds": self.rebuilds,
            "evictions": self.evictions,
            "batch_estimates": self.batch_estimates,
            "coalesced_queries": self.coalesced_queries,
        }


class EstimationService:
    """A long-running, sharded estimation service over spatial sketches.

    Parameters
    ----------
    num_shards:
        Number of hash partitions; each registered estimator keeps one
        merge-compatible sketch per shard.
    flush_threshold:
        Buffered boxes that trigger an automatic flush (``None`` disables).
    cache_size:
        Capacity of the LRU cache of merged query views.
    max_workers:
        Thread-pool width for parallel shard flushes (``0``/``1`` = serial).
    delta_propagation:
        When ``True`` (the default), cached merged views are refreshed
        after a flush by applying the accumulated counter delta (one fused
        tensor add per bank, xi families aliased) instead of re-merging
        every shard — bit-identical by sketch linearity, O(delta) instead
        of O(state).  ``False`` restores rebuild-on-any-version-bump
        (the benchmark baseline).
    """

    def __init__(self, *, num_shards: int = 4, flush_threshold: int | None = 8192,
                 cache_size: int = 16, max_workers: int | None = None,
                 delta_propagation: bool = True) -> None:
        if cache_size < 0:
            raise ServiceError("cache_size must be non-negative")
        if flush_threshold is not None and flush_threshold < 1:
            raise ServiceError("flush_threshold must be positive (or None)")
        self._store = ShardedSketchStore(num_shards)
        # Auto-flushing is handled here (under the service lock) rather than
        # inside the pipeline, so that every shard mutation is serialised
        # against merged-view construction.
        self._pipeline = IngestPipeline(self._store, flush_threshold=None,
                                        max_workers=max_workers)
        self._flush_threshold = flush_threshold
        self._cache_size = int(cache_size)
        self._delta_propagation = bool(delta_propagation)
        # name -> (store version at build time, merged estimator).  Stale
        # entries (version behind the store) are deliberately retained:
        # they are invisible to lookups but serve as the base of the next
        # delta-apply.
        self._views: OrderedDict[str, tuple[int, Any]] = OrderedDict()
        self._lock = threading.RLock()
        self._stats = ServiceStats()
        # The mixed-estimator execution engine: one vectorised executor with
        # a cross-batch letter-sum cache shared by every estimator this
        # service serves.  Cache entries depend only on a view's xi families
        # and domain, so flushes never invalidate them; replaced views age
        # out of the LRU naturally.
        self._executor = ProgramExecutor(cache_size=PROGRAM_CACHE_SIZE)
        # Durability (repro.wal): attached via attach_wal(); None = volatile.
        self._wal: Any = None
        self._checkpoint_path: str | None = None
        self._checkpoint_boxes: int | None = None
        # Multi-tenancy (repro.tenancy): None until enable_tenancy() — a
        # service without a registry behaves exactly as before.
        self._tenants: Any = None

    # -- tenancy ------------------------------------------------------------------

    @property
    def tenants(self) -> Any:
        """The attached :class:`~repro.tenancy.TenantRegistry` (or ``None``)."""
        return self._tenants

    def enable_tenancy(self, registry: Any = None) -> Any:
        """Attach (or create) a tenant registry; idempotent.

        Once a registry is attached, serving layers built on this service
        (:class:`~repro.server.SketchServer`,
        :class:`~repro.cluster.ClusterRouter`) switch to authenticated
        multi-tenant mode.  The registry is embedded in snapshots and its
        mutations are journaled through the WAL (when attached), so
        recovery and replica bootstrap are tenant-aware.
        """
        from repro.tenancy import TenantRegistry

        with self._lock:
            if self._tenants is None:
                self._tenants = registry if registry is not None else TenantRegistry()
            elif registry is not None and registry is not self._tenants:
                raise ServiceError("service already has a tenant registry")
            return self._tenants

    def tenant_facade(self, tenant_id: str) -> Any:
        """A namespace-scoped proxy for one tenant (see ``repro.tenancy``)."""
        from repro.tenancy import TenantFacade

        return TenantFacade(self, tenant_id)

    def tenant_create(self, tenant_id: str, *, token: str, quota: Any = None,
                      created_at: float | None = None) -> Any:
        """Register a tenant; journaled through the WAL when attached."""
        registry = self.enable_tenancy()
        with self._lock:
            record = registry.create(tenant_id, token=token, quota=quota,
                                     created_at=created_at)
            if self._wal is not None:
                self._wal.append_tenant("create", tenant_id, record.to_dict())
        return record

    def tenant_update(self, tenant_id: str, *, token: str | None = None,
                      quota: Any = None, disabled: bool | None = None) -> Any:
        if self._tenants is None:
            raise ServiceError("service has no tenant registry")
        with self._lock:
            record = self._tenants.update(tenant_id, token=token, quota=quota,
                                          disabled=disabled)
            if self._wal is not None:
                self._wal.append_tenant("update", tenant_id, record.to_dict())
        return record

    def tenant_upsert(self, record: Any) -> Any:
        """Install a tenant record verbatim (WAL replay / log shipping)."""
        registry = self.enable_tenancy()
        with self._lock:
            registry.upsert(record)
            if self._wal is not None:
                self._wal.append_tenant("update", record.tenant_id,
                                        record.to_dict())
        return record

    def tenant_remove(self, tenant_id: str) -> Any:
        """Drop a tenant and unregister every estimator in its namespace."""
        from repro.tenancy import TENANT_SEP

        if self._tenants is None:
            raise ServiceError("service has no tenant registry")
        with self._lock:
            record = self._tenants.remove(tenant_id)
            prefix = tenant_id + TENANT_SEP
            for name in list(self.names()):
                if name.startswith(prefix):
                    self.unregister(name)
            if self._wal is not None:
                self._wal.append_tenant("remove", tenant_id)
        return record

    # -- durability ---------------------------------------------------------------

    @property
    def wal(self) -> Any:
        """The attached :class:`~repro.wal.writer.WalWriter` (or ``None``)."""
        return self._wal

    @property
    def wal_checkpoint_path(self) -> str | None:
        """Default target of :meth:`checkpoint` (set by :meth:`attach_wal`)."""
        return self._checkpoint_path

    @property
    def wal_checkpoint_boxes(self) -> int | None:
        """Auto-checkpoint row threshold (``None`` = manual only)."""
        return self._checkpoint_boxes

    def attach_wal(self, writer: Any, *, checkpoint_path=None,
                   checkpoint_boxes: int | None = None) -> None:
        """Make every mutation durable through a write-ahead log.

        Once attached, ingest appends each update batch to the log *before*
        buffering it (write-ahead: no counter mutation can outrun the log),
        and register/unregister events are logged too, so snapshot + replay
        reconstructs the full estimator set.  ``checkpoint_path`` plus
        ``checkpoint_boxes`` enables auto-checkpointing: once that many
        update rows accumulate in the log, the service snapshots itself and
        truncates the log (see :meth:`checkpoint`).
        """
        if checkpoint_boxes is not None and checkpoint_boxes < 1:
            raise ServiceError("checkpoint_boxes must be positive (or None)")
        with self._lock:
            if self._wal is not None:
                raise ServiceError("service already has a WAL attached")
            self._wal = writer
            self._checkpoint_path = (os.fspath(checkpoint_path)
                                     if checkpoint_path is not None else None)
            self._checkpoint_boxes = checkpoint_boxes

    def detach_wal(self, *, close: bool = True) -> Any:
        """Detach (and by default close) the WAL; returns the writer."""
        with self._lock:
            writer, self._wal = self._wal, None
            self._checkpoint_path = None
            self._checkpoint_boxes = None
        if writer is not None and close:
            writer.close()
        return writer

    def checkpoint(self, path=None, *, format: str = "auto") -> dict:
        """Snapshot to ``path`` and truncate the WAL through the covered seqno.

        The snapshot embeds the log position it covers (``wal_seqno``); the
        log is then truncated through that position, so recovery replays
        only the tail written since.  The service lock is held across the
        flush, capture *and* file write — a brief stop-the-world pause that
        guarantees no append slips between the captured sequence number and
        the tensors on disk.
        """
        from repro.service.snapshot import save_snapshot

        if self._wal is None:
            raise ServiceError("checkpoint requires an attached WAL "
                               "(see attach_wal)")
        target = path if path is not None else self._checkpoint_path
        if target is None:
            raise ServiceError("no checkpoint path given or configured")
        with self._lock:
            save_snapshot(self, target, format=format)
            seqno = self._wal.last_seqno
        removed = self._wal.truncate_through(seqno)
        return {
            "path": os.fspath(target),
            "wal_seqno": seqno,
            "segments_removed": removed,
        }

    def _maybe_checkpoint(self) -> None:
        if (self._wal is not None and self._checkpoint_boxes is not None
                and self._checkpoint_path is not None
                and self._wal.appended_boxes >= self._checkpoint_boxes):
            self.checkpoint()

    # -- introspection ------------------------------------------------------------

    @property
    def store(self) -> ShardedSketchStore:
        return self._store

    @property
    def pipeline(self) -> IngestPipeline:
        return self._pipeline

    @property
    def program_executor(self) -> ProgramExecutor:
        """The caching executor mixed-estimator batches run on."""
        return self._executor

    @property
    def num_shards(self) -> int:
        return self._store.num_shards

    @property
    def pending(self) -> int:
        return self._pipeline.pending

    @property
    def stats(self) -> ServiceStats:
        """An atomic copy of the lifetime counters.

        The live counters are mutated under the service lock; returning
        them directly would let readers see torn multi-field updates, so
        this snapshot-copies them under ``_lock`` instead.
        """
        with self._lock:
            return self._stats.copy()

    def names(self) -> list[str]:
        return self._store.names()

    def __contains__(self, name: str) -> bool:
        return name in self._store

    def spec(self, name: str) -> EstimatorSpec:
        return self._store.spec(name)

    def describe(self) -> dict:
        """A JSON-friendly summary (used by the CLI's ``stats`` op)."""
        with self._lock:
            wal = None
            if self._wal is not None:
                wal = self._wal.describe()
                wal["checkpoint_path"] = self._checkpoint_path
                wal["checkpoint_boxes"] = self._checkpoint_boxes
            return {
                "wal": wal,
                "tenants": (self._tenants.describe()
                            if self._tenants is not None else None),
                "num_shards": self.num_shards,
                "pending": self.pending,
                "estimators": {name: self._store.spec(name).to_dict()
                               for name in self.names()},
                "cached_views": list(self._views),
                "delta_watches": self._store.watched_names(),
                "stats": self._stats.as_dict(),
                "program_executor": self._executor.stats.as_dict(),
                "ingest": {
                    "submitted_boxes": self._pipeline.stats.submitted_boxes,
                    "flushed_boxes": self._pipeline.stats.flushed_boxes,
                    "flushes": self._pipeline.stats.flushes,
                    "auto_flushes": self._pipeline.stats.auto_flushes,
                },
            }

    # -- registration -------------------------------------------------------------

    def register(self, name: str, spec: EstimatorSpec | None = None, *,
                 family: str | None = None, domain=None, num_instances: int = 256,
                 seed: int = 0, **options: Any) -> EstimatorSpec:
        """Register an estimator by spec, or inline via family/domain kwargs."""
        if spec is None:
            if family is None or domain is None:
                raise ServiceError(
                    "register needs either a spec or family= and domain= arguments"
                )
            spec = EstimatorSpec.create(family, domain, num_instances,
                                        seed=seed, **options)
        elif family is not None or options:
            raise ServiceError("pass either a spec or inline arguments, not both")
        with self._lock:
            self._store.register(name, spec)
            if self._wal is not None:
                self._wal.append_register(name, spec.to_dict())
        return spec

    def unregister(self, name: str) -> None:
        with self._lock:
            self._store.unregister(name)
            self._pipeline.discard(name)
            self._views.pop(name, None)
            if self._wal is not None:
                self._wal.append_unregister(name)

    # -- ingestion ----------------------------------------------------------------

    def ingest(self, name: str, boxes, *, side: str = "left",
               kind: str = "insert") -> int:
        """Buffer a batch of inserts/deletes; returns the pending count.

        Crossing ``flush_threshold`` buffered boxes triggers an automatic
        batched flush.

        With a WAL attached the batch is validated, logged, and *then*
        buffered — all under the service lock, so a snapshot's embedded
        ``wal_seqno`` can never claim a record whose boxes it does not
        hold (and vice versa).  The log write precedes every counter
        mutation: write-ahead in the strict sense.
        """
        if self._wal is None:
            pending = self._pipeline.submit(name, boxes, side=side, kind=kind)
            with self._lock:
                self._stats.ingested_boxes += len(boxes)
        else:
            # Validate up front so a rejected batch never reaches the log.
            spec = self._store.spec(name)
            side = spec.info.resolve_side(side)
            if kind not in UPDATE_KINDS:
                raise ServiceError(
                    f"update kind must be one of {UPDATE_KINDS}, got {kind!r}")
            boxes = as_boxes(boxes)
            with self._lock:
                if len(boxes):
                    self._wal.append_update(
                        name, side, kind, np.hstack((boxes.lows, boxes.highs)))
                pending = self._pipeline.submit(name, boxes, side=side,
                                                kind=kind)
                self._stats.ingested_boxes += len(boxes)
        if self._flush_threshold is not None and pending >= self._flush_threshold:
            self.flush(auto=True)
        self._maybe_checkpoint()
        return self._pipeline.pending

    def insert(self, name: str, boxes, *, side: str = "left") -> int:
        return self.ingest(name, boxes, side=side, kind="insert")

    def delete(self, name: str, boxes, *, side: str = "left") -> int:
        return self.ingest(name, boxes, side=side, kind="delete")

    def flush(self, *, parallel: bool | None = None, auto: bool = False) -> FlushReport:
        """Apply all buffered updates; affected cached views go stale.

        With delta propagation on, stale entries stay in the cache — the
        version check makes them invisible to lookups, but the next fetch
        of the name refreshes them with the flush's accumulated delta
        instead of re-merging every shard.  Without it, they are dropped
        immediately (the historical rebuild-on-flush behaviour).
        """
        with self._lock:
            report = self._pipeline.flush(parallel=parallel, auto=auto)
            if not self._delta_propagation:
                for name in report.names:
                    self._views.pop(name, None)
        return report

    # -- query side ---------------------------------------------------------------

    def merged_view(self, name: str) -> Any:
        """The cached merged estimator for a name (flushes pending updates).

        The returned estimator is a snapshot: it is never mutated by later
        ingestion, so callers may estimate from it without holding locks.
        """
        return self._merged_view_entry(name)[0]

    def _merged_view_entry(self, name: str) -> tuple[Any, int]:
        """``(merged view, store version at build time)`` — read atomically.

        The version is captured under the same lock acquisition that
        resolves the view, so the pair is always consistent even when a
        concurrent flush bumps the version; a stale-view/new-version mix
        would mislabel the snapshot shipped to the worker processes of
        :mod:`repro.service.parallel`.

        Misses take one of two routes.  When the cache still holds the
        previous view of the name *and* the store accumulated a valid
        delta for it (every mutation since that view was built went
        through the flush path), the new view is the old one plus the
        delta — one fused counter add per bank, xi families aliased, so
        the executor's letter-sum cache stays warm
        (:mod:`repro.service.delta`).  Otherwise — cold name, evicted
        entry, direct store mutation, snapshot reload — the view is fully
        rebuilt from the shards.  Both routes are bit-identical; they are
        counted separately as ``delta_applies`` / ``rebuilds``.
        """
        with self._lock:
            if self._pipeline.pending:
                self.flush()
            version = self._store.version(name)
            entry = self._views.get(name)
            if entry is not None and entry[0] == version:
                self._views.move_to_end(name)
                self._stats.cache_hits += 1
                return entry[1], version
            self._stats.cache_misses += 1
            view = None
            if self._delta_propagation and entry is not None:
                delta = self._store.take_delta(name)
                if delta is not None:
                    try:
                        view = delta_merged_view(entry[1], delta)
                    except (ServiceError, MergeCompatibilityError):
                        # Spec drift (unregister/re-register races the
                        # tracker) — fall back to the rebuild path.
                        view = None
            if view is None:
                view = self._store.merge_view(name)
                self._stats.rebuilds += 1
            else:
                self._stats.delta_applies += 1
            if self._cache_size:
                if self._delta_propagation:
                    self._store.watch_delta(name)
                self._views[name] = (version, view)
                self._views.move_to_end(name)
                while len(self._views) > self._cache_size:
                    evicted, _ = self._views.popitem(last=False)
                    self._store.unwatch_delta(evicted)
                    self._stats.evictions += 1
        return view, version

    def estimate(self, name: str, query: Rect | BoxSet | None = None
                 ) -> EstimateResult:
        """Boosted estimate from the merged view of every shard."""
        view = self.merged_view(name)
        with self._lock:
            self._stats.estimates += 1
        return run_estimate(self._store.spec(name), view, query)

    def estimate_batch(self, name: str, queries, *,
                       workers: int | None = None) -> list[EstimateResult]:
        """Boosted estimates for a whole query batch from one merged view.

        ``queries`` is a :class:`BoxSet`/sequence of rectangles for
        queryable families, or an integer count / sequence of ``None`` for
        query-less ones.  The merged view comes from the same LRU cache the
        scalar path uses; the batch itself is answered by the estimators'
        vectorised ``estimate_batch`` kernels, and result ``j`` is
        bit-identical to ``estimate(name, queries[j])``.

        ``workers >= 2`` fans sub-batches out to a ``ProcessPoolExecutor``
        whose workers rebuild the merged view from its snapshot
        (``state_dict``), falling back to a thread pool over the in-process
        view when no process pool is available (see
        :mod:`repro.service.parallel`).
        """
        from repro.service.parallel import estimate_batch_parallel

        view, version = self._merged_view_entry(name)
        results = estimate_batch_parallel(
            self._store.spec(name), view, queries, workers=workers,
            cache_key=(name, version))
        with self._lock:
            self._stats.estimates += len(results)
            self._stats.batch_estimates += 1
        return results

    def estimate_multi(self, requests, *, executor: Any = None
                       ) -> list[EstimateResult]:
        """One executor dispatch for a mixed-estimator request batch.

        ``requests`` is a sequence of ``(name, query)`` pairs — ``query`` a
        single-row :class:`BoxSet` (or :class:`Rect`) for queryable
        families, ``None`` for query-less ones.  Every named estimator's
        merged view is fetched **once** (through the same LRU the scalar
        path uses), each name's sub-batch is compiled into sketch programs,
        and the concatenated program batch runs as a single
        :class:`~repro.core.program.ProgramExecutor` call — so letter-sum
        work is shared across queries *and* estimators, and the whole mixed
        batch costs one reduction pass.  Results come back in request
        order, each bit-identical to the scalar ``estimate(name, query)``.

        This is the engine call behind the server's cross-estimator request
        coalescing (:mod:`repro.server.coalescer`).

        Single-name batches deliberately take the :meth:`estimate_batch`
        path on the cache-free default executor: per-name batch costs stay
        exactly what they always were (the existing perf gates encode
        them), and intra-batch letter-sum sharing — the structural win —
        needs no cache.  Cross-batch caching is the mixed-dispatch feature.
        """
        entries = [(str(name), query) for name, query in requests]
        if not entries:
            return []
        order: OrderedDict[str, list[int]] = OrderedDict()
        for index, (name, _) in enumerate(entries):
            order.setdefault(name, []).append(index)
        if executor is None and len(order) == 1:
            # Single-estimator batches take the historical path (same
            # programs, same executor semantics) so per-name monkeypatching
            # and stats accounting stay exactly as before.
            name = next(iter(order))
            return self.estimate_batch(name, [query for _, query in entries])

        programs: list = []
        owners: list[tuple[str, list[int]]] = []
        for name, indices in order.items():
            view, _version = self._merged_view_entry(name)
            spec = self._store.spec(name)
            programs.extend(compile_programs(
                spec, view, [entries[index][1] for index in indices]))
            owners.append((name, indices))
        runner = executor if executor is not None else self._executor
        outcomes = runner.run(programs)
        results: list[EstimateResult] = [None] * len(entries)  # type: ignore[list-item]
        position = 0
        for _name, indices in owners:
            for index in indices:
                results[index] = outcomes[position]
                position += 1
        with self._lock:
            self._stats.estimates += len(entries)
            self._stats.batch_estimates += 1
        return results

    def record_estimates(self, count: int = 1) -> None:
        """Count estimates computed outside :meth:`estimate` in the stats.

        Callers that answer from a merged view directly (e.g. the engine's
        batched cardinality probes) use this so ``stats.estimates`` keeps
        reflecting total query traffic.
        """
        with self._lock:
            self._stats.estimates += count

    def record_coalesced(self, count: int) -> None:
        """Count queries that a serving layer answered through coalesced
        batches (see :mod:`repro.server`); the metrics verb derives the
        coalesce factor as ``coalesced_queries / batch_estimates``.
        """
        with self._lock:
            self._stats.coalesced_queries += count

    def estimate_cardinality(self, name: str,
                             query: Rect | BoxSet | None = None) -> float:
        return self.estimate(name, query).estimate

    def estimate_selectivity(self, name: str,
                             query: Rect | BoxSet | None = None) -> float:
        return self.estimate(name, query).selectivity

    # -- persistence --------------------------------------------------------------

    def snapshot(self, *, arrays: bool = False) -> dict:
        """A checkpoint of specs and shard counters.

        ``arrays=False`` (default) yields the JSON-serialisable v1 tree;
        ``arrays=True`` keeps the counters as contiguous tensors for the
        binary snapshot writer.  Pending (unflushed) updates are flushed
        first so the snapshot reflects everything ingested so far.

        With a WAL attached the state carries the log position it covers
        (``wal_seqno``), captured under the same lock hold as the flush —
        the anchor ``load snapshot + replay tail`` recovery resumes from.
        """
        from repro.service.snapshot import service_snapshot

        if self._wal is None:
            if self._pipeline.pending:
                self.flush()
            with self._lock:
                state = service_snapshot(self, arrays=arrays)
                if self._tenants is not None:
                    state["tenants"] = self._tenants.to_state()
            return state
        with self._lock:
            if self._pipeline.pending:
                self.flush()
            state = service_snapshot(self, arrays=arrays)
            if self._tenants is not None:
                state["tenants"] = self._tenants.to_state()
            state["wal_seqno"] = self._wal.last_seqno
        return state

    def save(self, path, *, format: str = "auto") -> None:
        """Write a snapshot file atomically (binary v2 or JSON v1).

        ``format="auto"`` (the default) writes the binary format unless the
        path ends in ``.json``; pass ``"binary"`` or ``"json"`` to force.
        The state is captured under the service lock, so concurrent
        ingestion cannot tear the snapshot; :meth:`load` auto-detects the
        format on the way back.
        """
        from repro.service.snapshot import save_snapshot

        save_snapshot(self, path, format=format)

    @classmethod
    def restore(cls, state: Mapping, *, flush_threshold: int | None = 8192,
                cache_size: int = 16, max_workers: int | None = None
                ) -> "EstimationService":
        """Rebuild a service from a :meth:`snapshot` dict."""
        from repro.service.snapshot import restore_service

        return restore_service(state, flush_threshold=flush_threshold,
                               cache_size=cache_size, max_workers=max_workers)

    @classmethod
    def load(cls, path, *, flush_threshold: int | None = 8192,
             cache_size: int = 16, max_workers: int | None = None
             ) -> "EstimationService":
        """Read a snapshot file written by :meth:`save`."""
        from repro.service.snapshot import load_snapshot

        return load_snapshot(path, flush_threshold=flush_threshold,
                             cache_size=cache_size, max_workers=max_workers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"EstimationService(shards={self.num_shards}, "
                f"estimators={self.names()}, pending={self.pending})")
