"""Estimator specifications shared by every shard of a sketch service.

A sharded sketch store keeps one estimator *per shard* for every registered
name.  All shard copies must be built from the exact same specification —
family, domain, instance count and seed — because only sketches over shared
xi families are merge-compatible (see
:meth:`repro.core.atomic.SketchBank.merge`).  :class:`EstimatorSpec` is that
specification: an immutable, JSON-serialisable value object that can build a
fresh estimator on demand.

The :data:`FAMILIES` registry covers all eight estimator families of the
library and records, per family, how updates are routed (which sides exist,
whether a side takes points or boxes) and whether estimates take a query
argument.  The service layer is written entirely against this table, so a
new estimator family only needs one registry entry to become servable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.core.domain import Domain
from repro.core.epsilon_join import EpsilonJoinEstimator
from repro.core.join_containment import ContainmentJoinEstimator
from repro.core.join_extended import (
    CommonEndpointJoinEstimator,
    ExtendedOverlapJoinEstimator,
)
from repro.core.join_hyperrect import ENDPOINT_POLICIES, SpatialJoinEstimator
from repro.core.join_interval import IntervalJoinEstimator
from repro.core.join_rect import RectangleJoinEstimator
from repro.core.range_query import RangeQueryEstimator
from repro.core.result import EstimateResult
from repro.errors import ServiceError
from repro.geometry.boxset import BoxSet, PointSet
from repro.geometry.rectangle import Rect

UPDATE_KINDS = ("insert", "delete")

#: Sentinel distinguishing "no default supplied" from an explicit ``None``.
_MISSING = object()


@dataclass(frozen=True)
class FamilyInfo:
    """Registry metadata for one estimator family."""

    name: str
    builder: Callable[["EstimatorSpec"], Any]
    sides: tuple[str, ...]
    update_methods: Mapping[tuple[str, str], str]
    aliases: Mapping[str, str] = field(default_factory=dict)
    point_sides: frozenset = frozenset()
    queryable: bool = False
    option_names: frozenset = frozenset()
    required_options: frozenset = frozenset()

    def resolve_side(self, side: str) -> str:
        canonical = self.aliases.get(side, side)
        if canonical not in self.sides:
            raise ServiceError(
                f"family {self.name!r} has sides {self.sides}, not {side!r}"
            )
        return canonical


def _paired_methods() -> dict[tuple[str, str], str]:
    return {
        ("left", "insert"): "insert_left",
        ("left", "delete"): "delete_left",
        ("right", "insert"): "insert_right",
        ("right", "delete"): "delete_right",
    }


FAMILIES: dict[str, FamilyInfo] = {
    "interval": FamilyInfo(
        name="interval",
        builder=lambda spec: IntervalJoinEstimator(
            spec.domain(), spec.num_instances, seed=spec.seed,
            endpoint_policy=spec.option("endpoint_policy", "transform"),
        ),
        sides=("left", "right"),
        update_methods=_paired_methods(),
        option_names=frozenset({"endpoint_policy"}),
    ),
    "rectangle": FamilyInfo(
        name="rectangle",
        builder=lambda spec: RectangleJoinEstimator(
            spec.domain(), spec.num_instances, seed=spec.seed,
            endpoint_policy=spec.option("endpoint_policy", "transform"),
        ),
        sides=("left", "right"),
        update_methods=_paired_methods(),
        option_names=frozenset({"endpoint_policy"}),
    ),
    "hyperrect": FamilyInfo(
        name="hyperrect",
        builder=lambda spec: SpatialJoinEstimator(
            spec.domain(), spec.num_instances, seed=spec.seed,
            endpoint_policy=spec.option("endpoint_policy", "transform"),
        ),
        sides=("left", "right"),
        update_methods=_paired_methods(),
        option_names=frozenset({"endpoint_policy"}),
    ),
    "extended_overlap": FamilyInfo(
        name="extended_overlap",
        builder=lambda spec: ExtendedOverlapJoinEstimator(
            spec.domain(), spec.num_instances, seed=spec.seed,
        ),
        sides=("left", "right"),
        update_methods=_paired_methods(),
    ),
    "common_endpoint": FamilyInfo(
        name="common_endpoint",
        builder=lambda spec: CommonEndpointJoinEstimator(
            spec.domain(), spec.num_instances, seed=spec.seed,
        ),
        sides=("left", "right"),
        update_methods=_paired_methods(),
    ),
    "containment": FamilyInfo(
        name="containment",
        builder=lambda spec: ContainmentJoinEstimator(
            spec.domain(), spec.num_instances, seed=spec.seed,
        ),
        sides=("outer", "inner"),
        update_methods={
            ("outer", "insert"): "insert_outer",
            ("outer", "delete"): "delete_outer",
            ("inner", "insert"): "insert_inner",
            ("inner", "delete"): "delete_inner",
        },
        aliases={"left": "outer", "right": "inner"},
    ),
    "epsilon": FamilyInfo(
        name="epsilon",
        builder=lambda spec: EpsilonJoinEstimator(
            spec.domain(), spec.option("epsilon"), spec.num_instances,
            seed=spec.seed,
        ),
        sides=("left", "right"),
        update_methods=_paired_methods(),
        point_sides=frozenset({"left", "right"}),
        option_names=frozenset({"epsilon"}),
        required_options=frozenset({"epsilon"}),
    ),
    "range": FamilyInfo(
        name="range",
        builder=lambda spec: RangeQueryEstimator(
            spec.domain(), spec.num_instances, seed=spec.seed,
            strict=spec.option("strict", False),
        ),
        sides=("data",),
        update_methods={
            ("data", "insert"): "insert",
            ("data", "delete"): "delete",
        },
        aliases={"left": "data"},
        queryable=True,
        option_names=frozenset({"strict"}),
    ),
}


def family_info(family: str) -> FamilyInfo:
    try:
        return FAMILIES[family]
    except KeyError as exc:
        raise ServiceError(
            f"unknown estimator family {family!r}; known families: "
            f"{', '.join(sorted(FAMILIES))}"
        ) from exc


def _domain_levels(domain: Domain) -> tuple[int | None, ...]:
    """Per-dimension maxLevel restrictions, ``None`` where unrestricted."""
    return tuple(
        None if dyadic.max_level == dyadic.height else dyadic.max_level
        for dyadic in domain.dyadics
    )


@dataclass(frozen=True)
class EstimatorSpec:
    """Everything needed to (re)build one merge-compatible estimator.

    Two estimators built from equal specs are guaranteed merge-compatible:
    the shared seed makes every shard draw identical xi families, which is
    what lets a sharded store combine shard sketches exactly.
    """

    family: str
    sizes: tuple[int, ...]
    num_instances: int
    seed: int = 0
    max_levels: tuple[int | None, ...] | None = None
    options: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        info = family_info(self.family)
        if self.num_instances < 1:
            raise ServiceError("an estimator spec needs at least one instance")
        if not self.sizes or any(int(s) < 1 for s in self.sizes):
            raise ServiceError(f"invalid domain sizes {self.sizes!r}")
        if self.max_levels is not None and len(self.max_levels) != len(self.sizes):
            raise ServiceError("max_levels must match the number of dimensions")
        names = [name for name, _ in self.options]
        if len(set(names)) != len(names):
            raise ServiceError(f"duplicate options in {names}")
        unknown = set(names) - set(info.option_names)
        if unknown:
            raise ServiceError(
                f"family {self.family!r} does not accept options {sorted(unknown)}"
            )
        missing = set(info.required_options) - set(names)
        if missing:
            raise ServiceError(
                f"family {self.family!r} requires options {sorted(missing)}"
            )
        policy = self.option("endpoint_policy", None)
        if policy is not None and policy not in ENDPOINT_POLICIES:
            raise ServiceError(
                f"endpoint_policy must be one of {ENDPOINT_POLICIES}, got {policy!r}"
            )

    # -- construction -------------------------------------------------------------

    @classmethod
    def create(cls, family: str, domain: Domain | Sequence[int] | int,
               num_instances: int, *, seed: int = 0, **options: Any) -> "EstimatorSpec":
        """Build a spec from a domain (or plain sizes) and keyword options."""
        if isinstance(domain, Domain):
            sizes = domain.requested_sizes
            levels = _domain_levels(domain)
            max_levels = None if all(level is None for level in levels) else levels
        else:
            if isinstance(domain, (int, np.integer)):
                domain = (int(domain),)
            sizes = tuple(int(s) for s in domain)
            max_levels = None
        return cls(
            family=family,
            sizes=sizes,
            num_instances=int(num_instances),
            seed=int(seed),
            max_levels=max_levels,
            options=tuple(sorted(options.items())),
        )

    # -- accessors ----------------------------------------------------------------

    @property
    def info(self) -> FamilyInfo:
        return family_info(self.family)

    @property
    def dimension(self) -> int:
        return len(self.sizes)

    def option(self, name: str, default: Any = _MISSING) -> Any:
        for key, value in self.options:
            if key == name:
                return value
        if default is _MISSING:
            raise ServiceError(f"spec for family {self.family!r} lacks option {name!r}")
        return default

    def domain(self) -> Domain:
        return Domain(self.sizes, max_levels=self.max_levels)

    def build(self) -> Any:
        """A fresh, empty estimator of this spec's family."""
        return self.info.builder(self)

    # -- serialisation ------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "sizes": list(self.sizes),
            "num_instances": self.num_instances,
            "seed": self.seed,
            "max_levels": None if self.max_levels is None else list(self.max_levels),
            "options": {name: value for name, value in self.options},
        }

    @classmethod
    def from_dict(cls, state: Mapping) -> "EstimatorSpec":
        try:
            max_levels = state.get("max_levels")
            return cls(
                family=str(state["family"]),
                sizes=tuple(int(s) for s in state["sizes"]),
                num_instances=int(state["num_instances"]),
                seed=int(state.get("seed", 0)),
                max_levels=None if max_levels is None else tuple(
                    None if level is None else int(level) for level in max_levels
                ),
                options=tuple(sorted(dict(state.get("options", {})).items())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed estimator spec: {exc}") from exc


# -- update and estimate dispatch ---------------------------------------------------


def as_points(boxes: BoxSet | PointSet) -> PointSet:
    """Interpret a degenerate box set (lows == highs) as points."""
    if isinstance(boxes, PointSet):
        return boxes
    if len(boxes) and not np.array_equal(boxes.lows, boxes.highs):
        raise ServiceError(
            "this side takes points; pass a PointSet or degenerate boxes (lo == hi)"
        )
    return PointSet(boxes.lows.copy())


def as_boxes(data: BoxSet | PointSet) -> BoxSet:
    """Normalise service input to a box set (points become degenerate boxes)."""
    if isinstance(data, PointSet):
        return data.to_boxes()
    if isinstance(data, BoxSet):
        return data
    raise ServiceError(f"expected a BoxSet or PointSet, got {type(data).__name__}")


def apply_update(spec: EstimatorSpec, estimator: Any, side: str, kind: str,
                 boxes: BoxSet) -> None:
    """Route one batch of inserts or deletes into an estimator."""
    info = spec.info
    side = info.resolve_side(side)
    if kind not in UPDATE_KINDS:
        raise ServiceError(f"update kind must be one of {UPDATE_KINDS}, got {kind!r}")
    method = getattr(estimator, info.update_methods[(side, kind)])
    payload: BoxSet | PointSet = boxes
    if side in info.point_sides:
        payload = as_points(boxes)
    method(payload)


def run_estimate(spec: EstimatorSpec, estimator: Any,
                 query: Rect | BoxSet | None = None) -> EstimateResult:
    """Produce an estimate, passing the query through for queryable families."""
    if spec.info.queryable:
        if query is None:
            raise ServiceError(
                f"family {spec.family!r} estimates need a query rectangle"
            )
        return estimator.estimate(query)
    if query is not None:
        raise ServiceError(f"family {spec.family!r} does not take a query argument")
    return estimator.estimate()


def normalise_query_batch(spec: EstimatorSpec, queries) -> BoxSet | int:
    """A batch request as one :class:`BoxSet` (queryable) or a result count.

    This is the single service-level normaliser for batch requests: the
    serial, threaded and process-parallel paths all reduce their input to
    the same shape here, so every path validates identically.
    """
    if spec.info.queryable:
        if queries is None or isinstance(queries, (int, np.integer)):
            raise ServiceError(
                f"family {spec.family!r} batch estimates need query rectangles"
            )
        if isinstance(queries, Rect):
            return BoxSet.from_rects([queries])
        if isinstance(queries, BoxSet):
            return queries
        rects = []
        for query in queries:
            if query is None:
                raise ServiceError(
                    f"family {spec.family!r} estimates need a query rectangle"
                )
            if isinstance(query, BoxSet):
                if len(query) != 1:
                    raise ServiceError(
                        "each query of a batch must be exactly one rectangle")
                rects.extend(query.to_rects())
            else:
                rects.append(query)
        if not rects:
            return BoxSet(np.empty((0, spec.dimension), dtype=np.int64),
                          np.empty((0, spec.dimension), dtype=np.int64),
                          validate=False)
        return BoxSet.from_rects(rects)
    if queries is None:
        raise ServiceError("a batch estimate needs a query list or a count")
    if isinstance(queries, (int, np.integer)):
        return int(queries)
    entries = list(queries)
    if any(entry is not None for entry in entries):
        raise ServiceError(
            f"family {spec.family!r} does not take a query argument; batch "
            f"entries must all be None"
        )
    return len(entries)


def compile_programs(spec: EstimatorSpec, estimator: Any,
                     queries) -> list:
    """Lower one estimator's batch request into sketch programs.

    The returned :class:`~repro.core.program.SketchProgram` list expands —
    once executed — to exactly one result per requested query: queryable
    families compile one program per query rectangle, query-less families a
    single program whose ``replicas`` equals the requested count.  This is
    the compilation step the mixed-estimator paths share: programs of
    different estimators (and different families) concatenate into one
    executor batch.
    """
    return estimator.lower_batch(normalise_query_batch(spec, queries))


def run_estimate_batch(spec: EstimatorSpec, estimator: Any, queries, *,
                       executor: Any = None) -> list[EstimateResult]:
    """Batched :func:`run_estimate`: one result per requested query.

    For queryable families ``queries`` is a :class:`BoxSet` (one row per
    query) or a sequence of rectangles; for query-less families it is an
    integer count or a sequence of ``None`` placeholders.  The batch is
    compiled with :func:`compile_programs` and run on ``executor`` (the
    shared default :func:`~repro.core.program.default_executor` when
    omitted).  Every result is bit-identical to the corresponding scalar
    :func:`run_estimate` call.
    """
    from repro.core.program import default_executor

    runner = executor if executor is not None else default_executor()
    return runner.run(compile_programs(spec, estimator, queries))
