"""Delta-applied merged views: refresh a cached view in O(delta), not O(state).

Atomic sketches are linear projections, so the merged view of a name is the
*sum* of its shard counter tensors — and after a flush, the new merged view
is exactly the old one plus the counter contribution of the flushed boxes.
:func:`delta_merged_view` exploits that identity: given an immutable cached
view and a *delta estimator* (a fresh estimator of the same spec that was
fed only the updates since the view was built, see
:meth:`repro.service.store.ShardedSketchStore.record_delta`), it produces a
new view whose banks are :meth:`~repro.core.atomic.SketchBank.clone_with_delta`
clones — counter tensors computed as one fused add each, xi families
*aliased* from the cached view.

The aliasing is the load-bearing half.  Letter sums depend only on a bank's
xi families and dyadic domain, never on its counters, so a delta-applied
view answers queries through exactly the letter-sum cache entries (and warm
lazy sign tables) its predecessor populated — the steady-state serving cost
after a flush becomes one tensor add per bank instead of a full shard
re-merge plus cold letter-sum recomputation.  Bit-identity with a
from-scratch merge holds because counter updates are exact integers stored
in float64: addition is exact and order-independent.

The cached view is never mutated (concurrent estimates read it lock-free);
the clone is a new object sharing only immutable pieces.
"""

from __future__ import annotations

import copy
from typing import Any

from repro.core.atomic import SketchBank
from repro.errors import MergeCompatibilityError, ServiceError

__all__ = ["delta_merged_view", "empty_delta_estimator", "DELTA_BOX_BUDGET"]

#: Boxes a delta tracker may accumulate before it is dropped.  The apply
#: itself is O(tensor) regardless of the box count — the budget bounds how
#: long a *watched but unqueried* name keeps paying the double-ingest cost
#: of delta recording before falling back to rebuild-on-next-query.
DELTA_BOX_BUDGET = 1 << 18

#: Input-cardinality attributes the eight estimator families keep outside
#: their banks; delta application sums them like the counters they describe.
_COUNT_ATTRS = ("_left_count", "_right_count", "_outer_count",
                "_inner_count", "_count")


def empty_delta_estimator(template: Any) -> Any:
    """A zero-counter estimator of ``template``'s spec, aliasing its xi state.

    Delta trackers need an estimator that is merge-compatible with the
    name's merged views but starts empty.  Building one with
    ``spec.build()`` would redraw every xi family from the seed — exactly
    the O(instances x levels) cost delta propagation exists to avoid, paid
    on every re-armed watch.  Instead the tracker estimator is a shallow
    clone of an existing estimator (in practice a shard's) whose banks are
    :meth:`~repro.core.atomic.SketchBank.companion` companions — empty
    counters, shared xi families and their lazily-built sign tables — and
    whose input counts are zeroed.  Compatibility is checked by value
    (domain signature, words, seeded xi coefficients), so deltas recorded
    here merge cleanly onto views built from any same-spec estimator.
    """
    template_state = vars(template)
    clone = copy.copy(template)
    for attr, value in template_state.items():
        if isinstance(value, SketchBank):
            setattr(clone, attr, value.companion())
    for attr in _COUNT_ATTRS:
        if attr in template_state:
            setattr(clone, attr, 0)
    if "_compiled_terms" in template_state:
        clone._compiled_terms = None
    return clone


def delta_merged_view(view: Any, delta: Any) -> Any:
    """A new estimator equal to ``view + delta``, sharing ``view``'s xi state.

    ``view`` is an immutable cached merged view; ``delta`` is an estimator
    of the same spec summarising only the updates applied since ``view``
    was built.  Every :class:`~repro.core.atomic.SketchBank` attribute is
    replaced by a :meth:`~repro.core.atomic.SketchBank.clone_with_delta`
    clone (fused counter add, aliased xi families) and every input-count
    attribute by its sum; everything else — domain, boosting plan, pair
    terms, transforms — is shared, being immutable configuration.

    Raises :class:`~repro.errors.ServiceError` (or
    :class:`~repro.errors.MergeCompatibilityError`) when the two estimators
    do not line up; callers fall back to a full rebuild.
    """
    if type(delta) is not type(view):
        raise MergeCompatibilityError(
            f"cannot delta-apply {type(delta).__name__} onto "
            f"{type(view).__name__}")
    view_state = vars(view)
    delta_state = vars(delta)
    bank_attrs = [attr for attr, value in view_state.items()
                  if isinstance(value, SketchBank)]
    if not bank_attrs:
        raise ServiceError(
            f"{type(view).__name__} holds no sketch banks to delta-apply")
    clone = copy.copy(view)
    for attr in bank_attrs:
        delta_bank = delta_state.get(attr)
        if not isinstance(delta_bank, SketchBank):
            raise MergeCompatibilityError(
                f"delta estimator lacks sketch bank {attr!r}")
        setattr(clone, attr, view_state[attr].clone_with_delta(delta_bank))
    for attr in _COUNT_ATTRS:
        if attr in view_state:
            setattr(clone, attr, view_state[attr] + delta_state[attr])
    # The paired-join families cache compiled program terms holding
    # CounterRefs to *their own* bank objects; the clone's banks are new.
    if "_compiled_terms" in view_state:
        clone._compiled_terms = None
    return clone
