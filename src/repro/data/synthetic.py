"""Synthetic spatial workloads (Section 7.1).

The paper's synthetic two-dimensional datasets generate the interval of an
object independently per dimension: the position follows a Zipfian
distribution with parameter ``z`` (``z = 0`` is uniform) and the average
object extent per dimension is of order ``sqrt(domain size)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.domain import Domain
from repro.data.zipf import zipf_sample
from repro.errors import WorkloadError
from repro.geometry.boxset import BoxSet, PointSet


def _resolve_rng(rng) -> np.random.Generator:
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _check_count(count: int) -> None:
    if count < 1:
        raise WorkloadError(f"the number of objects must be positive, got {count}")


def _sample_lengths(count: int, mean_length: float, rng: np.random.Generator,
                    max_length: int) -> np.ndarray:
    """Exponentially distributed object extents with a given mean (>= 1)."""
    if mean_length < 1:
        raise WorkloadError("the mean object length must be at least 1")
    lengths = rng.exponential(scale=mean_length, size=count)
    lengths = np.clip(np.round(lengths), 1, max(1, max_length)).astype(np.int64)
    return lengths


def generate_intervals(count: int, domain: Domain | int, *, skew: float = 0.0,
                       mean_length: float | None = None, rng=None) -> BoxSet:
    """Generate ``count`` one-dimensional intervals.

    Parameters
    ----------
    count:
        Number of intervals.
    domain:
        The data space (or its size).
    skew:
        Zipf parameter of the position distribution (0 = uniform).
    mean_length:
        Mean interval extent; defaults to ``sqrt(domain size)`` as in the paper.
    rng:
        Seed or :class:`numpy.random.Generator`.
    """
    _check_count(count)
    if isinstance(domain, int):
        domain = Domain(domain)
    if domain.dimension != 1:
        raise WorkloadError("generate_intervals needs a one-dimensional domain")
    rng = _resolve_rng(rng)
    size = domain.requested_sizes[0]
    if mean_length is None:
        mean_length = float(np.sqrt(size))
    lengths = _sample_lengths(count, mean_length, rng, size - 1)
    starts = zipf_sample(count, size - 1, skew, rng, shuffle_ranks=skew > 0)
    highs = np.minimum(starts + lengths, size - 1)
    lows = np.minimum(starts, highs - 1)
    lows = np.maximum(lows, 0)
    return BoxSet(lows[:, None], highs[:, None])


def generate_rectangles(count: int, domain: Domain, *, skew: float | tuple[float, ...] = 0.0,
                        mean_length: float | tuple[float, ...] | None = None,
                        rng=None) -> BoxSet:
    """Generate ``count`` axis-aligned hyper-rectangles.

    Positions follow independent per-dimension Zipf distributions with the
    given skew(s); extents are exponential with mean ``sqrt(domain size)``
    per dimension unless overridden.
    """
    _check_count(count)
    rng = _resolve_rng(rng)
    dimension = domain.dimension
    if isinstance(skew, (int, float)):
        skew = (float(skew),) * dimension
    if len(skew) != dimension:
        raise WorkloadError("one skew value per dimension is required")
    if mean_length is None or isinstance(mean_length, (int, float)):
        mean_length = (mean_length,) * dimension
    if len(mean_length) != dimension:
        raise WorkloadError("one mean length per dimension is required")

    lows = np.empty((count, dimension), dtype=np.int64)
    highs = np.empty((count, dimension), dtype=np.int64)
    for dim in range(dimension):
        size = domain.requested_sizes[dim]
        mean = mean_length[dim]
        if mean is None:
            mean = float(np.sqrt(size))
        lengths = _sample_lengths(count, mean, rng, size - 1)
        starts = zipf_sample(count, size - 1, skew[dim], rng, shuffle_ranks=skew[dim] > 0)
        hi = np.minimum(starts + lengths, size - 1)
        lo = np.maximum(np.minimum(starts, hi - 1), 0)
        lows[:, dim] = lo
        highs[:, dim] = hi
    return BoxSet(lows, highs)


def generate_points(count: int, domain: Domain, *, skew: float | tuple[float, ...] = 0.0,
                    clusters: int = 0, cluster_spread: float | None = None,
                    rng=None) -> PointSet:
    """Generate ``count`` points, optionally clustered.

    With ``clusters = 0`` coordinates follow independent per-dimension Zipf
    distributions; otherwise points are drawn around ``clusters`` Gaussian
    cluster centres (useful for epsilon-join workloads).
    """
    _check_count(count)
    rng = _resolve_rng(rng)
    dimension = domain.dimension
    sizes = np.asarray(domain.requested_sizes, dtype=np.int64)

    if clusters > 0:
        if cluster_spread is None:
            cluster_spread = float(np.min(sizes)) / (4.0 * clusters)
        centres = rng.integers(0, sizes, size=(clusters, dimension))
        assignment = rng.integers(0, clusters, size=count)
        noise = rng.normal(scale=cluster_spread, size=(count, dimension))
        coords = centres[assignment] + np.round(noise).astype(np.int64)
        coords = np.clip(coords, 0, sizes - 1)
        return PointSet(coords)

    if isinstance(skew, (int, float)):
        skew = (float(skew),) * dimension
    if len(skew) != dimension:
        raise WorkloadError("one skew value per dimension is required")
    coords = np.empty((count, dimension), dtype=np.int64)
    for dim in range(dimension):
        coords[:, dim] = zipf_sample(count, int(sizes[dim]), skew[dim], rng,
                                     shuffle_ranks=skew[dim] > 0)
    return PointSet(coords)
