"""Update streams of inserts and deletes.

The paper emphasises that spatial sketches are maintained incrementally
under inserts *and* deletes and can therefore summarise streaming spatial
data.  :class:`UpdateStream` turns a dataset into a reproducible sequence
of update operations (a prefix of inserts followed by a mix of inserts and
deletes), which the estimators and the engine's synopsis manager consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.geometry.boxset import BoxSet


class UpdateKind(str, Enum):
    """The two kinds of stream operations."""

    INSERT = "insert"
    DELETE = "delete"


@dataclass(frozen=True)
class UpdateOperation:
    """One stream element: insert or delete a single box."""

    kind: UpdateKind
    box: BoxSet

    @property
    def is_insert(self) -> bool:
        return self.kind is UpdateKind.INSERT


class UpdateStream:
    """A reproducible insert/delete stream derived from a dataset.

    Parameters
    ----------
    boxes:
        The underlying objects.
    delete_fraction:
        Fraction of the *inserted* objects that are later deleted again.
    warmup_fraction:
        Fraction of the stream that is pure inserts before deletes may occur.
    seed:
        Seed for shuffling the operations.
    """

    def __init__(self, boxes: BoxSet, *, delete_fraction: float = 0.0,
                 warmup_fraction: float = 0.5, seed: int = 0) -> None:
        if not 0.0 <= delete_fraction <= 1.0:
            raise WorkloadError("delete_fraction must be in [0, 1]")
        if not 0.0 <= warmup_fraction <= 1.0:
            raise WorkloadError("warmup_fraction must be in [0, 1]")
        self._boxes = boxes
        self._delete_fraction = float(delete_fraction)
        self._warmup_fraction = float(warmup_fraction)
        self._seed = int(seed)

    @property
    def num_objects(self) -> int:
        return len(self._boxes)

    def expected_length(self) -> int:
        """Number of operations the stream will produce."""
        deletes = int(round(self._delete_fraction * len(self._boxes)))
        return len(self._boxes) + deletes

    def final_state(self) -> BoxSet:
        """The dataset that remains after the whole stream has been applied."""
        order, deleted = self._plan()
        surviving = np.setdiff1d(order, deleted, assume_unique=False)
        if len(surviving) == 0:
            return BoxSet.empty(self._boxes.dimension)
        return self._boxes[np.sort(surviving)]

    def _plan(self) -> tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(self._seed)
        order = rng.permutation(len(self._boxes))
        num_deletes = int(round(self._delete_fraction * len(self._boxes)))
        deleted = rng.choice(order, size=num_deletes, replace=False) if num_deletes else \
            np.empty(0, dtype=np.int64)
        return order, deleted

    def __iter__(self) -> Iterator[UpdateOperation]:
        rng = np.random.default_rng(self._seed)
        order, deleted = self._plan()
        deleted_set = set(int(i) for i in deleted)

        warmup_count = int(round(self._warmup_fraction * len(order)))
        operations: list[tuple[UpdateKind, int]] = [
            (UpdateKind.INSERT, int(i)) for i in order[:warmup_count]
        ]
        tail: list[tuple[UpdateKind, int]] = [
            (UpdateKind.INSERT, int(i)) for i in order[warmup_count:]
        ]
        # Deletes may only be emitted after the corresponding insert; place a
        # delete immediately after a random later position by shuffling the
        # tail together with the delete operations of warmed-up objects.
        tail.extend((UpdateKind.DELETE, int(i)) for i in order[:warmup_count]
                    if int(i) in deleted_set)
        rng.shuffle(tail)
        inserted: set[int] = {index for _, index in operations}
        pending_deletes: list[int] = []
        for kind, index in tail:
            if kind is UpdateKind.INSERT:
                operations.append((kind, index))
                inserted.add(index)
                if index in deleted_set:
                    pending_deletes.append(index)
            else:
                operations.append((kind, index))
        # Deletes of objects inserted in the tail are appended at the end.
        operations.extend((UpdateKind.DELETE, index) for index in pending_deletes)

        for kind, index in operations:
            yield UpdateOperation(kind=kind, box=self._boxes[index])

    def batches(self, batch_size: int) -> Iterator[tuple[UpdateKind, BoxSet]]:
        """Group consecutive operations of the same kind into BoxSet batches."""
        if batch_size < 1:
            raise WorkloadError("batch_size must be positive")
        current_kind: UpdateKind | None = None
        current: list[BoxSet] = []
        for operation in self:
            if current_kind is None:
                current_kind = operation.kind
            if operation.kind is not current_kind or len(current) >= batch_size:
                if current:
                    yield current_kind, _concat(current)
                current_kind = operation.kind
                current = []
            current.append(operation.box)
        if current and current_kind is not None:
            yield current_kind, _concat(current)


def _concat(parts: list[BoxSet]) -> BoxSet:
    result = parts[0]
    for part in parts[1:]:
        result = result.concat(part)
    return result
