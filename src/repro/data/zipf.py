"""Bounded Zipf distributions.

Section 7.1 generates interval positions "according to a Zipfian
distribution with Zipf parameter z".  ``z = 0`` is the uniform
distribution; larger z concentrates mass on a few popular values.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


def zipf_probabilities(num_values: int, skew: float) -> np.ndarray:
    """Probability vector of a bounded Zipf(z) distribution over ``num_values`` ranks."""
    if num_values < 1:
        raise WorkloadError("the Zipf distribution needs at least one value")
    if skew < 0:
        raise WorkloadError("the Zipf skew parameter must be non-negative")
    ranks = np.arange(1, num_values + 1, dtype=np.float64)
    weights = ranks ** (-float(skew))
    return weights / weights.sum()


def zipf_sample(num_samples: int, num_values: int, skew: float,
                rng: np.random.Generator, *, shuffle_ranks: bool = False) -> np.ndarray:
    """Draw ``num_samples`` values in ``[0, num_values)`` from a bounded Zipf(z).

    With ``shuffle_ranks`` the popularity ranking is randomly permuted over
    the value range, so the popular values are not always the smallest
    coordinates (useful for spatial placements).
    """
    if num_samples < 0:
        raise WorkloadError("cannot draw a negative number of samples")
    probabilities = zipf_probabilities(num_values, skew)
    values = rng.choice(num_values, size=num_samples, p=probabilities)
    if shuffle_ranks:
        permutation = rng.permutation(num_values)
        values = permutation[values]
    return values.astype(np.int64)
