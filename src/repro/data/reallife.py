"""Simulated stand-ins for the paper's real-life GIS datasets (Section 7.3).

The original experiments used three Wyoming GIS layers (land ownership,
land cover and soils) that are not redistributable here.  What matters for
the evaluation is not their exact geometry but their statistical character:

* tens of thousands of rectangles (the MBRs of map polygons),
* heavily clustered, skewed placement (administrative regions, terrain),
* log-normally distributed object sizes spanning several orders of magnitude,
* a substantial fraction of *shared boundary coordinates* because adjacent
  map polygons snap to common borders (this is what stresses the common-
  endpoint handling of Section 5.2).

:func:`generate_real_life_dataset` produces datasets with those properties;
:data:`REAL_LIFE_SPECS` mirrors the paper's three layers (LANDO, LANDC,
SOIL) including their cardinalities, and :func:`load_real_life_pair`
returns a deterministic pair of layers over a shared domain so the three
join combinations of Figures 9-11 can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.domain import Domain
from repro.errors import WorkloadError
from repro.geometry.boxset import BoxSet


@dataclass(frozen=True)
class RealLifeSpec:
    """Shape parameters of one simulated map layer."""

    name: str
    num_objects: int
    num_clusters: int
    size_log_mean: float
    size_log_sigma: float
    snap_fraction: float
    seed_offset: int

    def scaled(self, factor: float) -> "RealLifeSpec":
        """A spec with the object count scaled by ``factor`` (at least 1 object)."""
        if factor <= 0:
            raise WorkloadError("the scale factor must be positive")
        return RealLifeSpec(
            name=self.name,
            num_objects=max(1, int(round(self.num_objects * factor))),
            num_clusters=max(1, int(round(self.num_clusters * min(1.0, factor ** 0.5)))),
            size_log_mean=self.size_log_mean,
            size_log_sigma=self.size_log_sigma,
            snap_fraction=self.snap_fraction,
            seed_offset=self.seed_offset,
        )


#: Specifications mirroring the three layers used in Section 7.3.
REAL_LIFE_SPECS: dict[str, RealLifeSpec] = {
    "LANDO": RealLifeSpec(
        name="LANDO", num_objects=33_860, num_clusters=60,
        size_log_mean=3.2, size_log_sigma=1.1, snap_fraction=0.45, seed_offset=101,
    ),
    "LANDC": RealLifeSpec(
        name="LANDC", num_objects=14_731, num_clusters=35,
        size_log_mean=3.8, size_log_sigma=1.3, snap_fraction=0.40, seed_offset=202,
    ),
    "SOIL": RealLifeSpec(
        name="SOIL", num_objects=29_662, num_clusters=80,
        size_log_mean=3.0, size_log_sigma=0.9, snap_fraction=0.50, seed_offset=303,
    ),
}


def generate_real_life_dataset(spec: RealLifeSpec | str, domain: Domain, *,
                               scale: float = 1.0, seed: int = 0) -> BoxSet:
    """Generate one simulated map layer over the given (two-dimensional) domain."""
    if isinstance(spec, str):
        try:
            spec = REAL_LIFE_SPECS[spec.upper()]
        except KeyError as exc:
            raise WorkloadError(
                f"unknown real-life dataset {spec!r}; available: {sorted(REAL_LIFE_SPECS)}"
            ) from exc
    if domain.dimension != 2:
        raise WorkloadError("the simulated map layers are two-dimensional")
    if scale != 1.0:
        spec = spec.scaled(scale)

    rng = np.random.default_rng(seed + spec.seed_offset)
    sizes = np.asarray(domain.requested_sizes, dtype=np.int64)
    count = spec.num_objects

    # Cluster centres and per-cluster spread model the map's regions.
    centres = rng.integers(0, sizes, size=(spec.num_clusters, 2))
    cluster_weights = rng.dirichlet(np.full(spec.num_clusters, 0.6))
    assignment = rng.choice(spec.num_clusters, size=count, p=cluster_weights)
    spreads = rng.uniform(0.01, 0.08, size=spec.num_clusters) * float(np.min(sizes))

    noise = rng.normal(size=(count, 2)) * spreads[assignment][:, None]
    anchors = centres[assignment] + np.round(noise).astype(np.int64)
    anchors = np.clip(anchors, 0, sizes - 1)

    # Log-normal extents, clipped to the domain.
    extents = np.exp(rng.normal(spec.size_log_mean, spec.size_log_sigma, size=(count, 2)))
    extents = np.clip(np.round(extents), 1, sizes // 8).astype(np.int64)

    # Snap a fraction of coordinates to a coarse "parcel grid" so that
    # adjacent objects share boundary coordinates, like real map layers do.
    grid_pitch = max(4, int(np.min(sizes)) // 256)
    snap_mask = rng.random(count) < spec.snap_fraction
    anchors[snap_mask] = (anchors[snap_mask] // grid_pitch) * grid_pitch
    extents[snap_mask] = np.maximum(
        grid_pitch, (extents[snap_mask] // grid_pitch) * grid_pitch
    )

    lows = np.clip(anchors, 0, sizes - 2)
    highs = np.minimum(lows + extents, sizes - 1)
    highs = np.maximum(highs, lows + 1)
    return BoxSet(lows, highs)


def load_real_life_pair(left_name: str, right_name: str, *, domain: Domain | None = None,
                        scale: float = 1.0, seed: int = 0) -> tuple[BoxSet, BoxSet, Domain]:
    """Two simulated layers over a shared domain (for the Figures 9-11 joins)."""
    if domain is None:
        domain = Domain.square(16_384, dimension=2)
    left = generate_real_life_dataset(left_name, domain, scale=scale, seed=seed)
    right = generate_real_life_dataset(right_name, domain, scale=scale, seed=seed)
    return left, right, domain
