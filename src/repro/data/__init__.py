"""Workload generators.

* :mod:`repro.data.zipf` — bounded Zipf samplers.
* :mod:`repro.data.synthetic` — the synthetic interval / rectangle / point
  workloads of Section 7.1 (uniform and Zipf-skewed placements, object
  sizes of order sqrt(domain)).
* :mod:`repro.data.reallife` — simulated stand-ins for the LANDO / LANDC /
  SOIL real-life datasets of Section 7.3 (clustered, map-like rectangle
  sets with shared boundary coordinates).
* :mod:`repro.data.streams` — insert/delete update streams for the
  streaming-maintenance experiments.
"""

from repro.data.zipf import zipf_probabilities, zipf_sample
from repro.data.synthetic import (
    generate_intervals,
    generate_points,
    generate_rectangles,
)
from repro.data.reallife import (
    REAL_LIFE_SPECS,
    RealLifeSpec,
    generate_real_life_dataset,
    load_real_life_pair,
)
from repro.data.streams import UpdateKind, UpdateOperation, UpdateStream

__all__ = [
    "zipf_probabilities",
    "zipf_sample",
    "generate_intervals",
    "generate_rectangles",
    "generate_points",
    "REAL_LIFE_SPECS",
    "RealLifeSpec",
    "generate_real_life_dataset",
    "load_real_life_pair",
    "UpdateKind",
    "UpdateOperation",
    "UpdateStream",
]
