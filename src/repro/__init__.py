"""repro — sketch-based selectivity estimation for spatial data.

A reproduction of *"Approximation Techniques for Spatial Data"*
(Das, Gehrke, Riedewald; SIGMOD 2004).  The library provides:

* AMS-style *spatial sketches* with provable probabilistic error guarantees
  for spatial joins, epsilon-joins, containment joins and range queries
  (:mod:`repro.core`),
* the Geometric- and Euler-histogram baselines the paper compares against
  (:mod:`repro.histograms`),
* exact spatial query processors used as ground truth (:mod:`repro.exact`),
* spatial indexes (:mod:`repro.index`), workload generators
  (:mod:`repro.data`), a small spatial query engine (:mod:`repro.engine`)
  and the experiment harness that regenerates the paper's figures
  (:mod:`repro.experiments`).

Quick start::

    import numpy as np
    from repro import Domain, RectangleJoinEstimator
    from repro.data import synthetic
    from repro.exact import rectangle_join_count

    rng = np.random.default_rng(7)
    domain = Domain.square(4096, dimension=2)
    left = synthetic.generate_rectangles(5_000, domain, rng=rng)
    right = synthetic.generate_rectangles(5_000, domain, rng=rng)

    estimator = RectangleJoinEstimator(domain, num_instances=256, seed=11)
    estimator.insert_left(left)
    estimator.insert_right(right)
    print(estimator.estimate_cardinality(), rectangle_join_count(left, right))
"""

from repro.version import __version__
from repro.errors import (
    DimensionalityError,
    DomainError,
    EngineError,
    EstimationError,
    MergeCompatibilityError,
    ReproError,
    ServiceError,
    SketchConfigError,
    SnapshotError,
    WorkloadError,
)
from repro.geometry import BoxSet, Interval, PointSet, Rect
from repro.core import (
    BoostingPlan,
    CommonEndpointJoinEstimator,
    ContainmentJoinEstimator,
    Domain,
    DyadicDomain,
    EndpointTransform,
    EpsilonJoinEstimator,
    EstimateResult,
    ExtendedOverlapJoinEstimator,
    IntervalJoinEstimator,
    Letter,
    Quantizer,
    RangeQueryEstimator,
    RectangleJoinEstimator,
    SketchBank,
    SpatialJoinEstimator,
    choose_max_level,
    dataset_self_join_size,
    median_of_means,
    median_of_means_batch,
    plan_boosting,
    self_join_size,
    stable_seed_offset,
)

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "DomainError",
    "DimensionalityError",
    "SketchConfigError",
    "MergeCompatibilityError",
    "EstimationError",
    "WorkloadError",
    "EngineError",
    "ServiceError",
    "SnapshotError",
    # geometry
    "Interval",
    "Rect",
    "BoxSet",
    "PointSet",
    # core
    "Domain",
    "DyadicDomain",
    "EndpointTransform",
    "Quantizer",
    "Letter",
    "SketchBank",
    "BoostingPlan",
    "EstimateResult",
    "median_of_means",
    "median_of_means_batch",
    "plan_boosting",
    "stable_seed_offset",
    "self_join_size",
    "dataset_self_join_size",
    "choose_max_level",
    "IntervalJoinEstimator",
    "RectangleJoinEstimator",
    "SpatialJoinEstimator",
    "ExtendedOverlapJoinEstimator",
    "CommonEndpointJoinEstimator",
    "ContainmentJoinEstimator",
    "EpsilonJoinEstimator",
    "RangeQueryEstimator",
]
