"""Micro-batching of concurrent estimate requests.

Individually, network estimate requests would each pay a full scalar
``estimate`` call.  The PR-2 batch kernels answer a whole query batch for
barely more than one scalar call, so the serving layer *coalesces*:
concurrent in-flight ``estimate`` requests for the same estimator are
gathered into one bucket and answered through a single
:meth:`~repro.service.service.EstimationService.estimate_batch` engine
call.  Result ``j`` of a batch is bit-identical to the scalar estimate of
query ``j`` (a PR-2 invariant), so coalescing is invisible to clients
except in latency.

A bucket dispatches when either

* it reaches ``max_batch`` queued queries (size trigger), or
* ``max_delay`` seconds elapsed since its first query (timer trigger) —
  the knob trading a little latency for a larger coalesce factor.

Admission control bounds the total number of queries that are queued or
in flight at ``max_queue``; beyond that, :meth:`submit` raises
:class:`~repro.errors.OverloadedError` *immediately* instead of queueing
without bound, so an overloaded server answers with fast structured errors
rather than stalling every connection.

All methods must be called from the event-loop thread; the actual engine
call runs on a thread-pool executor so the loop stays responsive.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor
from dataclasses import dataclass, field, replace
from typing import Any, Callable

import numpy as np

from repro.core.result import EstimateResult
from repro.errors import OverloadedError, ServiceError
from repro.geometry.boxset import BoxSet


@dataclass
class CoalescerStats:
    """Lifetime counters of one coalescer (event-loop thread only)."""

    submitted: int = 0
    rejected: int = 0
    batches: int = 0
    batched_queries: int = 0
    size_dispatches: int = 0
    timer_dispatches: int = 0
    largest_batch: int = 0

    @property
    def coalesce_factor(self) -> float:
        """Average queries answered per engine call (1.0 = no coalescing)."""
        return self.batched_queries / self.batches if self.batches else 0.0

    def copy(self) -> "CoalescerStats":
        return replace(self)


@dataclass
class _Bucket:
    entries: list[tuple[BoxSet | None, asyncio.Future]] = field(default_factory=list)
    timer: asyncio.TimerHandle | None = None


class EstimateCoalescer:
    """Gathers concurrent estimate requests into batched engine calls.

    Parameters
    ----------
    get_service:
        Zero-argument callable returning the *current*
        :class:`EstimationService`.  Resolved at dispatch time, so a
        snapshot hot-reload swaps the backing service without touching
        queued requests.
    max_batch:
        Size trigger: a bucket with this many queries dispatches at once.
        ``1`` disables coalescing (every request becomes its own engine
        call) — the "naive" baseline of the latency benchmark.
    max_delay:
        Timer trigger, in seconds: the longest a queued query waits for
        companions before its bucket dispatches anyway.
    max_queue:
        Admission cap on queued-plus-in-flight queries; beyond it,
        :meth:`submit` raises :class:`OverloadedError`.
    executor:
        Thread pool the engine calls run on (``None`` uses the loop's
        default executor).
    """

    def __init__(self, get_service: Callable[[], Any], *, max_batch: int = 64,
                 max_delay: float = 0.002, max_queue: int = 1024,
                 executor: Executor | None = None) -> None:
        if max_batch < 1:
            raise ServiceError("max_batch must be positive")
        if max_delay < 0:
            raise ServiceError("max_delay must be non-negative")
        if max_queue < 1:
            raise ServiceError("max_queue must be positive")
        self._get_service = get_service
        self._max_batch = int(max_batch)
        self._max_delay = float(max_delay)
        self._max_queue = int(max_queue)
        self._executor = executor
        self._buckets: dict[str, _Bucket] = {}
        self._queued = 0
        self._inflight = 0
        self._tasks: set[asyncio.Task] = set()
        self._stats = CoalescerStats()

    # -- introspection ------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Queries currently queued or in flight (the admission level)."""
        return self._queued + self._inflight

    @property
    def max_batch(self) -> int:
        return self._max_batch

    @property
    def stats(self) -> CoalescerStats:
        return self._stats.copy()

    # -- submission ---------------------------------------------------------------

    def submit(self, name: str, query: BoxSet | None
               ) -> "asyncio.Future[EstimateResult]":
        """Queue one estimate; the returned future resolves with its result.

        ``query`` is a single-row :class:`BoxSet` for queryable families or
        ``None`` for query-less ones (the caller validates against the
        family).  Raises :class:`OverloadedError` synchronously when the
        admission queue is full.
        """
        if self.queue_depth >= self._max_queue:
            self._stats.rejected += 1
            raise OverloadedError()
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        bucket = self._buckets.get(name)
        if bucket is None:
            bucket = self._buckets[name] = _Bucket()
        bucket.entries.append((query, future))
        self._queued += 1
        self._stats.submitted += 1
        if len(bucket.entries) >= self._max_batch:
            self._dispatch(name, "size")
        elif bucket.timer is None:
            bucket.timer = loop.call_later(self._max_delay, self._dispatch,
                                           name, "timer")
        return future

    # -- dispatching --------------------------------------------------------------

    def _dispatch(self, name: str, reason: str) -> None:
        bucket = self._buckets.get(name)
        if bucket is None or not bucket.entries:
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
            bucket.timer = None
        entries = bucket.entries[:self._max_batch]
        del bucket.entries[:self._max_batch]
        if bucket.entries:
            # Leftovers (only possible after a burst larger than max_batch):
            # dispatch them on the next loop iteration rather than waiting
            # a full delay window again.
            loop = asyncio.get_running_loop()
            bucket.timer = loop.call_later(0, self._dispatch, name, reason)
        else:
            del self._buckets[name]
        self._queued -= len(entries)
        self._inflight += len(entries)
        self._stats.batches += 1
        self._stats.batched_queries += len(entries)
        self._stats.largest_batch = max(self._stats.largest_batch, len(entries))
        if reason == "size":
            self._stats.size_dispatches += 1
        else:
            self._stats.timer_dispatches += 1
        task = asyncio.get_running_loop().create_task(
            self._run_batch(name, entries))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_batch(self, name: str,
                         entries: list[tuple[BoxSet | None, asyncio.Future]]
                         ) -> None:
        queries = self._batch_queries(entries)
        service = self._get_service()
        loop = asyncio.get_running_loop()

        def answer():
            # record_coalesced takes the service lock, so it stays on the
            # executor thread with the engine call — the event loop never
            # waits on that lock.
            results = service.estimate_batch(name, queries)
            service.record_coalesced(len(entries))
            return results

        try:
            results = await loop.run_in_executor(self._executor, answer)
        except Exception as exc:
            for _, future in entries:
                if not future.done():
                    future.set_exception(exc)
        else:
            for (_, future), result in zip(entries, results):
                if not future.done():
                    future.set_result(result)
        finally:
            self._inflight -= len(entries)

    @staticmethod
    def _batch_queries(entries: list[tuple[BoxSet | None, asyncio.Future]]):
        """One estimate_batch argument from a bucket's queued queries."""
        if entries[0][0] is None:
            # Query-less family: a count-shaped batch.  Mixed buckets cannot
            # occur — the server validates the query against the family
            # before submitting.
            return [None] * len(entries)
        lows = np.concatenate([query.lows for query, _ in entries])
        highs = np.concatenate([query.highs for query, _ in entries])
        return BoxSet(lows, highs, validate=False)

    # -- shutdown -----------------------------------------------------------------

    async def drain(self) -> None:
        """Dispatch everything queued and wait for in-flight batches."""
        while self._buckets or self._tasks:
            for name in list(self._buckets):
                self._dispatch(name, "timer")
            if self._tasks:
                await asyncio.gather(*list(self._tasks), return_exceptions=True)
            else:
                await asyncio.sleep(0)
