"""Micro-batching of concurrent estimate requests — across estimators.

Individually, network estimate requests would each pay a full scalar
``estimate`` call.  The batch kernels answer a whole query batch for barely
more than one scalar call, so the serving layer *coalesces*: concurrent
in-flight ``estimate`` requests are gathered into one bucket and answered
through a single engine dispatch.  Since the compiled-program layer
(:mod:`repro.core.program`) the bucket is **cross-estimator**: a mixed
workload of N requests over K estimators coalesces into *one*
:meth:`~repro.service.service.EstimationService.estimate_multi` dispatch
instead of K per-estimator batches — letter-sum work is shared across
queries and estimator families, and the whole dispatch pays one reduction
pass.  Result ``j`` of a dispatch is bit-identical to the scalar estimate
of request ``j``, so coalescing is invisible to clients except in latency.

The shared bucket dispatches when either

* it reaches ``max_batch`` queued queries (size trigger), or
* ``max_delay`` seconds elapsed since its first query (timer trigger) —
  the knob trading a little latency for a larger coalesce factor.

Admission control bounds the total number of queries that are queued or
in flight at ``max_queue``; beyond that, :meth:`submit` raises
:class:`~repro.errors.OverloadedError` *immediately* instead of queueing
without bound, so an overloaded server answers with fast structured errors
rather than stalling every connection.

Queued requests live in **per-tenant queues** drained weighted-round-
robin: each dispatch cycles over the tenants with queued work, taking up
to ``share`` (the tenant's configured weight) queries from each before
moving on, and each dispatch starts the cycle one tenant further along.
A tenant that floods the queue therefore lengthens only *its own* line —
another tenant's requests still board the very next batch, which is what
keeps the well-behaved tenant's p99 flat under a noisy neighbor (the
``tenancy`` perf gate).  Untenanted traffic (a server with no tenant
registry) all rides one queue, making the drain order identical to the
pre-tenancy coalescer.

All methods must be called from the event-loop thread; the actual engine
call runs on a thread-pool executor so the loop stays responsive.
"""

from __future__ import annotations

import asyncio
from collections import Counter, OrderedDict, deque
from concurrent.futures import Executor
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.core.result import EstimateResult
from repro.errors import OverloadedError, ServiceError
from repro.geometry.boxset import BoxSet


@dataclass
class EstimatorCoalesceStats:
    """Per-estimator coalescing counters (event-loop thread only)."""

    queries: int = 0      # queries answered for this estimator
    dispatches: int = 0   # engine dispatches that included this estimator

    @property
    def coalesce_factor(self) -> float:
        """Queries this estimator contributed per engine dispatch it rode."""
        return self.queries / self.dispatches if self.dispatches else 0.0


@dataclass
class CoalescerStats:
    """Lifetime counters of one coalescer (event-loop thread only)."""

    submitted: int = 0
    rejected: int = 0
    batches: int = 0
    batched_queries: int = 0
    size_dispatches: int = 0
    timer_dispatches: int = 0
    largest_batch: int = 0
    #: Dispatches whose bucket spanned more than one estimator — the
    #: cross-estimator coalescing the program executor makes one engine call.
    cross_dispatches: int = 0
    per_estimator: dict[str, EstimatorCoalesceStats] = field(default_factory=dict)
    #: Per-tenant queries/dispatches (same counter shape as per-estimator);
    #: untenanted traffic is not tracked here.
    per_tenant: dict[str, EstimatorCoalesceStats] = field(default_factory=dict)

    @property
    def coalesce_factor(self) -> float:
        """Average queries answered per engine call (1.0 = no coalescing)."""
        return self.batched_queries / self.batches if self.batches else 0.0

    def copy(self) -> "CoalescerStats":
        return replace(self, per_estimator={
            name: replace(stats) for name, stats in self.per_estimator.items()
        }, per_tenant={
            name: replace(stats) for name, stats in self.per_tenant.items()
        })


@dataclass
class _Pending:
    """One queued estimate request."""

    name: str
    query: BoxSet | None
    future: "asyncio.Future[EstimateResult]"
    tenant: str | None = None


class EstimateCoalescer:
    """Gathers concurrent estimate requests into batched engine calls.

    Parameters
    ----------
    get_service:
        Zero-argument callable returning the *current*
        :class:`EstimationService`.  Resolved at dispatch time, so a
        snapshot hot-reload swaps the backing service without touching
        queued requests.
    max_batch:
        Size trigger: the shared bucket dispatches as soon as it holds this
        many queries (across all estimators).  ``1`` disables coalescing
        (every request becomes its own engine call) — the "naive" baseline
        of the latency benchmark.
    max_delay:
        Timer trigger, in seconds: the longest a queued query waits for
        companions before its bucket dispatches anyway.
    max_queue:
        Admission cap on queued-plus-in-flight queries; beyond it,
        :meth:`submit` raises :class:`OverloadedError`.
    executor:
        Thread pool the engine calls run on (``None`` uses the loop's
        default executor).
    """

    def __init__(self, get_service: Callable[[], Any], *, max_batch: int = 64,
                 max_delay: float = 0.002, max_queue: int = 1024,
                 executor: Executor | None = None) -> None:
        if max_batch < 1:
            raise ServiceError("max_batch must be positive")
        if max_delay < 0:
            raise ServiceError("max_delay must be non-negative")
        if max_queue < 1:
            raise ServiceError("max_queue must be positive")
        self._get_service = get_service
        self._max_batch = int(max_batch)
        self._max_delay = float(max_delay)
        self._max_queue = int(max_queue)
        self._executor = executor
        # One queue per tenant (None = untenanted traffic), drained
        # weighted-round-robin; insertion order gives the base rotation.
        self._queues: "OrderedDict[str | None, deque[_Pending]]" = OrderedDict()
        self._weights: dict[str | None, int] = {}
        self._rr_offset = 0
        self._timer: asyncio.TimerHandle | None = None
        self._queued = 0
        self._inflight = 0
        self._tasks: set[asyncio.Task] = set()
        self._stats = CoalescerStats()

    # -- introspection ------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Queries currently queued or in flight (the admission level)."""
        return self._queued + self._inflight

    @property
    def max_batch(self) -> int:
        return self._max_batch

    @property
    def stats(self) -> CoalescerStats:
        return self._stats.copy()

    # -- submission ---------------------------------------------------------------

    def submit(self, name: str, query: BoxSet | None, *,
               tenant: str | None = None, weight: int = 1
               ) -> "asyncio.Future[EstimateResult]":
        """Queue one estimate; the returned future resolves with its result.

        ``query`` is a single-row :class:`BoxSet` for queryable families or
        ``None`` for query-less ones (the caller validates against the
        family).  Requests for *different* estimators share one dispatch —
        mixed batches are answered by a single ``estimate_multi`` engine
        call.  ``tenant`` selects the fair-share queue the request waits in
        and ``weight`` its round-robin allowance (the tenant quota's
        ``share``).  Raises :class:`OverloadedError` synchronously when the
        admission queue is full.
        """
        if self.queue_depth >= self._max_queue:
            self._stats.rejected += 1
            raise OverloadedError()
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        queue.append(_Pending(name, query, future, tenant))
        self._weights[tenant] = max(1, int(weight))
        self._queued += 1
        self._stats.submitted += 1
        if self._queued >= self._max_batch:
            self._dispatch("size")
        elif self._timer is None:
            self._timer = loop.call_later(self._max_delay, self._dispatch,
                                          "timer")
        return future

    # -- dispatching --------------------------------------------------------------

    def _take_batch(self) -> list[_Pending]:
        """Up to ``max_batch`` entries, drained weighted-round-robin.

        Each cycle over the non-empty tenant queues grants every tenant up
        to its ``share`` slots; the starting tenant rotates per dispatch so
        no queue is structurally first.  With a single queue (untenanted
        serving) this degenerates to the historical FIFO slice.
        """
        keys = [key for key, queue in self._queues.items() if queue]
        if not keys:
            return []
        entries: list[_Pending] = []
        start = self._rr_offset % len(keys)
        order = keys[start:] + keys[:start]
        self._rr_offset += 1
        while len(entries) < self._max_batch:
            took_any = False
            for key in order:
                queue = self._queues[key]
                allowance = min(self._weights.get(key, 1),
                                self._max_batch - len(entries))
                while allowance > 0 and queue:
                    entries.append(queue.popleft())
                    allowance -= 1
                    took_any = True
                if len(entries) >= self._max_batch:
                    break
            if not took_any:
                break
        # Idle queues are dropped so departed tenants cost nothing and the
        # rotation stays over live queues only.
        for key in order:
            if not self._queues[key]:
                del self._queues[key]
        return entries

    def _dispatch(self, reason: str) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        entries = self._take_batch()
        if not entries:
            return
        if self._queued > len(entries):
            # Leftovers (only possible after a burst larger than max_batch):
            # dispatch them on the next loop iteration rather than waiting
            # a full delay window again.
            loop = asyncio.get_running_loop()
            self._timer = loop.call_later(0, self._dispatch, reason)
        self._queued -= len(entries)
        self._inflight += len(entries)
        self._stats.batches += 1
        self._stats.batched_queries += len(entries)
        self._stats.largest_batch = max(self._stats.largest_batch, len(entries))
        if reason == "size":
            self._stats.size_dispatches += 1
        else:
            self._stats.timer_dispatches += 1
        per_name = Counter(entry.name for entry in entries)
        for name, count in per_name.items():
            stats = self._stats.per_estimator.setdefault(
                name, EstimatorCoalesceStats())
            stats.queries += count
            stats.dispatches += 1
        if len(per_name) > 1:
            self._stats.cross_dispatches += 1
        per_tenant = Counter(entry.tenant for entry in entries
                             if entry.tenant is not None)
        for tenant, count in per_tenant.items():
            stats = self._stats.per_tenant.setdefault(
                tenant, EstimatorCoalesceStats())
            stats.queries += count
            stats.dispatches += 1
        task = asyncio.get_running_loop().create_task(self._run_batch(entries))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_batch(self, entries: list[_Pending]) -> None:
        service = self._get_service()
        loop = asyncio.get_running_loop()

        def answer(batch: list[_Pending]):
            # record_coalesced takes the service lock, so it stays on the
            # executor thread with the engine call — the event loop never
            # waits on that lock.
            results = service.estimate_multi(
                [(entry.name, entry.query) for entry in batch])
            service.record_coalesced(len(batch))
            return results

        try:
            try:
                results = await loop.run_in_executor(self._executor, answer,
                                                     entries)
            except Exception as exc:
                # A mixed dispatch fails as a whole (one compile error
                # aborts the engine call), but a bad request for one
                # estimator must not poison coalesced requests for healthy
                # ones — per-name buckets used to isolate this.  Retry per
                # estimator so only the offending name's requests see the
                # error.
                groups: dict[str, list[_Pending]] = {}
                for entry in entries:
                    groups.setdefault(entry.name, []).append(entry)
                if len(groups) == 1:
                    self._fail(entries, exc)
                else:
                    # The failed joint attempt died in compilation (before
                    # any kernel ran), so the extra cost here is the
                    # concurrent per-name re-dispatches, not doubled
                    # engine work.
                    async def retry(batch: list[_Pending]) -> None:
                        try:
                            retried = await loop.run_in_executor(
                                self._executor, answer, batch)
                        except Exception as inner:
                            self._fail(batch, inner)
                        else:
                            self._resolve(batch, retried)

                    await asyncio.gather(*(retry(batch)
                                           for batch in groups.values()))
            else:
                self._resolve(entries, results)
        finally:
            self._inflight -= len(entries)

    @staticmethod
    def _resolve(entries: list[_Pending], results) -> None:
        for entry, result in zip(entries, results):
            if not entry.future.done():
                entry.future.set_result(result)

    @staticmethod
    def _fail(entries: list[_Pending], exc: Exception) -> None:
        for entry in entries:
            if not entry.future.done():
                entry.future.set_exception(exc)

    # -- shutdown -----------------------------------------------------------------

    async def drain(self) -> None:
        """Dispatch everything queued and wait for in-flight batches."""
        while self._queued or self._tasks:
            self._dispatch("timer")
            if self._tasks:
                await asyncio.gather(*list(self._tasks), return_exceptions=True)
            else:
                await asyncio.sleep(0)
