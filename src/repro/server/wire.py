"""The length-prefixed binary wire format, and the shared connection loop.

NDJSON (:mod:`repro.server.protocol`) is the default and debug format; a
connection upgrades to binary frames with a ``hello`` handshake::

    client -> {"op": "hello", "wire": "binary"}          (NDJSON)
    server -> {"ok": true, "op": "hello", "wire": "binary", ...}  (NDJSON)
    ... every later frame in both directions is binary ...

A binary frame is::

    offset  size  field
    0       4     magic  b"RBF1"
    4       4     u32 little-endian header length H
    8       8     u64 little-endian body length B
    16      H     UTF-8 JSON header (the payload, tensors/bytes lifted out)
    16+H    B     body: the lifted sections, concatenated in order

The header is the ordinary protocol payload with every numeric tensor
(box rows, partial counters, xi coefficients) and raw byte blob (snapshot
bytes, WAL tails) *lifted* into the body.  Lifted values are described by
the reserved header key ``"_b"``: a list of ``[path, kind, meta]`` entries
where ``path`` locates the value in the payload tree, ``kind`` is a numpy
dtype string (``"<i8"``, ``"<f8"``, ``"<u8"``) with ``meta`` the tensor
shape, or ``"raw"`` with ``meta`` the byte length.  Decoding slices the
body without copying — tensors come back as read-only ``np.frombuffer``
views, which is exactly what :func:`~repro.server.protocol.boxes_from_rows`
and ``load_state_dict`` accept.

Why JSON headers instead of a fully struct-packed opcode table: the JSON
part of a hot-path frame is tiny (tens of bytes) once tensors are lifted
out, so the win of packing it further is noise next to skipping the
per-coordinate JSON number formatting — and every op, present and future,
works over both formats without a second schema.

The module also hosts :func:`serve_connection`, the pipelined in-order
reader/writer pair previously duplicated by ``SketchServer`` and
``ClusterRouter`` — both now delegate here, so format negotiation,
``frame_too_large`` handling, and per-format wire metrics exist once.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, BinaryIO, Mapping

import numpy as np

from repro.errors import (
    ConnectionLostError,
    FrameTooLargeError,
    ProtocolError,
    ReproError,
)
from repro.server import protocol

WIRE_NDJSON = "ndjson"
WIRE_BINARY = "binary"

#: Every wire format a connection can negotiate.
WIRE_FORMATS = (WIRE_NDJSON, WIRE_BINARY)

MAGIC = b"RBF1"

#: magic | u32 header length | u64 body length, all little-endian.
FRAME_PREFIX = struct.Struct("<4sIQ")
PREFIX_SIZE = FRAME_PREFIX.size

#: Reserved header key listing the lifted body sections.
BODY_KEY = "_b"

#: Tensor dtypes allowed in the body (fixed-width little-endian only, so a
#: frame means the same thing on every host).  Anything else falls back to
#: JSON lists in the header.
TENSOR_DTYPES = ("<i8", "<f8", "<u8")

#: How far past the size bound the reader will drain an oversized binary
#: frame to keep the connection framed.  Beyond this the declared length
#: is treated as hostile/corrupt and the connection is dropped instead.
_DRAIN_LIMIT_FACTOR = 4


class FramingLostError(ProtocolError):
    """The byte stream can no longer be split into frames (bad magic,
    EOF mid-frame): the connection must be dropped, not answered."""


def _check_wire(wire: str) -> str:
    if wire not in WIRE_FORMATS:
        raise ProtocolError(f"unknown wire format {wire!r}; "
                            f"expected one of {WIRE_FORMATS}")
    return wire


# -- binary codec -------------------------------------------------------------------


def encode_binary(payload: Mapping[str, Any]) -> bytes:
    """One binary frame for ``payload`` (see the module docstring)."""
    sections: list[tuple[list, Any]] = []

    def lift(value: Any, path: list) -> Any:
        if isinstance(value, np.ndarray):
            array = np.ascontiguousarray(value)
            if array.dtype.str not in TENSOR_DTYPES:
                return array.tolist()
            sections.append((path, array))
            return None
        if isinstance(value, (bytes, bytearray, memoryview)):
            sections.append((path, bytes(value)))
            return None
        if isinstance(value, Mapping):
            return {str(key): lift(item, path + [str(key)])
                    for key, item in value.items()}
        if isinstance(value, (list, tuple)):
            return [lift(item, path + [index])
                    for index, item in enumerate(value)]
        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
        return value

    tree = {str(key): lift(item, [str(key)])
            for key, item in payload.items()}
    descriptors: list[list] = []
    chunks: list[bytes] = []
    for path, value in sections:
        if isinstance(value, bytes):
            descriptors.append([path, "raw", len(value)])
            chunks.append(value)
        else:
            descriptors.append([path, value.dtype.str, list(value.shape)])
            chunks.append(value.tobytes())
    if descriptors:
        tree[BODY_KEY] = descriptors
    header = json.dumps(tree, separators=(",", ":")).encode("utf-8")
    body = b"".join(chunks)
    return FRAME_PREFIX.pack(MAGIC, len(header), len(body)) + header + body


def _graft(payload: dict, path: list, value: Any) -> None:
    """Put a decoded body section back at ``path`` in the payload tree."""
    try:
        node: Any = payload
        for key in path[:-1]:
            node = node[key if isinstance(node, dict) else int(key)]
        last = path[-1]
        node[last if isinstance(node, dict) else int(last)] = value
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise ProtocolError(
            f"binary frame body path {path!r} does not match its header"
        ) from exc


def decode_binary(header: bytes, body: bytes) -> dict:
    """Payload from a frame's header and body bytes (zero-copy tensors)."""
    payload = protocol.decode(header)
    descriptors = payload.pop(BODY_KEY, [])
    if not isinstance(descriptors, list):
        raise ProtocolError("binary frame body descriptors must be a list")
    offset = 0
    for descriptor in descriptors:
        if (not isinstance(descriptor, list) or len(descriptor) != 3
                or not isinstance(descriptor[0], list)
                or not descriptor[0]):
            raise ProtocolError(
                f"malformed binary body descriptor: {descriptor!r}")
        path, kind, meta = descriptor
        value: Any
        if kind == "raw":
            nbytes = int(meta)
            if nbytes < 0:
                raise ProtocolError("negative body section length")
            value = bytes(body[offset:offset + nbytes])
            if len(value) != nbytes:
                raise ProtocolError("binary frame body is shorter than its "
                                    "header declares")
        else:
            if kind not in TENSOR_DTYPES:
                raise ProtocolError(f"unsupported tensor dtype {kind!r}")
            try:
                shape = tuple(int(extent) for extent in meta)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(
                    f"malformed tensor shape {meta!r}") from exc
            if any(extent < 0 for extent in shape):
                raise ProtocolError(f"negative tensor shape {shape!r}")
            count = 1
            for extent in shape:
                count *= extent
            nbytes = count * np.dtype(kind).itemsize
            if offset + nbytes > len(body):
                raise ProtocolError("binary frame body is shorter than its "
                                    "header declares")
            # Read-only view straight over the receive buffer: decoding a
            # 1k-box ingest copies no coordinate bytes at all.
            value = np.frombuffer(body, dtype=kind, count=count,
                                  offset=offset).reshape(shape)
        offset += nbytes
        _graft(payload, path, value)
    if offset != len(body):
        raise ProtocolError(f"binary frame carries {len(body) - offset} "
                            "undeclared trailing body bytes")
    return payload


def encode_frame(payload: Mapping[str, Any], wire: str) -> bytes:
    """Encode ``payload`` for either wire format."""
    if wire == WIRE_BINARY:
        return encode_binary(payload)
    return protocol.encode(payload)


# -- frame readers ------------------------------------------------------------------


def _unpack_prefix(prefix: bytes, max_bytes: int) -> tuple[int, int]:
    magic, header_len, body_len = FRAME_PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise FramingLostError(
            f"bad frame magic {magic!r}; expected {MAGIC!r}")
    total = PREFIX_SIZE + header_len + body_len
    if total > max_bytes:
        raise FrameTooLargeError(
            f"binary frame of {total} bytes exceeds {max_bytes} bytes",
            recoverable=True)
    return header_len, body_len


async def read_binary_frame(reader: asyncio.StreamReader,
                            max_bytes: int) -> tuple[dict, int]:
    """One binary frame from an asyncio stream; returns (payload, nbytes).

    Raises :class:`ConnectionLostError` on EOF at a frame boundary,
    :class:`FramingLostError` when the stream cannot be re-synchronised,
    :class:`FrameTooLargeError` (after draining the oversized frame, so
    the connection stays usable) when the declared size exceeds
    ``max_bytes``, and plain :class:`ProtocolError` for frames whose
    lengths were honoured but whose content is malformed.
    """
    try:
        prefix = await reader.readexactly(PREFIX_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionLostError("connection closed") from exc
        raise FramingLostError("connection closed mid-frame prefix") from exc
    try:
        header_len, body_len = _unpack_prefix(prefix, max_bytes)
    except FrameTooLargeError as exc:
        remaining = struct.unpack_from("<I", prefix, 4)[0] \
            + struct.unpack_from("<Q", prefix, 8)[0]
        if PREFIX_SIZE + remaining > max_bytes * _DRAIN_LIMIT_FACTOR:
            raise FramingLostError(
                f"frame declares {PREFIX_SIZE + remaining} bytes, too large "
                "to drain — dropping the connection") from exc
        while remaining > 0:
            chunk = await reader.read(min(remaining, 1 << 16))
            if not chunk:
                raise FramingLostError(
                    "connection closed while draining an oversized frame"
                ) from exc
            remaining -= len(chunk)
        raise
    try:
        header = await reader.readexactly(header_len)
        body = await reader.readexactly(body_len)
    except asyncio.IncompleteReadError as exc:
        raise FramingLostError("connection closed mid-frame") from exc
    return decode_binary(header, body), PREFIX_SIZE + header_len + body_len


def _read_exact(stream: BinaryIO, count: int, *, what: str) -> bytes:
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            if not chunks and remaining == count and what == "frame prefix":
                raise ConnectionLostError("server closed the connection")
            raise ProtocolError(f"connection closed mid {what}")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_binary_frame_sync(stream: BinaryIO,
                           max_bytes: int = protocol.MAX_LINE_BYTES) -> dict:
    """Blocking mirror of :func:`read_binary_frame` for the sync client."""
    prefix = _read_exact(stream, PREFIX_SIZE, what="frame prefix")
    header_len, body_len = _unpack_prefix(prefix, max_bytes)
    header = _read_exact(stream, header_len, what="frame header")
    body = _read_exact(stream, body_len, what="frame body")
    return decode_binary(header, body)


# -- hello negotiation --------------------------------------------------------------


def hello_payload(wire: str) -> dict:
    """The client side of the handshake (always sent as NDJSON)."""
    return {"op": "hello", "wire": _check_wire(wire),
            "version": protocol.PROTOCOL_VERSION}


def hello_reply(request: Mapping, formats: tuple[str, ...]
                ) -> tuple[dict, str | None]:
    """The server side: (reply payload, format to switch to or ``None``)."""
    wire = str(request.get("wire", WIRE_NDJSON))
    if wire not in WIRE_FORMATS:
        return protocol.error_payload(
            f"unknown wire format {wire!r}; this server offers "
            f"{list(formats)}", code="bad_request", op="hello",
            request=request), None
    if wire not in formats:
        return protocol.error_payload(
            f"wire format {wire!r} is disabled on this server; offered: "
            f"{list(formats)}", code="bad_request", op="hello",
            request=request), None
    reply = protocol.ok_payload("hello", request, wire=wire,
                                formats=list(formats),
                                version=protocol.PROTOCOL_VERSION)
    return reply, wire


# -- the shared server-side connection loop -----------------------------------------


class _ConnectionState:
    """Per-connection accounting shared by the reader and writer tasks."""

    __slots__ = ("inflight", "slot_free", "in_format", "out_format", "tenant")

    def __init__(self) -> None:
        self.inflight = 0
        self.slot_free = asyncio.Event()
        self.in_format = WIRE_NDJSON
        self.out_format = WIRE_NDJSON
        # Principal the connection is bound to after an ``auth`` step: a
        # tenant id, the admin sentinel, or None (unauthenticated).
        self.tenant: str | None = None


async def serve_connection(owner, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
    """Drive one client connection for ``owner``.

    ``owner`` (a ``SketchServer`` or ``ClusterRouter``) provides
    ``metrics``, ``config.max_inflight_per_connection``,
    ``config.max_line_bytes``, ``wire_formats`` and ``_process``.

    The pipelining contract is unchanged from the pre-binary servers: a
    reader task turns frames into request tasks, a writer task writes each
    reply as soon as its request finishes, preserving submission order.
    In-flight accounting is a plain counter + wakeup event rather than a
    semaphore: the common (uncontended) path then costs no awaits.  The
    slot is freed by the WRITER once the reply has been written (not when
    the request task completes), so the cap bounds the replies queue and
    the transport buffer too — a client that sends fast but reads slowly
    stalls the writer in drain(), slots stay taken, and the reader stops
    consuming: true end-to-end backpressure.

    A ``hello`` switches the reader's format immediately and the writer's
    format *after* the hello reply is written; the in-order reply queue
    makes that race-free even for clients that pipeline binary frames
    straight behind the handshake.
    """
    metrics = owner.metrics
    max_bytes = owner.config.max_line_bytes
    max_inflight = owner.config.max_inflight_per_connection
    state = _ConnectionState()
    replies: asyncio.Queue = asyncio.Queue()
    writer_task = asyncio.create_task(
        _write_replies(metrics, replies, writer, state))
    loop = asyncio.get_running_loop()

    def done(payload: dict) -> asyncio.Future:
        future = loop.create_future()
        future.set_result(payload)
        return future

    def enqueue(payload: dict, *, switch_to: str | None = None) -> None:
        replies.put_nowait((done(payload), False, switch_to))

    try:
        while True:
            try:
                if state.in_format == WIRE_BINARY:
                    request, nbytes = await read_binary_frame(reader,
                                                              max_bytes)
                else:
                    try:
                        line = await reader.readline()
                    except ValueError as exc:
                        # NDJSON has no length prefix: once a line blows
                        # the limit the line framing is lost, so reply
                        # with the structured error and hang up.
                        raise FrameTooLargeError(
                            f"request line exceeds {max_bytes} bytes",
                            recoverable=False) from exc
                    if not line:
                        break
                    if not line.strip():
                        continue
                    nbytes = len(line)
                    request = protocol.decode(line)
            except FrameTooLargeError as exc:
                enqueue(protocol.error_payload(str(exc),
                                               code="frame_too_large"))
                if exc.recoverable:
                    continue
                break
            except ConnectionLostError:
                break
            except FramingLostError as exc:
                enqueue(protocol.error_payload_for(exc))
                break
            except ReproError as exc:
                # Malformed content inside an intact frame (bad JSON, bad
                # descriptors): answer and keep the connection.
                enqueue(protocol.error_payload_for(exc))
                continue
            except (ConnectionError, OSError):
                break
            metrics.record_wire_in(state.in_format, nbytes)
            op = request.get("op")
            metrics.record_request(str(op))
            if op == "hello":
                payload, switch_to = hello_reply(request, owner.wire_formats)
                enqueue(payload, switch_to=switch_to)
                if switch_to is not None:
                    state.in_format = switch_to
                continue
            if op == "auth":
                # Handled inline (like hello): the outcome mutates the
                # connection's principal binding, which request tasks
                # running concurrently must never race against.
                try:
                    payload, principal = owner.authenticate(request)
                except Exception as exc:
                    payload, principal = (
                        protocol.error_payload_for(exc, op="auth",
                                                   request=request), None)
                enqueue(payload)
                if principal is not None:
                    state.tenant = principal
                continue
            if op == "quit":
                enqueue(protocol.ok_payload("quit", request))
                break
            while state.inflight >= max_inflight:
                state.slot_free.clear()
                await state.slot_free.wait()
            state.inflight += 1
            task = asyncio.create_task(owner._process(request, state.tenant))
            replies.put_nowait((task, True, None))
    finally:
        replies.put_nowait(None)
        await writer_task


async def _write_replies(metrics, replies: asyncio.Queue,
                         writer: asyncio.StreamWriter,
                         state: _ConnectionState) -> None:
    """Write replies in request order as their tasks complete."""
    while True:
        entry = await replies.get()
        if entry is None:
            return
        item, counted, switch_to = entry
        try:
            try:
                payload = await item
            except Exception as exc:  # _process shouldn't leak; be safe
                payload = protocol.error_payload_for(exc)
            if not payload.get("ok"):
                metrics.record_error(payload.get("error_code", "error"))
            try:
                frame = encode_frame(payload, state.out_format)
                writer.write(frame)
                metrics.record_wire_out(state.out_format, len(frame))
                if switch_to is not None:
                    state.out_format = switch_to
                if replies.empty():
                    # Batch kernel writes: drain once per burst of ready
                    # replies instead of once per reply.
                    await writer.drain()
            except (ConnectionError, OSError):
                # The client went away mid-reply; keep consuming the
                # queue so pending request tasks still get awaited.
                pass
        finally:
            if counted:
                state.inflight -= 1
                state.slot_free.set()
