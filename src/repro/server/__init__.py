"""Async network serving layer for the sketch service.

The package puts a long-lived :class:`~repro.service.service.EstimationService`
behind an asyncio TCP server speaking newline-delimited JSON
(:mod:`repro.server.protocol`), with three load-bearing pieces:

* :class:`~repro.server.coalescer.EstimateCoalescer` — micro-batches
  concurrent ``estimate`` requests into single ``estimate_batch`` engine
  calls (bit-identical results, ~one scalar call's cost per batch),
* :class:`~repro.server.server.SketchServer` — pipelined in-order
  connections, executor-offloaded ingest, admission control with
  structured ``overloaded`` errors, and live ``reload`` hot-swaps from
  binary snapshots without dropping connections,
* :class:`~repro.server.runner.ThreadedServer` — a synchronous handle
  that drives the server on a background event-loop thread.

Connections start in NDJSON and may negotiate the length-prefixed binary
frame format of :mod:`repro.server.wire` via a ``hello`` request (raw
tensor bytes, zero-copy decode; see the README's "Wire formats" section).

The matching synchronous client lives in :mod:`repro.client`.
"""

from repro.server.coalescer import CoalescerStats, EstimateCoalescer
from repro.server.metrics import ServerMetrics
from repro.server.protocol import (
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    boxes_from_rows,
    boxes_to_rows,
    decode,
    encode,
    error_payload,
    estimate_fields,
    ok_payload,
    raise_for_response,
)
from repro.server.runner import ThreadedServer
from repro.server.server import ServerConfig, SketchServer, serve
from repro.server.wire import WIRE_BINARY, WIRE_FORMATS, WIRE_NDJSON

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "WIRE_NDJSON",
    "WIRE_BINARY",
    "WIRE_FORMATS",
    "encode",
    "decode",
    "ok_payload",
    "error_payload",
    "estimate_fields",
    "boxes_from_rows",
    "boxes_to_rows",
    "raise_for_response",
    "EstimateCoalescer",
    "CoalescerStats",
    "ServerMetrics",
    "ServerConfig",
    "SketchServer",
    "serve",
    "ThreadedServer",
]
