"""Connection authentication and per-request tenant scoping.

Shared by :class:`~repro.server.server.SketchServer` and
:class:`~repro.cluster.router.ClusterRouter` so the auth handshake, the
op gating table, and the namespace rewriting exist exactly once.

The model: a connection starts unauthenticated.  An ``{"op": "auth",
"token": ...}`` step binds it to a *principal* — a tenant id from the
registry, or the :data:`ADMIN` sentinel when the token matches the
server's configured admin token.  When the backing service has a tenant
registry attached, every request is then resolved through
:func:`resolve_scope`:

* unauthenticated connections keep only the read-only surface
  (``hello``/``auth``/``metrics``/``ping``/``quit``),
* tenant connections get the data-plane ops with every estimator name
  rewritten to ``tenant/name`` (the tenant cannot *express* a name
  outside its namespace, so isolation is structural, not checked),
* admin connections get everything unscoped — and may act *on behalf
  of* a tenant via a ``tenant`` request field, which is how a cluster
  router forwards tenant identity over its (admin-authenticated) worker
  links.  Such forwarded requests carry ``scoped: true``: their names
  are already namespaced and quota was already enforced at the edge.

Without a registry nothing changes: every op is open, exactly the
pre-tenancy behavior (the whole existing test surface runs this way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import AuthenticationError
from repro.server import protocol
from repro.tenancy import TENANT_SEP, hash_token, namespaced

#: Principal bound by the admin token.  Contains characters a tenant id
#: may not, so it can never collide with a registry entry.
ADMIN = "*admin*"

#: Ops an unauthenticated connection keeps when tenancy is enforced
#: (hello/auth/quit are handled inline by the connection loop and listed
#: here for completeness).
UNAUTH_OPS = frozenset({"hello", "auth", "metrics", "ping", "quit"})

#: Ops a tenant-bound connection may use; everything else (snapshot,
#: reload, wal, cluster_status) is server administration.
TENANT_OPS = frozenset({"ping", "register", "unregister", "ingest",
                        "estimate", "flush", "stats", "metrics", "tenant",
                        "quit"})

#: Ops whose ``name`` field addresses an estimator and gets namespaced.
NAMED_OPS = frozenset({"register", "unregister", "ingest", "estimate"})


@dataclass(frozen=True)
class Scope:
    """The resolved view of one request after gating and namespacing."""

    request: Mapping[str, Any]
    #: Effective tenant for metrics labels and fair-share queueing.
    tenant: str | None
    #: The tenant's registry record (None for admin/untenanted requests).
    record: Any
    #: True only for directly-authenticated tenant connections: quotas are
    #: enforced at the authenticating edge, not re-charged when an admin
    #: link (a router) forwards already-admitted work.
    enforce_quota: bool


def authenticate_request(registry, admin_token_hash: str | None,
                         request: Mapping) -> tuple[dict, str | None]:
    """The server side of the ``auth`` op: ``(reply, principal | None)``."""
    token = request.get("token")
    if not isinstance(token, str) or not token:
        return protocol.error_payload(
            "auth requires a non-empty token field", code="auth_failed",
            op="auth", request=request), None
    if admin_token_hash is not None and hash_token(token) == admin_token_hash:
        return protocol.ok_payload("auth", request, role="admin"), ADMIN
    if registry is None:
        return protocol.error_payload(
            "this server has no tenant registry (and the token is not the "
            "admin token)", code="auth_failed", op="auth", request=request), None
    try:
        record = registry.authenticate(token)
    except AuthenticationError as exc:
        return protocol.error_payload_for(exc, op="auth", request=request), None
    return protocol.ok_payload("auth", request, role="tenant",
                               tenant=record.tenant_id), record.tenant_id


def resolve_scope(registry, principal: str | None, request: Mapping) -> Scope:
    """Gate one request and rewrite its names into the tenant namespace.

    Raises :class:`AuthenticationError` (``auth_required`` /
    ``auth_failed``) when the principal may not issue this op.
    """
    if registry is None:
        # No registry: open server, zero behavior change.  (An admin
        # principal can exist here — a server configured with only an
        # admin token — and simply gets the same full access.)
        return Scope(request, None, None, False)
    op = str(request.get("op", ""))
    if principal is None:
        if op in UNAUTH_OPS:
            return Scope(request, None, None, False)
        raise AuthenticationError(
            f"op {op!r} requires authentication on this server "
            "(send {\"op\": \"auth\", \"token\": ...} first)",
            code="auth_required")
    if principal == ADMIN:
        tenant_id = request.get("tenant")
        # The ``tenant`` op's tenant field names the *subject* of
        # administration (possibly not yet created), never an
        # impersonation target.
        if tenant_id is None or op == "tenant":
            return Scope(request, None, None, False)
        record = registry.get(str(tenant_id))
        if record is None or record.disabled:
            raise AuthenticationError(
                f"cannot act for unknown or disabled tenant {tenant_id!r}")
        if request.get("scoped") or op not in NAMED_OPS:
            return Scope(request, record.tenant_id, record, False)
        return Scope(_scoped(request, record.tenant_id), record.tenant_id,
                     record, False)
    record = registry.get(principal)
    if record is None or record.disabled:
        raise AuthenticationError(
            f"tenant {principal!r} was disabled or removed")
    if op not in TENANT_OPS:
        raise AuthenticationError(f"op {op!r} requires admin access")
    if op in NAMED_OPS:
        return Scope(_scoped(request, principal), principal, record, True)
    return Scope(request, principal, record, True)


def _scoped(request: Mapping, tenant_id: str) -> dict:
    """A copy of the request with its estimator name namespaced."""
    scoped = dict(request)
    name = scoped.get("name")
    if isinstance(name, str) and name:
        scoped["name"] = namespaced(tenant_id, name)
    scoped["scoped"] = True
    return scoped


def unscope_reply(payload: dict, tenant: str | None) -> dict:
    """Strip the tenant prefix from a reply's echoed ``name`` field."""
    if tenant is None:
        return payload
    prefix = tenant + TENANT_SEP
    name = payload.get("name")
    if isinstance(name, str) and name.startswith(prefix):
        payload["name"] = name[len(prefix):]
    return payload


def scoped_stats(stats: dict, tenant: str) -> dict:
    """Filter a ``stats`` reply body to one tenant's namespace."""
    prefix = tenant + TENANT_SEP
    scoped = dict(stats)
    scoped["tenant"] = tenant
    estimators = stats.get("estimators")
    if isinstance(estimators, dict):
        scoped["estimators"] = {
            name[len(prefix):]: spec for name, spec in estimators.items()
            if name.startswith(prefix)}
    cached = stats.get("cached_views")
    if isinstance(cached, list):
        scoped["cached_views"] = [name[len(prefix):] for name in cached
                                  if isinstance(name, str)
                                  and name.startswith(prefix)]
    # Registry-wide and operator-facing blocks are not a tenant's business.
    for key in ("wal", "tenants"):
        scoped.pop(key, None)
    return scoped
