"""Run a :class:`SketchServer` on a dedicated event-loop thread.

The asyncio server wants to own its loop; synchronous callers (the CLI's
offline paths, tests, benchmarks, notebook users) want a handle they can
start, query for the bound port, and stop.  :class:`ThreadedServer` bridges
the two: it spins up a daemon thread running ``asyncio``, starts the
server, and exposes a thread-safe :meth:`stop`.

::

    with ThreadedServer(service) as handle:
        client = ServiceClient("127.0.0.1", handle.port)
        ...
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading

from repro.errors import ServiceError
from repro.server.server import ServerConfig, SketchServer
from repro.service.service import EstimationService


class ThreadedServer:
    """Owns one server plus the background thread driving its event loop."""

    def __init__(self, service: EstimationService, *,
                 config: ServerConfig | None = None,
                 snapshot_path: str | None = None,
                 snapshot_format: str = "auto") -> None:
        self.server = SketchServer(service, config=config,
                                   snapshot_path=snapshot_path,
                                   snapshot_format=snapshot_format)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready: concurrent.futures.Future = concurrent.futures.Future()

    # -- lifecycle ----------------------------------------------------------------

    def start(self, timeout: float = 30.0) -> "ThreadedServer":
        if self._thread is not None:
            raise ServiceError("server thread already started")
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="sketch-server-loop")
        self._thread.start()
        # Propagates a startup failure (e.g. port in use) to the caller.
        self._ready.result(timeout=timeout)
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:  # noqa: BLE001 - relayed to start()
            self._ready.set_exception(exc)
            return
        self._ready.set_result(self.server.port)
        await self._stop.wait()
        await self.server.close()

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=timeout)
        self._thread = None

    # -- conveniences -------------------------------------------------------------

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> tuple[str, int]:
        return (self.server.config.host, self.server.port)

    @property
    def service(self) -> EstimationService:
        return self.server.service

    def __enter__(self) -> "ThreadedServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
