"""The asyncio TCP sketch server.

:class:`SketchServer` puts a long-lived
:class:`~repro.service.service.EstimationService` behind the
newline-delimited JSON protocol of :mod:`repro.server.protocol`:

* ``estimate`` requests flow through the request coalescer
  (:mod:`repro.server.coalescer`) — concurrent queries for one estimator
  are answered by a single batched engine call,
* ``ingest`` / ``flush`` / ``snapshot`` run on a thread-pool executor so
  NumPy-heavy work never blocks the event loop,
* ``reload`` hot-swaps the backing service from a snapshot file (binary v2
  snapshots restore via ``np.memmap``) **without dropping connections** —
  handlers resolve :attr:`service` per request,
* per-connection pipelining with **in-order replies**: a reader task turns
  lines into request tasks, a writer task writes each reply as soon as its
  request finishes, preserving submission order; a per-connection in-flight
  cap provides backpressure (the reader simply stops reading, so TCP flow
  control pushes back on the client).

Overload degrades gracefully: when the coalescer's admission queue is
full, requests get an immediate structured ``overloaded`` error instead of
queueing without bound.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.errors import ServiceError
from repro.server import protocol, wire
from repro.server.coalescer import EstimateCoalescer
from repro.server.metrics import ServerMetrics
from repro.service.service import EstimationService


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`SketchServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the OS pick (the bound port is on the server)
    max_batch: int = 64
    max_delay: float = 0.002  # seconds a query waits for batch companions
    max_queue: int = 1024  # admission cap (queued + in-flight queries)
    max_inflight_per_connection: int = 128
    max_line_bytes: int = protocol.MAX_LINE_BYTES
    executor_workers: int = 4
    binary_wire: bool = True  # offer the binary frame format on hello

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServiceError("max_batch must be positive")
        if self.max_queue < 1:
            raise ServiceError("max_queue must be positive")
        if self.max_inflight_per_connection < 1:
            raise ServiceError("max_inflight_per_connection must be positive")


class SketchServer:
    """Serves one :class:`EstimationService` over TCP.

    Parameters
    ----------
    service:
        The backing service; replaced atomically by the ``reload`` verb.
    config:
        Network and coalescing tunables.
    snapshot_path / snapshot_format:
        Defaults for ``snapshot``/``reload`` requests that omit a path.
    """

    def __init__(self, service: EstimationService, *,
                 config: ServerConfig | None = None,
                 snapshot_path: str | None = None,
                 snapshot_format: str = "auto") -> None:
        self._service = service
        self.config = config or ServerConfig()
        self.metrics = ServerMetrics()
        self._snapshot_path = snapshot_path
        self._snapshot_format = snapshot_format
        self._executor: ThreadPoolExecutor | None = None
        self._coalescer: EstimateCoalescer | None = None
        self._tcp_server: asyncio.base_events.Server | None = None
        self._reload_lock: asyncio.Lock | None = None
        self._connections: set[asyncio.StreamWriter] = set()

    # -- lifecycle ----------------------------------------------------------------

    @property
    def service(self) -> EstimationService:
        """The *current* backing service (``reload`` swaps it)."""
        return self._service

    @property
    def coalescer(self) -> EstimateCoalescer:
        if self._coalescer is None:
            raise ServiceError("server is not started")
        return self._coalescer

    @property
    def port(self) -> int:
        """The actually-bound TCP port (useful with ``port=0``)."""
        if self._tcp_server is None:
            raise ServiceError("server is not started")
        return self._tcp_server.sockets[0].getsockname()[1]

    async def start(self) -> "SketchServer":
        cfg = self.config
        self._executor = ThreadPoolExecutor(
            max_workers=cfg.executor_workers,
            thread_name_prefix="sketch-server")
        self._coalescer = EstimateCoalescer(
            lambda: self._service, max_batch=cfg.max_batch,
            max_delay=cfg.max_delay, max_queue=cfg.max_queue,
            executor=self._executor)
        self._reload_lock = asyncio.Lock()
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, host=cfg.host, port=cfg.port,
            limit=cfg.max_line_bytes)
        return self

    async def serve_forever(self) -> None:
        if self._tcp_server is None:
            await self.start()
        assert self._tcp_server is not None
        await self._tcp_server.serve_forever()

    async def close(self) -> None:
        """Stop accepting connections and drain in-flight work.

        Established connections are closed (their readers see EOF, so
        handlers finish any requests already admitted); clients observe a
        clean disconnect instead of a dangling socket.
        """
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        for writer in list(self._connections):
            writer.close()
        while self._connections:
            await asyncio.sleep(0.01)
        if self._coalescer is not None:
            await self._coalescer.drain()
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    async def _run_blocking(self, func, *args):
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, func, *args)

    # -- connection handling ------------------------------------------------------

    @property
    def wire_formats(self) -> tuple[str, ...]:
        """Formats this server offers in the ``hello`` handshake."""
        if self.config.binary_wire:
            return wire.WIRE_FORMATS
        return (wire.WIRE_NDJSON,)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        # The pipelined in-order reader/writer pair (and the binary-frame
        # negotiation) is shared with the cluster router — see
        # repro.server.wire.serve_connection.
        self.metrics.connections_opened += 1
        self.metrics.connections_active += 1
        self._connections.add(writer)
        try:
            await wire.serve_connection(self, reader, writer)
        finally:
            self.metrics.connections_active -= 1
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- request dispatch ---------------------------------------------------------

    async def _process(self, request: dict) -> dict:
        op = str(request.get("op"))
        try:
            handler = self._HANDLERS.get(op)
            if handler is None:
                return protocol.error_payload(f"unknown op {op!r}",
                                              code="unknown_op", op=op,
                                              request=request)
            return await handler(self, request)
        except Exception as exc:
            return protocol.error_payload_for(exc, op=op, request=request)

    async def _op_ping(self, request: dict) -> dict:
        return protocol.ok_payload("ping", request,
                                   version=protocol.PROTOCOL_VERSION)

    async def _op_register(self, request: dict) -> dict:
        from repro.service.specs import EstimatorSpec

        spec = EstimatorSpec.create(
            request["family"], request["sizes"],
            int(request.get("instances", 256)),
            seed=int(request.get("seed", 0)),
            **request.get("options", {}))
        self._service.register(request["name"], spec)
        return protocol.ok_payload("register", request, name=request["name"],
                                   spec=spec.to_dict())

    async def _op_ingest(self, request: dict) -> dict:
        def apply() -> tuple[int, int]:
            service = self._service
            spec = service.spec(request["name"])
            boxes = protocol.boxes_from_rows(request["boxes"], spec.dimension)
            pending = service.ingest(request["name"], boxes,
                                     side=request.get("side", "left"),
                                     kind=request.get("kind", "insert"))
            return len(boxes), pending

        count, pending = await self._run_blocking(apply)
        return protocol.ok_payload("ingest", request, boxes=count,
                                   pending=pending)

    async def _op_estimate(self, request: dict) -> dict:
        service = self._service
        name = request["name"]
        spec = service.spec(name)
        if request.get("partial"):
            # Shard-local partial result: the merged-view estimator state.
            # Sketches are linear projections, so a cluster router can
            # reduce the partials of many workers with one vectorised
            # merge and estimate from the reduction bit-identically to a
            # single-node service over the union of the boxes.  With
            # encoding="arrays" the counters come back as numpy tensors —
            # on a binary connection they ship as raw little-endian bytes
            # instead of JSON number lists.
            arrays = request.get("encoding") == "arrays"
            state = await self._run_blocking(
                lambda: service.merged_view(name).state_dict(arrays=arrays))
            return protocol.ok_payload("estimate", request, name=name,
                                       partial=True, spec=spec.to_dict(),
                                       state=state)
        row = request.get("query")
        query = None
        if spec.info.queryable:
            if row is None:
                raise ServiceError(
                    f"family {spec.family!r} estimates need a query rectangle")
            query = protocol.boxes_from_rows([row], spec.dimension)
        elif row is not None:
            raise ServiceError(
                f"family {spec.family!r} does not take a query argument")
        start = time.perf_counter()
        result = await self.coalescer.submit(name, query)
        self.metrics.record_estimate_latency(time.perf_counter() - start)
        return protocol.ok_payload("estimate", request, name=name,
                                   **protocol.estimate_fields(result))

    async def _op_flush(self, request: dict) -> dict:
        report = await self._run_blocking(self._service.flush)
        return protocol.ok_payload("flush", request, boxes=report.boxes,
                                   batches=report.batches)

    async def _op_stats(self, request: dict) -> dict:
        # describe() takes the service lock, which an executor thread may
        # hold across heavy NumPy work (snapshot save, merge) — so this
        # read runs on the executor too, keeping the event loop responsive.
        description = await self._run_blocking(self._service.describe)
        coalescer = self.coalescer
        coalescer_stats = coalescer.stats
        description["server"] = {
            "connections_active": self.metrics.connections_active,
            "queue_depth": coalescer.queue_depth,
            "coalesce_batches": coalescer_stats.batches,
            "coalesce_factor": coalescer_stats.coalesce_factor,
            "cross_estimator_dispatches": coalescer_stats.cross_dispatches,
            "reloads": self.metrics.reloads,
            "wire": self.metrics.wire_state(),
        }
        return protocol.ok_payload("stats", request, **description)

    async def _op_metrics(self, request: dict) -> dict:
        # service.stats takes the service lock; read it off the loop (see
        # _op_stats).  The server-side counters are loop-owned and safe.
        service_stats = await self._run_blocking(lambda: self._service.stats)
        coalescer = self.coalescer
        text = self.metrics.render_text(
            service_stats=service_stats,
            coalescer_stats=coalescer.stats,
            queue_depth=coalescer.queue_depth)
        # Structured fields ride along with the text exposition so a
        # cluster router can aggregate fleet metrics without re-parsing
        # the Prometheus rendering.
        return protocol.ok_payload(
            "metrics", request, text=text,
            uptime=self.metrics.uptime,
            requests=dict(self.metrics.requests),
            errors=dict(self.metrics.errors),
            connections_active=self.metrics.connections_active,
            estimate_qps=self.metrics.estimate_qps(),
            wire=self.metrics.wire_state())

    async def _op_snapshot(self, request: dict) -> dict:
        service = self._service
        if request.get("fetch"):
            # Ship the binary v2 snapshot inline instead of writing a
            # server-side file — the replica-bootstrap path: a cluster
            # manager fetches a primary's snapshot and reloads it into a
            # fresh worker over the wire.  ``wal_seqno`` names the log
            # position the snapshot covers, so a WAL-synced follower knows
            # where its log-shipped catch-up stream starts.
            # ``data`` is raw bytes: base64 on NDJSON connections (via the
            # encoder's json_default hook), a zero-copy body section on
            # binary ones.
            data, wal_seqno = await self._run_blocking(_snapshot_bytes,
                                                       service)
            return protocol.ok_payload("snapshot", request, data=data,
                                       nbytes=len(data), wal_seqno=wal_seqno)
        path = request.get("path", self._snapshot_path)
        if not path:
            raise ServiceError(
                "snapshot needs a path (or start the server with one)")
        format = request.get("format", self._snapshot_format)
        if request.get("checkpoint"):
            # Snapshot + WAL truncation in one atomic administrative step.
            info = await self._run_blocking(
                lambda: service.checkpoint(path, format=format))
            return protocol.ok_payload("snapshot", request, checkpoint=True,
                                       **info)
        await self._run_blocking(lambda: service.save(path, format=format))
        return protocol.ok_payload("snapshot", request, path=str(path))

    async def _op_wal(self, request: dict) -> dict:
        from repro.wal.reader import records_from_tail_bytes, wal_records_since
        from repro.wal.recovery import apply_wal_record
        from repro.wal.framing import decode_payload

        service = self._service
        wal = service.wal
        if request.get("fetch"):
            # Log shipping: the framed record tail after ``since``, the
            # incremental alternative to a full snapshot fetch.  A
            # ``truncated`` reply means a checkpoint already dropped part
            # of the requested range — the caller must bootstrap from a
            # snapshot instead.
            if wal is None:
                raise ServiceError("server has no WAL attached "
                                   "(start with --wal-dir)")
            since = int(request.get("since", 0))
            wal.flush()  # segment readers only see what reached the OS
            tail = await self._run_blocking(wal_records_since, wal.directory,
                                            since)
            return protocol.ok_payload(
                "wal", request, since=tail.since, count=tail.count,
                first_seqno=tail.first_seqno, last_seqno=tail.last_seqno,
                truncated=tail.truncated, nbytes=tail.nbytes,
                data=tail.data)
        if "apply" in request:
            # Follower side of log shipping: replay a shipped tail through
            # the normal ingest path (so it lands in this server's own WAL
            # when one is attached).
            raw = protocol.payload_bytes(request["apply"])

            def apply() -> tuple[int, int, int]:
                records = records_from_tail_bytes(raw)
                boxes = 0
                for _seqno, payload in records:
                    boxes += apply_wal_record(service, decode_payload(payload))
                if records:
                    service.flush()
                return (len(records), boxes,
                        records[-1][0] if records else 0)

            count, boxes, last = await self._run_blocking(apply)
            return protocol.ok_payload("wal", request, applied_records=count,
                                       applied_boxes=boxes,
                                       source_last_seqno=last)
        return protocol.ok_payload(
            "wal", request, wal=wal.describe() if wal is not None else None)

    async def _op_reload(self, request: dict) -> dict:
        data = request.get("data")
        path = None
        if data is None:
            path = request.get("path", self._snapshot_path)
            if not path:
                raise ServiceError(
                    "reload needs a path or inline data (or start the "
                    "server with a snapshot path)")
        assert self._reload_lock is not None
        async with self._reload_lock:
            old = self._service
            wal = old.wal
            fields: dict = {}
            if data is not None:
                raw = protocol.payload_bytes(data)
                if wal is None:
                    fresh = await self._run_blocking(_service_from_bytes, raw)
                else:
                    fresh, fields = await self._run_blocking(
                        _adopt_inline_reload, self, old, raw)
                fields["source"] = "inline"
            elif wal is None:
                fresh = await self._run_blocking(EstimationService.load, path)
                fields["path"] = str(path)
            else:
                # Snapshot + replay: the reloaded state is the snapshot
                # brought forward through the local WAL tail, so a
                # hot-reload drops none of the writes logged since the
                # snapshot was taken.
                fresh, fields = await self._run_blocking(
                    _replay_path_reload, old, str(path))
            # Atomic swap: requests already queued keep their futures;
            # everything dispatched from here answers from the new state.
            self._service = fresh
        self.metrics.reloads += 1
        return protocol.ok_payload("reload", request,
                                   estimators=fresh.names(), **fields)

    _HANDLERS = {
        "ping": _op_ping,
        "register": _op_register,
        "ingest": _op_ingest,
        "estimate": _op_estimate,
        "flush": _op_flush,
        "stats": _op_stats,
        "metrics": _op_metrics,
        "snapshot": _op_snapshot,
        "save": _op_snapshot,
        "reload": _op_reload,
        "wal": _op_wal,
    }


def _snapshot_bytes(service: EstimationService) -> tuple[bytes, int]:
    """The service's binary v2 snapshot as in-memory bytes, plus the WAL
    sequence number it covers (0 when the service has no WAL attached)."""
    from repro.service.snapshot import write_binary_snapshot_state

    state = service.snapshot(arrays=True)
    fd, tmp = tempfile.mkstemp(prefix="repro-snapshot-", suffix=".sketch")
    os.close(fd)
    try:
        write_binary_snapshot_state(state, tmp)
        with open(tmp, "rb") as handle:
            return handle.read(), int(state.get("wal_seqno", 0))
    finally:
        with contextlib.suppress(OSError):
            os.unlink(tmp)


def _replay_path_reload(old: EstimationService, path: str
                        ) -> tuple[EstimationService, dict]:
    """Rebuild from a snapshot file and replay the local WAL tail.

    The old service's writer is detached and closed first; in-flight
    ingests racing the swap simply skip the (now absent) log — their
    writes live only in the outgoing service, which is being replaced.
    """
    from repro.wal.recovery import recover_service

    wal = old.wal
    directory, sync = wal.directory, wal.sync
    checkpoint_path = old.wal_checkpoint_path
    checkpoint_boxes = old.wal_checkpoint_boxes
    old.detach_wal()
    fresh, report = recover_service(
        directory, path, sync=sync, checkpoint_path=checkpoint_path,
        checkpoint_boxes=checkpoint_boxes)
    return fresh, {"path": path,
                   "replayed_records": report.replayed_records,
                   "replayed_boxes": report.replayed_boxes,
                   "wal_seqno": report.last_seqno}


def _adopt_inline_reload(server: "SketchServer", old: EstimationService,
                         raw: bytes) -> tuple[EstimationService, dict]:
    """Swap in a wire-shipped snapshot while keeping local durability.

    The shipped state starts a new local lineage: the WAL is truncated
    (its records describe the discarded state) and the snapshot is saved
    as the local recovery base with the *local* log position embedded —
    so a later crash recovers to exactly this bootstrap plus whatever the
    follower logs afterwards.
    """
    fresh = _service_from_bytes(raw)
    checkpoint_path = old.wal_checkpoint_path
    checkpoint_boxes = old.wal_checkpoint_boxes
    writer = old.detach_wal(close=False)
    writer.truncate_through(writer.last_seqno)
    fresh.attach_wal(writer, checkpoint_path=checkpoint_path,
                     checkpoint_boxes=checkpoint_boxes)
    from repro.wal.recovery import default_checkpoint_path

    base = server._snapshot_path or default_checkpoint_path(writer.directory)
    fresh.save(base, format="binary")
    return fresh, {"recovery_base": str(base),
                   "wal_seqno": writer.last_seqno}


def _service_from_bytes(raw: bytes) -> EstimationService:
    """Rebuild a service from snapshot bytes shipped over the wire."""
    fd, tmp = tempfile.mkstemp(prefix="repro-reload-", suffix=".sketch")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(raw)
        # On POSIX the mmap-restored counters outlive the unlink below;
        # elsewhere the loader reads into private memory (see
        # read_binary_snapshot_state), so removal is always safe.
        return EstimationService.load(tmp)
    finally:
        with contextlib.suppress(OSError):
            os.unlink(tmp)


async def serve(service: EstimationService, *,
                config: ServerConfig | None = None,
                snapshot_path: str | None = None,
                snapshot_format: str = "auto",
                ready=None,
                shutdown: asyncio.Event | None = None,
                install_signal_handlers: bool = False) -> None:
    """Start a server and run until cancelled (the CLI's ``--listen`` loop).

    ``ready``, when given, is a callable invoked with the started server
    (used to print the bound address and by tests to capture the port).
    ``shutdown`` is an optional event that ends the loop *gracefully*:
    stop accepting, let admitted requests finish, drain the coalescer —
    then return (so callers can flush a final snapshot).  With
    ``install_signal_handlers=True`` SIGTERM and SIGINT set that event
    instead of killing the process — the CLI's graceful-shutdown path.
    """
    server = SketchServer(service, config=config, snapshot_path=snapshot_path,
                          snapshot_format=snapshot_format)
    await server.start()
    stop = shutdown if shutdown is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: list[signal.Signals] = []
    if install_signal_handlers:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except (NotImplementedError, ValueError,
                    RuntimeError):  # pragma: no cover - non-POSIX loops
                pass
    if ready is not None:
        ready(server)
    forever = asyncio.create_task(server.serve_forever())
    waiter = asyncio.create_task(stop.wait())
    try:
        await asyncio.wait({forever, waiter},
                           return_when=asyncio.FIRST_COMPLETED)
    except asyncio.CancelledError:
        pass
    finally:
        for task in (forever, waiter):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        for signum in installed:
            with contextlib.suppress(ValueError, RuntimeError):
                loop.remove_signal_handler(signum)
        await server.close()
