"""The asyncio TCP sketch server.

:class:`SketchServer` puts a long-lived
:class:`~repro.service.service.EstimationService` behind the
newline-delimited JSON protocol of :mod:`repro.server.protocol`:

* ``estimate`` requests flow through the request coalescer
  (:mod:`repro.server.coalescer`) — concurrent queries for one estimator
  are answered by a single batched engine call,
* ``ingest`` / ``flush`` / ``snapshot`` run on a thread-pool executor so
  NumPy-heavy work never blocks the event loop,
* ``reload`` hot-swaps the backing service from a snapshot file (binary v2
  snapshots restore via ``np.memmap``) **without dropping connections** —
  handlers resolve :attr:`service` per request,
* per-connection pipelining with **in-order replies**: a reader task turns
  lines into request tasks, a writer task writes each reply as soon as its
  request finishes, preserving submission order; a per-connection in-flight
  cap provides backpressure (the reader simply stops reading, so TCP flow
  control pushes back on the client).

Overload degrades gracefully: when the coalescer's admission queue is
full, requests get an immediate structured ``overloaded`` error instead of
queueing without bound.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.errors import AuthenticationError, ReproError, ServiceError
from repro.server import auth, protocol, wire
from repro.server.coalescer import EstimateCoalescer
from repro.server.metrics import ServerMetrics
from repro.service.service import EstimationService
from repro.tenancy import TenantAdmission, TenantQuota, hash_token


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`SketchServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the OS pick (the bound port is on the server)
    max_batch: int = 64
    max_delay: float = 0.002  # seconds a query waits for batch companions
    max_queue: int = 1024  # admission cap (queued + in-flight queries)
    max_inflight_per_connection: int = 128
    max_line_bytes: int = protocol.MAX_LINE_BYTES
    executor_workers: int = 4
    binary_wire: bool = True  # offer the binary frame format on hello
    admin_token: str | None = None  # grants the unscoped administrative role

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServiceError("max_batch must be positive")
        if self.max_queue < 1:
            raise ServiceError("max_queue must be positive")
        if self.max_inflight_per_connection < 1:
            raise ServiceError("max_inflight_per_connection must be positive")


class SketchServer:
    """Serves one :class:`EstimationService` over TCP.

    Parameters
    ----------
    service:
        The backing service; replaced atomically by the ``reload`` verb.
    config:
        Network and coalescing tunables.
    snapshot_path / snapshot_format:
        Defaults for ``snapshot``/``reload`` requests that omit a path.
    """

    def __init__(self, service: EstimationService, *,
                 config: ServerConfig | None = None,
                 snapshot_path: str | None = None,
                 snapshot_format: str = "auto") -> None:
        self._service = service
        self.config = config or ServerConfig()
        self.metrics = ServerMetrics()
        self._snapshot_path = snapshot_path
        self._snapshot_format = snapshot_format
        self._executor: ThreadPoolExecutor | None = None
        self._coalescer: EstimateCoalescer | None = None
        self._tcp_server: asyncio.base_events.Server | None = None
        self._reload_lock: asyncio.Lock | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._admin_token_hash = (hash_token(self.config.admin_token)
                                  if self.config.admin_token else None)
        # Per-tenant admission state (token buckets, in-flight estimate
        # counts); entries rebuild lazily when a tenant's quota changes.
        self._admissions: dict[str, TenantAdmission] = {}

    # -- lifecycle ----------------------------------------------------------------

    @property
    def service(self) -> EstimationService:
        """The *current* backing service (``reload`` swaps it)."""
        return self._service

    @property
    def coalescer(self) -> EstimateCoalescer:
        if self._coalescer is None:
            raise ServiceError("server is not started")
        return self._coalescer

    @property
    def port(self) -> int:
        """The actually-bound TCP port (useful with ``port=0``)."""
        if self._tcp_server is None:
            raise ServiceError("server is not started")
        return self._tcp_server.sockets[0].getsockname()[1]

    async def start(self) -> "SketchServer":
        cfg = self.config
        self._executor = ThreadPoolExecutor(
            max_workers=cfg.executor_workers,
            thread_name_prefix="sketch-server")
        self._coalescer = EstimateCoalescer(
            lambda: self._service, max_batch=cfg.max_batch,
            max_delay=cfg.max_delay, max_queue=cfg.max_queue,
            executor=self._executor)
        self._reload_lock = asyncio.Lock()
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, host=cfg.host, port=cfg.port,
            limit=cfg.max_line_bytes)
        return self

    async def serve_forever(self) -> None:
        if self._tcp_server is None:
            await self.start()
        assert self._tcp_server is not None
        await self._tcp_server.serve_forever()

    async def close(self) -> None:
        """Stop accepting connections and drain in-flight work.

        Established connections are closed (their readers see EOF, so
        handlers finish any requests already admitted); clients observe a
        clean disconnect instead of a dangling socket.
        """
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        for writer in list(self._connections):
            writer.close()
        while self._connections:
            await asyncio.sleep(0.01)
        if self._coalescer is not None:
            await self._coalescer.drain()
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    async def _run_blocking(self, func, *args):
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, func, *args)

    # -- connection handling ------------------------------------------------------

    @property
    def wire_formats(self) -> tuple[str, ...]:
        """Formats this server offers in the ``hello`` handshake."""
        if self.config.binary_wire:
            return wire.WIRE_FORMATS
        return (wire.WIRE_NDJSON,)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        # The pipelined in-order reader/writer pair (and the binary-frame
        # negotiation) is shared with the cluster router — see
        # repro.server.wire.serve_connection.
        self.metrics.connections_opened += 1
        self.metrics.connections_active += 1
        self._connections.add(writer)
        try:
            await wire.serve_connection(self, reader, writer)
        finally:
            self.metrics.connections_active -= 1
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- authentication and tenant scoping ----------------------------------------

    def authenticate(self, request: dict) -> tuple[dict, str | None]:
        """Resolve an ``auth`` request: ``(reply, bound principal | None)``."""
        return auth.authenticate_request(self._service.tenants,
                                         self._admin_token_hash, request)

    def _admission(self, record) -> TenantAdmission:
        """The (lazily rebuilt) admission state for one tenant record."""
        now = asyncio.get_running_loop().time()
        entry = self._admissions.get(record.tenant_id)
        if entry is None or entry.quota != record.quota:
            entry = TenantAdmission(record.tenant_id, record.quota, now=now)
            self._admissions[record.tenant_id] = entry
        return entry

    async def _admitted(self, handler, scope: auth.Scope) -> dict:
        """Run a handler under the scope tenant's quota accounting."""
        request = dict(scope.request)
        op = str(request.get("op"))
        entry = self._admission(scope.record)
        if op == "ingest":
            boxes = request.get("boxes")
            count = len(boxes) if isinstance(boxes, (list, tuple)) else 1
            entry.admit_ingest(count, asyncio.get_running_loop().time())
            return await handler(self, request, scope)
        if op == "estimate":
            entry.acquire_estimate()
            try:
                return await handler(self, request, scope)
            finally:
                entry.release_estimate()
        return await handler(self, request, scope)

    # -- request dispatch ---------------------------------------------------------

    async def _process(self, request: dict,
                       principal: str | None = None) -> dict:
        op = str(request.get("op"))
        try:
            scope = auth.resolve_scope(self._service.tenants, principal,
                                       request)
        except ReproError as exc:
            return protocol.error_payload_for(exc, op=op, request=request)
        tenant = scope.tenant
        if tenant is not None:
            self.metrics.record_tenant_request(tenant, op)
        try:
            if op == "tenant":
                payload = await self._op_tenant(dict(scope.request), principal)
            else:
                handler = self._HANDLERS.get(op)
                if handler is None:
                    payload = protocol.error_payload(
                        f"unknown op {op!r}", code="unknown_op", op=op,
                        request=request)
                elif scope.enforce_quota:
                    payload = await self._admitted(handler, scope)
                else:
                    payload = await handler(self, dict(scope.request), scope)
        except Exception as exc:
            payload = protocol.error_payload_for(exc, op=op, request=request)
        if tenant is not None:
            if not payload.get("ok"):
                if payload.get("error_code") == "quota_exceeded":
                    self.metrics.record_quota_rejection(tenant)
                else:
                    self.metrics.record_tenant_error(tenant)
            payload = auth.unscope_reply(payload, tenant)
        return payload

    async def _op_ping(self, request: dict, scope=None) -> dict:
        return protocol.ok_payload("ping", request,
                                   version=protocol.PROTOCOL_VERSION)

    async def _op_register(self, request: dict, scope=None) -> dict:
        from repro.service.specs import EstimatorSpec

        spec = EstimatorSpec.create(
            request["family"], request["sizes"],
            int(request.get("instances", 256)),
            seed=int(request.get("seed", 0)),
            **request.get("options", {}))
        self._service.register(request["name"], spec)
        return protocol.ok_payload("register", request, name=request["name"],
                                   spec=spec.to_dict())

    async def _op_unregister(self, request: dict, scope=None) -> dict:
        self._service.unregister(request["name"])
        return protocol.ok_payload("unregister", request,
                                   name=request["name"])

    async def _op_ingest(self, request: dict, scope=None) -> dict:
        def apply() -> tuple[int, int]:
            service = self._service
            spec = service.spec(request["name"])
            boxes = protocol.boxes_from_rows(request["boxes"], spec.dimension)
            pending = service.ingest(request["name"], boxes,
                                     side=request.get("side", "left"),
                                     kind=request.get("kind", "insert"))
            return len(boxes), pending

        count, pending = await self._run_blocking(apply)
        return protocol.ok_payload("ingest", request, boxes=count,
                                   pending=pending)

    async def _op_estimate(self, request: dict, scope=None) -> dict:
        service = self._service
        name = request["name"]
        spec = service.spec(name)
        if request.get("partial"):
            # Shard-local partial result: the merged-view estimator state.
            # Sketches are linear projections, so a cluster router can
            # reduce the partials of many workers with one vectorised
            # merge and estimate from the reduction bit-identically to a
            # single-node service over the union of the boxes.  With
            # encoding="arrays" the counters come back as numpy tensors —
            # on a binary connection they ship as raw little-endian bytes
            # instead of JSON number lists.
            arrays = request.get("encoding") == "arrays"
            state = await self._run_blocking(
                lambda: service.merged_view(name).state_dict(arrays=arrays))
            return protocol.ok_payload("estimate", request, name=name,
                                       partial=True, spec=spec.to_dict(),
                                       state=state)
        row = request.get("query")
        query = None
        if spec.info.queryable:
            if row is None:
                raise ServiceError(
                    f"family {spec.family!r} estimates need a query rectangle")
            query = protocol.boxes_from_rows([row], spec.dimension)
        elif row is not None:
            raise ServiceError(
                f"family {spec.family!r} does not take a query argument")
        tenant = scope.tenant if scope is not None else None
        weight = (scope.record.quota.share
                  if scope is not None and scope.record is not None else 1)
        start = time.perf_counter()
        result = await self.coalescer.submit(name, query, tenant=tenant,
                                             weight=weight)
        elapsed = time.perf_counter() - start
        self.metrics.record_estimate_latency(elapsed)
        if tenant is not None:
            self.metrics.record_tenant_latency(tenant, elapsed)
        return protocol.ok_payload("estimate", request, name=name,
                                   **protocol.estimate_fields(result))

    async def _op_flush(self, request: dict, scope=None) -> dict:
        report = await self._run_blocking(self._service.flush)
        return protocol.ok_payload("flush", request, boxes=report.boxes,
                                   batches=report.batches)

    async def _op_stats(self, request: dict, scope=None) -> dict:
        # describe() takes the service lock, which an executor thread may
        # hold across heavy NumPy work (snapshot save, merge) — so this
        # read runs on the executor too, keeping the event loop responsive.
        description = await self._run_blocking(self._service.describe)
        coalescer = self.coalescer
        coalescer_stats = coalescer.stats
        description["server"] = {
            "connections_active": self.metrics.connections_active,
            "queue_depth": coalescer.queue_depth,
            "coalesce_batches": coalescer_stats.batches,
            "coalesce_factor": coalescer_stats.coalesce_factor,
            "cross_estimator_dispatches": coalescer_stats.cross_dispatches,
            "reloads": self.metrics.reloads,
            "wire": self.metrics.wire_state(),
        }
        if scope is not None and scope.tenant is not None:
            description = auth.scoped_stats(description, scope.tenant)
            description["tenant_metrics"] = self.metrics.tenant_state(
                scope.tenant)
        else:
            description["tenant_metrics"] = self.metrics.tenant_state()
        return protocol.ok_payload("stats", request, **description)

    async def _op_metrics(self, request: dict, scope=None) -> dict:
        # service.stats takes the service lock; read it off the loop (see
        # _op_stats).  The server-side counters are loop-owned and safe.
        def snapshot():
            service = self._service
            return (service.stats,
                    service.program_executor.stats.as_dict())

        service_stats, executor_stats = await self._run_blocking(snapshot)
        coalescer = self.coalescer
        text = self.metrics.render_text(
            service_stats=service_stats,
            coalescer_stats=coalescer.stats,
            queue_depth=coalescer.queue_depth,
            executor_stats=executor_stats)
        # Structured fields ride along with the text exposition so a
        # cluster router can aggregate fleet metrics without re-parsing
        # the Prometheus rendering.
        return protocol.ok_payload(
            "metrics", request, text=text,
            uptime=self.metrics.uptime,
            requests=dict(self.metrics.requests),
            errors=dict(self.metrics.errors),
            connections_active=self.metrics.connections_active,
            estimate_qps=self.metrics.estimate_qps(),
            wire=self.metrics.wire_state(),
            tenants=self.metrics.tenant_state(),
            delta={"delta_applies": service_stats.delta_applies,
                   "rebuilds": service_stats.rebuilds,
                   "evictions": service_stats.evictions},
            program=executor_stats)

    async def _op_snapshot(self, request: dict, scope=None) -> dict:
        service = self._service
        if request.get("fetch"):
            # Ship the binary v2 snapshot inline instead of writing a
            # server-side file — the replica-bootstrap path: a cluster
            # manager fetches a primary's snapshot and reloads it into a
            # fresh worker over the wire.  ``wal_seqno`` names the log
            # position the snapshot covers, so a WAL-synced follower knows
            # where its log-shipped catch-up stream starts.
            # ``data`` is raw bytes: base64 on NDJSON connections (via the
            # encoder's json_default hook), a zero-copy body section on
            # binary ones.
            data, wal_seqno = await self._run_blocking(_snapshot_bytes,
                                                       service)
            return protocol.ok_payload("snapshot", request, data=data,
                                       nbytes=len(data), wal_seqno=wal_seqno)
        path = request.get("path", self._snapshot_path)
        if not path:
            raise ServiceError(
                "snapshot needs a path (or start the server with one)")
        format = request.get("format", self._snapshot_format)
        if request.get("checkpoint"):
            # Snapshot + WAL truncation in one atomic administrative step.
            info = await self._run_blocking(
                lambda: service.checkpoint(path, format=format))
            return protocol.ok_payload("snapshot", request, checkpoint=True,
                                       **info)
        await self._run_blocking(lambda: service.save(path, format=format))
        return protocol.ok_payload("snapshot", request, path=str(path))

    async def _op_wal(self, request: dict, scope=None) -> dict:
        from repro.wal.reader import records_from_tail_bytes, wal_records_since
        from repro.wal.recovery import apply_wal_record
        from repro.wal.framing import decode_payload

        service = self._service
        wal = service.wal
        if request.get("fetch"):
            # Log shipping: the framed record tail after ``since``, the
            # incremental alternative to a full snapshot fetch.  A
            # ``truncated`` reply means a checkpoint already dropped part
            # of the requested range — the caller must bootstrap from a
            # snapshot instead.
            if wal is None:
                raise ServiceError("server has no WAL attached "
                                   "(start with --wal-dir)")
            since = int(request.get("since", 0))
            wal.flush()  # segment readers only see what reached the OS
            tail = await self._run_blocking(wal_records_since, wal.directory,
                                            since)
            return protocol.ok_payload(
                "wal", request, since=tail.since, count=tail.count,
                first_seqno=tail.first_seqno, last_seqno=tail.last_seqno,
                truncated=tail.truncated, nbytes=tail.nbytes,
                data=tail.data)
        if "apply" in request:
            # Follower side of log shipping: replay a shipped tail through
            # the normal ingest path (so it lands in this server's own WAL
            # when one is attached).
            raw = protocol.payload_bytes(request["apply"])

            def apply() -> tuple[int, int, int]:
                records = records_from_tail_bytes(raw)
                boxes = 0
                for _seqno, payload in records:
                    boxes += apply_wal_record(service, decode_payload(payload))
                if records:
                    service.flush()
                return (len(records), boxes,
                        records[-1][0] if records else 0)

            count, boxes, last = await self._run_blocking(apply)
            return protocol.ok_payload("wal", request, applied_records=count,
                                       applied_boxes=boxes,
                                       source_last_seqno=last)
        return protocol.ok_payload(
            "wal", request, wal=wal.describe() if wal is not None else None)

    async def _op_reload(self, request: dict, scope=None) -> dict:
        data = request.get("data")
        path = None
        if data is None:
            path = request.get("path", self._snapshot_path)
            if not path:
                raise ServiceError(
                    "reload needs a path or inline data (or start the "
                    "server with a snapshot path)")
        assert self._reload_lock is not None
        async with self._reload_lock:
            old = self._service
            wal = old.wal
            fields: dict = {}
            if data is not None:
                raw = protocol.payload_bytes(data)
                if wal is None:
                    fresh = await self._run_blocking(_service_from_bytes, raw)
                else:
                    fresh, fields = await self._run_blocking(
                        _adopt_inline_reload, self, old, raw)
                fields["source"] = "inline"
            elif wal is None:
                fresh = await self._run_blocking(EstimationService.load, path)
                fields["path"] = str(path)
            else:
                # Snapshot + replay: the reloaded state is the snapshot
                # brought forward through the local WAL tail, so a
                # hot-reload drops none of the writes logged since the
                # snapshot was taken.
                fresh, fields = await self._run_blocking(
                    _replay_path_reload, old, str(path))
            # Atomic swap: requests already queued keep their futures;
            # everything dispatched from here answers from the new state.
            self._service = fresh
        self.metrics.reloads += 1
        return protocol.ok_payload("reload", request,
                                   estimators=fresh.names(), **fields)

    # -- tenant administration ----------------------------------------------------

    def _tenant_info(self, tenant_id: str, *, include_hash: bool) -> dict:
        registry = self._service.tenants
        if registry is None:
            raise ServiceError("server has no tenant registry")
        record = registry.require(tenant_id)
        info = record.to_dict()
        if not include_hash:
            info.pop("token_hash", None)
        fields = {"tenant": record.tenant_id, "record": info,
                  "metrics": self.metrics.tenant_state(record.tenant_id)}
        entry = self._admissions.get(record.tenant_id)
        if entry is not None and entry.quota == record.quota:
            fields["admission"] = entry.describe(
                asyncio.get_running_loop().time())
        return fields

    async def _op_tenant(self, request: dict,
                         principal: str | None = None) -> dict:
        service = self._service
        action = str(request.get("action", "list"))
        if principal is not None and principal != auth.ADMIN:
            # A tenant principal may only describe itself — never another
            # tenant, and never mutate the registry.
            if action != "describe":
                raise AuthenticationError(
                    f"tenant action {action!r} requires admin access")
            target = str(request.get("tenant", principal))
            if target != principal:
                raise AuthenticationError("a tenant may only describe itself")
            return protocol.ok_payload(
                "tenant", request, action="describe",
                **self._tenant_info(principal, include_hash=False))
        if action == "create":
            quota = (TenantQuota.from_dict(request["quota"])
                     if request.get("quota") else None)
            record = service.tenant_create(str(request["tenant"]),
                                           token=str(request["token"]),
                                           quota=quota)
            return protocol.ok_payload("tenant", request, action="create",
                                       tenant=record.tenant_id,
                                       record=record.to_dict())
        if action == "list":
            registry = service.tenants
            tenants = registry.describe() if registry is not None else {}
            return protocol.ok_payload("tenant", request, action="list",
                                       tenants=tenants)
        if action == "describe":
            return protocol.ok_payload(
                "tenant", request, action="describe",
                **self._tenant_info(str(request["tenant"]),
                                    include_hash=True))
        if action in ("update", "disable", "enable"):
            kwargs: dict = {}
            if action == "update":
                if request.get("token") is not None:
                    kwargs["token"] = str(request["token"])
                if request.get("quota") is not None:
                    kwargs["quota"] = TenantQuota.from_dict(request["quota"])
                if request.get("disabled") is not None:
                    kwargs["disabled"] = bool(request["disabled"])
            else:
                kwargs["disabled"] = action == "disable"
            record = service.tenant_update(str(request["tenant"]), **kwargs)
            return protocol.ok_payload("tenant", request, action=action,
                                       tenant=record.tenant_id,
                                       record=record.to_dict())
        if action == "remove":
            record = service.tenant_remove(str(request["tenant"]))
            self._admissions.pop(record.tenant_id, None)
            return protocol.ok_payload("tenant", request, action="remove",
                                       tenant=record.tenant_id)
        raise ServiceError(f"unknown tenant action {action!r}")

    _HANDLERS = {
        "ping": _op_ping,
        "register": _op_register,
        "unregister": _op_unregister,
        "ingest": _op_ingest,
        "estimate": _op_estimate,
        "flush": _op_flush,
        "stats": _op_stats,
        "metrics": _op_metrics,
        "snapshot": _op_snapshot,
        "save": _op_snapshot,
        "reload": _op_reload,
        "wal": _op_wal,
    }


def _snapshot_bytes(service: EstimationService) -> tuple[bytes, int]:
    """The service's binary v2 snapshot as in-memory bytes, plus the WAL
    sequence number it covers (0 when the service has no WAL attached)."""
    from repro.service.snapshot import write_binary_snapshot_state

    state = service.snapshot(arrays=True)
    fd, tmp = tempfile.mkstemp(prefix="repro-snapshot-", suffix=".sketch")
    os.close(fd)
    try:
        write_binary_snapshot_state(state, tmp)
        with open(tmp, "rb") as handle:
            return handle.read(), int(state.get("wal_seqno", 0))
    finally:
        with contextlib.suppress(OSError):
            os.unlink(tmp)


def _replay_path_reload(old: EstimationService, path: str
                        ) -> tuple[EstimationService, dict]:
    """Rebuild from a snapshot file and replay the local WAL tail.

    The old service's writer is detached and closed first; in-flight
    ingests racing the swap simply skip the (now absent) log — their
    writes live only in the outgoing service, which is being replaced.
    """
    from repro.wal.recovery import recover_service

    wal = old.wal
    directory, sync = wal.directory, wal.sync
    checkpoint_path = old.wal_checkpoint_path
    checkpoint_boxes = old.wal_checkpoint_boxes
    old.detach_wal()
    fresh, report = recover_service(
        directory, path, sync=sync, checkpoint_path=checkpoint_path,
        checkpoint_boxes=checkpoint_boxes)
    return fresh, {"path": path,
                   "replayed_records": report.replayed_records,
                   "replayed_boxes": report.replayed_boxes,
                   "wal_seqno": report.last_seqno}


def _adopt_inline_reload(server: "SketchServer", old: EstimationService,
                         raw: bytes) -> tuple[EstimationService, dict]:
    """Swap in a wire-shipped snapshot while keeping local durability.

    The shipped state starts a new local lineage: the WAL is truncated
    (its records describe the discarded state) and the snapshot is saved
    as the local recovery base with the *local* log position embedded —
    so a later crash recovers to exactly this bootstrap plus whatever the
    follower logs afterwards.
    """
    fresh = _service_from_bytes(raw)
    checkpoint_path = old.wal_checkpoint_path
    checkpoint_boxes = old.wal_checkpoint_boxes
    writer = old.detach_wal(close=False)
    writer.truncate_through(writer.last_seqno)
    fresh.attach_wal(writer, checkpoint_path=checkpoint_path,
                     checkpoint_boxes=checkpoint_boxes)
    from repro.wal.recovery import default_checkpoint_path

    base = server._snapshot_path or default_checkpoint_path(writer.directory)
    fresh.save(base, format="binary")
    return fresh, {"recovery_base": str(base),
                   "wal_seqno": writer.last_seqno}


def _service_from_bytes(raw: bytes) -> EstimationService:
    """Rebuild a service from snapshot bytes shipped over the wire."""
    fd, tmp = tempfile.mkstemp(prefix="repro-reload-", suffix=".sketch")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(raw)
        # On POSIX the mmap-restored counters outlive the unlink below;
        # elsewhere the loader reads into private memory (see
        # read_binary_snapshot_state), so removal is always safe.
        return EstimationService.load(tmp)
    finally:
        with contextlib.suppress(OSError):
            os.unlink(tmp)


async def serve(service: EstimationService, *,
                config: ServerConfig | None = None,
                snapshot_path: str | None = None,
                snapshot_format: str = "auto",
                ready=None,
                shutdown: asyncio.Event | None = None,
                install_signal_handlers: bool = False) -> None:
    """Start a server and run until cancelled (the CLI's ``--listen`` loop).

    ``ready``, when given, is a callable invoked with the started server
    (used to print the bound address and by tests to capture the port).
    ``shutdown`` is an optional event that ends the loop *gracefully*:
    stop accepting, let admitted requests finish, drain the coalescer —
    then return (so callers can flush a final snapshot).  With
    ``install_signal_handlers=True`` SIGTERM and SIGINT set that event
    instead of killing the process — the CLI's graceful-shutdown path.
    """
    server = SketchServer(service, config=config, snapshot_path=snapshot_path,
                          snapshot_format=snapshot_format)
    await server.start()
    stop = shutdown if shutdown is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: list[signal.Signals] = []
    if install_signal_handlers:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except (NotImplementedError, ValueError,
                    RuntimeError):  # pragma: no cover - non-POSIX loops
                pass
    if ready is not None:
        ready(server)
    forever = asyncio.create_task(server.serve_forever())
    waiter = asyncio.create_task(stop.wait())
    try:
        await asyncio.wait({forever, waiter},
                           return_when=asyncio.FIRST_COMPLETED)
    except asyncio.CancelledError:
        pass
    finally:
        for task in (forever, waiter):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        for signum in installed:
            with contextlib.suppress(ValueError, RuntimeError):
                loop.remove_signal_handler(signum)
        await server.close()
