"""Serving-side metrics: request counters, latency quantiles, coalesce factors.

:class:`ServerMetrics` is mutated only from the event-loop thread (request
accounting happens in the connection handlers), so it needs no locking.
The ``metrics`` protocol verb renders it — together with an atomic
:class:`~repro.service.service.ServiceStats` copy and the coalescer
counters — as a Prometheus-style plain-text exposition.  Coalescing is
reported both in aggregate and per estimator (labelled
``repro_server_estimator_coalesce_factor{name=...}`` gauges), alongside
the cross-estimator dispatch count of the shared request bucket.
"""

from __future__ import annotations

import math
import time
from collections import Counter, deque

from repro.server.coalescer import CoalescerStats
from repro.service.service import ServiceStats

#: How many recent estimate latencies back the quantiles and the qps gauge.
SAMPLE_WINDOW = 4096


def quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of an ascending list (0 for an empty one)."""
    if not sorted_values:
        return 0.0
    rank = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[rank]


def label_value(value: str) -> str:
    """Escape a string for use inside a Prometheus label value."""
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


class WireCounters:
    """Frame and byte totals of one wire format on one server."""

    __slots__ = ("frames_in", "bytes_in", "frames_out", "bytes_out")

    def __init__(self) -> None:
        self.frames_in = 0
        self.bytes_in = 0
        self.frames_out = 0
        self.bytes_out = 0

    def as_dict(self) -> dict[str, int]:
        return {"frames_in": self.frames_in, "bytes_in": self.bytes_in,
                "frames_out": self.frames_out, "bytes_out": self.bytes_out}


class TenantCounters:
    """Per-tenant traffic accounting on one server (event-loop thread only)."""

    __slots__ = ("requests", "errors", "quota_rejections", "samples")

    def __init__(self, *, window: int = SAMPLE_WINDOW) -> None:
        self.requests: Counter[str] = Counter()
        self.errors = 0
        self.quota_rejections = 0
        # (monotonic completion time, latency seconds) of recent estimates.
        self.samples: deque[tuple[float, float]] = deque(maxlen=window)


class ServerMetrics:
    """Counters and latency samples of one running server."""

    def __init__(self, *, window: int = SAMPLE_WINDOW) -> None:
        self.started_at = time.monotonic()
        self.requests: Counter[str] = Counter()
        self.errors: Counter[str] = Counter()
        self.connections_opened = 0
        self.connections_active = 0
        self.reloads = 0
        # Per-format frame/byte totals ("ndjson" / "binary").
        self.wire: dict[str, WireCounters] = {}
        # (monotonic completion time, latency seconds) of recent estimates.
        self._samples: deque[tuple[float, float]] = deque(maxlen=window)
        self._window = int(window)
        # Per-tenant request/error/latency accounting ({tenant=...} labels).
        self.tenants: dict[str, TenantCounters] = {}

    # -- recording ----------------------------------------------------------------

    def record_request(self, op: str) -> None:
        self.requests[op or "unknown"] += 1

    def record_error(self, code: str) -> None:
        self.errors[code or "error"] += 1

    def record_wire_in(self, format: str, nbytes: int) -> None:
        counters = self.wire.setdefault(format, WireCounters())
        counters.frames_in += 1
        counters.bytes_in += int(nbytes)

    def record_wire_out(self, format: str, nbytes: int) -> None:
        counters = self.wire.setdefault(format, WireCounters())
        counters.frames_out += 1
        counters.bytes_out += int(nbytes)

    def wire_state(self) -> dict[str, dict[str, int]]:
        """The per-format totals as plain JSON (stats/metrics payloads)."""
        return {format: counters.as_dict()
                for format, counters in sorted(self.wire.items())}

    def record_estimate_latency(self, seconds: float) -> None:
        self._samples.append((time.monotonic(), seconds))

    # -- per-tenant recording -----------------------------------------------------

    def _tenant(self, tenant: str) -> TenantCounters:
        counters = self.tenants.get(tenant)
        if counters is None:
            counters = self.tenants[tenant] = TenantCounters(window=self._window)
        return counters

    def record_tenant_request(self, tenant: str, op: str) -> None:
        self._tenant(tenant).requests[op or "unknown"] += 1

    def record_tenant_error(self, tenant: str) -> None:
        self._tenant(tenant).errors += 1

    def record_quota_rejection(self, tenant: str) -> None:
        counters = self._tenant(tenant)
        counters.errors += 1
        counters.quota_rejections += 1

    def record_tenant_latency(self, tenant: str, seconds: float) -> None:
        self._tenant(tenant).samples.append((time.monotonic(), seconds))

    def tenant_state(self, tenant: str | None = None) -> dict:
        """Per-tenant qps/p50/p99/quota-reject block for ``stats``/``metrics``.

        With ``tenant`` given, only that tenant's block is returned (the
        scoped ``stats`` a tenant connection sees).
        """
        names = ([tenant] if tenant is not None else sorted(self.tenants))
        state: dict[str, dict] = {}
        for name in names:
            counters = self.tenants.get(name)
            if counters is None:
                counters = TenantCounters(window=1)
            ordered = sorted(latency for _, latency in counters.samples)
            state[name] = {
                "requests": sum(counters.requests.values()),
                "by_op": dict(sorted(counters.requests.items())),
                "errors": counters.errors,
                "quota_rejections": counters.quota_rejections,
                "estimate_qps": self._sample_qps(counters.samples),
                "estimate_p50_ms": quantile(ordered, 0.5) * 1000.0,
                "estimate_p99_ms": quantile(ordered, 0.99) * 1000.0,
            }
        return state

    # -- derived gauges -----------------------------------------------------------

    @property
    def uptime(self) -> float:
        return time.monotonic() - self.started_at

    def latency_quantiles(self, qs: tuple[float, ...] = (0.5, 0.99)
                          ) -> dict[float, float]:
        ordered = sorted(latency for _, latency in self._samples)
        return {q: quantile(ordered, q) for q in qs}

    def estimate_qps(self, window: float = 30.0) -> float:
        """Estimates per second over the recent window.

        The horizon is clamped to the uptime and — when the sample deque
        has wrapped — to the age of the oldest *retained* sample, so a
        busy server (more than ``maxlen`` estimates inside the window)
        reports its true rate instead of ``maxlen / window``.
        """
        return self._sample_qps(self._samples, window)

    def _sample_qps(self, samples: "deque[tuple[float, float]]",
                    window: float = 30.0) -> float:
        if not samples:
            return 0.0
        now = time.monotonic()
        horizon = min(window, max(self.uptime, 1e-9))
        if len(samples) == samples.maxlen:
            oldest_age = now - samples[0][0]
            horizon = min(horizon, max(oldest_age, 1e-9))
        recent = sum(1 for when, _ in samples if now - when <= horizon)
        return recent / horizon

    # -- rendering ----------------------------------------------------------------

    def render_text(self, *, service_stats: ServiceStats,
                    coalescer_stats: CoalescerStats,
                    queue_depth: int,
                    executor_stats: dict | None = None) -> str:
        """The plain-text exposition served by the ``metrics`` verb.

        ``executor_stats`` is a
        :meth:`~repro.core.program.ExecutorStats.as_dict` snapshot; when
        given, it is rendered as the ``repro_server_program_*`` family.
        """
        lines = ["# repro sketch server metrics",
                 f"repro_server_uptime_seconds {self.uptime:.3f}",
                 f"repro_server_connections_opened_total {self.connections_opened}",
                 f"repro_server_connections_active {self.connections_active}",
                 f"repro_server_reloads_total {self.reloads}"]
        for op in sorted(self.requests):
            lines.append(f'repro_server_requests_total{{op="{label_value(op)}"}} '
                         f"{self.requests[op]}")
        for code in sorted(self.errors):
            lines.append(f'repro_server_errors_total{{code="{label_value(code)}"}} '
                         f"{self.errors[code]}")
        # Wire-format traffic: one frames family, one bytes family, both
        # labelled by format and direction (families stay contiguous).
        for format in sorted(self.wire):
            counters = self.wire[format]
            for direction, count in (("in", counters.frames_in),
                                     ("out", counters.frames_out)):
                lines.append(
                    "repro_server_wire_frames_total"
                    f'{{format="{label_value(format)}",'
                    f'direction="{direction}"}} {count}')
        for format in sorted(self.wire):
            counters = self.wire[format]
            for direction, count in (("in", counters.bytes_in),
                                     ("out", counters.bytes_out)):
                lines.append(
                    "repro_server_wire_bytes_total"
                    f'{{format="{label_value(format)}",'
                    f'direction="{direction}"}} {count}')
        quantiles = self.latency_quantiles()
        lines.append(f"repro_server_estimate_qps {self.estimate_qps():.3f}")
        for q, seconds in sorted(quantiles.items()):
            lines.append(f'repro_server_estimate_latency_ms{{quantile="{q}"}} '
                         f"{seconds * 1000.0:.3f}")
        lines.append(f"repro_server_queue_depth {queue_depth}")
        lines.append(
            f"repro_server_coalesce_batches_total {coalescer_stats.batches}")
        lines.append("repro_server_coalesced_queries_total "
                     f"{coalescer_stats.batched_queries}")
        lines.append("repro_server_coalesce_rejected_total "
                     f"{coalescer_stats.rejected}")
        lines.append(
            f"repro_server_coalesce_factor {coalescer_stats.coalesce_factor:.3f}")
        lines.append("repro_server_coalesce_cross_estimator_dispatches_total "
                     f"{coalescer_stats.cross_dispatches}")
        # Per-estimator series use their own metric names (never the
        # aggregate ones above): Prometheus metric families must be
        # contiguous, and sharing a name would double-count on sum().
        ordered = sorted(coalescer_stats.per_estimator)
        for name in ordered:
            per = coalescer_stats.per_estimator[name]
            lines.append(
                "repro_server_estimator_coalesced_queries_total"
                f'{{name="{label_value(name)}"}} {per.queries}')
        for name in ordered:
            per = coalescer_stats.per_estimator[name]
            lines.append(
                "repro_server_estimator_coalesce_dispatches_total"
                f'{{name="{label_value(name)}"}} {per.dispatches}')
        for name in ordered:
            per = coalescer_stats.per_estimator[name]
            lines.append(
                "repro_server_estimator_coalesce_factor"
                f'{{name="{label_value(name)}"}} {per.coalesce_factor:.3f}')
        # Per-tenant families ({tenant=...} labels): again their own metric
        # names so each family is contiguous and never double-counts the
        # aggregates above.
        tenant_names = sorted(self.tenants)
        for tenant in tenant_names:
            counters = self.tenants[tenant]
            for op in sorted(counters.requests):
                lines.append(
                    "repro_server_tenant_requests_total"
                    f'{{tenant="{label_value(tenant)}",op="{label_value(op)}"}} '
                    f"{counters.requests[op]}")
        for tenant in tenant_names:
            lines.append(
                "repro_server_tenant_errors_total"
                f'{{tenant="{label_value(tenant)}"}} '
                f"{self.tenants[tenant].errors}")
        for tenant in tenant_names:
            lines.append(
                "repro_server_tenant_quota_rejected_total"
                f'{{tenant="{label_value(tenant)}"}} '
                f"{self.tenants[tenant].quota_rejections}")
        for tenant in tenant_names:
            lines.append(
                "repro_server_tenant_estimate_qps"
                f'{{tenant="{label_value(tenant)}"}} '
                f"{self._sample_qps(self.tenants[tenant].samples):.3f}")
        for tenant in tenant_names:
            ordered = sorted(latency
                             for _, latency in self.tenants[tenant].samples)
            for q in (0.5, 0.99):
                lines.append(
                    "repro_server_tenant_estimate_latency_ms"
                    f'{{tenant="{label_value(tenant)}",quantile="{q}"}} '
                    f"{quantile(ordered, q) * 1000.0:.3f}")
        for tenant in sorted(coalescer_stats.per_tenant):
            per = coalescer_stats.per_tenant[tenant]
            lines.append(
                "repro_server_tenant_coalesced_queries_total"
                f'{{tenant="{label_value(tenant)}"}} {per.queries}')
        cache_reads = service_stats.cache_hits + service_stats.cache_misses
        hit_rate = service_stats.cache_hits / cache_reads if cache_reads else 0.0
        lines.append(f"repro_service_cache_hit_rate {hit_rate:.3f}")
        lines.append(
            f"repro_service_view_evictions_total {service_stats.evictions}")
        lines.append(f"repro_service_estimates_total {service_stats.estimates}")
        lines.append(
            f"repro_service_batch_estimates_total {service_stats.batch_estimates}")
        lines.append("repro_service_coalesced_queries_total "
                     f"{service_stats.coalesced_queries}")
        lines.append(
            f"repro_service_ingested_boxes_total {service_stats.ingested_boxes}")
        # Delta propagation: every cache miss is resolved either by an
        # O(delta) apply onto the previous cached view or by a full shard
        # re-merge — the two totals below sum to the miss count.
        lines.append(
            f"repro_server_delta_applies_total {service_stats.delta_applies}")
        lines.append(
            f"repro_server_view_rebuilds_total {service_stats.rebuilds}")
        if executor_stats is not None:
            for key in sorted(executor_stats):
                lines.append(f"repro_server_program_{key} {executor_stats[key]}")
        return "\n".join(lines) + "\n"
