"""Wire protocol of the network serving layer.

The server speaks **newline-delimited JSON** over TCP: every request is one
JSON object on one line, every response is one JSON object on one line, and
responses of a connection come back **in request order** (which is what
makes client-side pipelining trivial — write *n* requests, read *n*
replies).

Requests carry an ``op`` field and op-specific arguments::

    {"op": "register", "name": ..., "family": ..., "sizes": [..],
     "instances": 256, "seed": 0, "options": {...}}
    {"op": "ingest",   "name": ..., "side": "left", "kind": "insert",
     "boxes": [[lo_1..lo_d, hi_1..hi_d], ...]}
    {"op": "estimate", "name": ..., "query": [lo_1..lo_d, hi_1..hi_d]}
    {"op": "flush"} | {"op": "stats"} | {"op": "metrics"} | {"op": "ping"}
    {"op": "snapshot", "path": ..., "format": "auto" | "binary" | "json"}
    {"op": "reload",   "path": ...}
    {"op": "quit"}

An optional ``"id"`` field is echoed back verbatim.  Successful responses
have ``"ok": true``; failures have ``"ok": false`` plus a human-readable
``"error"`` and a machine-readable ``"error_code"`` (one of
:data:`ERROR_CODES` — notably ``"overloaded"``, which clients should treat
as retryable backpressure rather than a hard failure, and ``"degraded"``,
a cluster router's structured report that some shard owners are down).

The cluster layer (:mod:`repro.cluster`) extends the same protocol —
routers speak it verbatim on both sides, so one client works against a
single server and a whole fleet:

* ``{"op": "estimate", ..., "partial": true}`` asks a worker for its
  shard-local **partial result** — the merged-view estimator state — which
  the router reduces (one vectorised counter add per worker) before the
  boosting reduction,
* ``{"op": "snapshot", "fetch": true}`` returns the binary v2 snapshot
  bytes inline (base64) instead of writing a server-side file,
* ``{"op": "reload", "data": <base64>}`` hot-loads a snapshot shipped over
  the wire — the replica-bootstrap path,
* ``{"op": "cluster_status"}`` (router only) reports fleet topology.

NDJSON is the *default and debug* wire format.  A connection may upgrade
to the length-prefixed **binary frame format** (:mod:`repro.server.wire`)
with a ``{"op": "hello", "wire": "binary"}`` handshake: the reply is still
NDJSON, everything after it is binary in both directions.  Binary frames
carry the same JSON payloads in their headers but lift numeric tensors
(box rows, partial counters) and raw byte blobs (snapshots, WAL tails)
into a zero-copy binary body, skipping both JSON number formatting and
base64.
"""

from __future__ import annotations

import base64
import json
from typing import Any, Mapping

import numpy as np

from repro.errors import (
    AuthenticationError,
    DegradedError,
    FrameTooLargeError,
    OverloadedError,
    ProtocolError,
    QuotaExceededError,
    ReproError,
    ServerError,
)
from repro.geometry.boxset import BoxSet

PROTOCOL_VERSION = 1

#: Upper bound on one request/response line (framing guard; an ingest of
#: ~100k two-dimensional boxes still fits comfortably).
MAX_LINE_BYTES = 16 * 1024 * 1024

#: Machine-readable failure categories.
ERROR_CODES = ("bad_request", "unknown_op", "overloaded", "degraded",
               "protocol", "frame_too_large", "auth_required", "auth_failed",
               "quota_exceeded", "internal", "error")

#: Operations the server understands (``save`` is an alias of ``snapshot``;
#: ``wal`` fetches or applies log-shipping tails, or describes the log;
#: ``hello`` negotiates the wire format for the rest of the connection;
#: ``auth`` binds the connection to a tenant; ``tenant`` administers the
#: tenant registry).
OPS = ("hello", "auth", "register", "unregister", "ingest", "estimate",
       "flush", "stats", "metrics", "snapshot", "save", "reload", "wal",
       "tenant", "ping", "quit")

#: Additional operations a cluster router understands on top of :data:`OPS`.
CLUSTER_OPS = ("cluster_status",)


def json_default(value: Any) -> Any:
    """JSON fallback giving binary-capable payloads an exact NDJSON form.

    Handlers produce wire-format-agnostic payloads (numpy tensors, raw
    bytes); on an NDJSON connection tensors render as the nested lists
    they always were and byte blobs as base64, so the NDJSON wire shapes
    are unchanged by the binary format's existence.
    """
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (bytes, bytearray, memoryview)):
        return pack_bytes(bytes(value))
    raise TypeError(
        f"payload value of type {type(value).__name__} is not serialisable")


def encode(payload: Mapping[str, Any]) -> bytes:
    """One protocol frame: compact JSON plus the line terminator."""
    return json.dumps(payload, separators=(",", ":"),
                      default=json_default).encode("utf-8") + b"\n"


def decode(line: bytes | str) -> dict:
    """Parse one frame; raises :class:`ProtocolError` on malformed input."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}")
    return payload


def ok_payload(op: str, request: Mapping | None = None, **fields: Any) -> dict:
    """A success response, echoing the request ``id`` when present."""
    payload: dict[str, Any] = {"ok": True, "op": op}
    if request is not None and request.get("id") is not None:
        payload["id"] = request["id"]
    payload.update(fields)
    return payload


def error_payload(message: str, *, code: str = "error", op: str | None = None,
                  request: Mapping | None = None,
                  detail: Mapping | None = None) -> dict:
    """A failure response with both human and machine readable fields.

    ``detail`` carries structured failure context (used by ``degraded``
    cluster errors to report missing workers and applied/dropped counts).
    """
    payload: dict[str, Any] = {"ok": False, "error": message,
                               "error_code": code}
    if op is not None:
        payload["op"] = op
    if detail is not None:
        payload["detail"] = dict(detail)
    if request is not None and request.get("id") is not None:
        payload["id"] = request["id"]
    return payload


def error_payload_for(exc: BaseException, *, op: str | None = None,
                      request: Mapping | None = None) -> dict:
    """Map an exception onto the wire error taxonomy."""
    if isinstance(exc, ServerError):
        code = exc.code
    elif isinstance(exc, (ReproError, KeyError, TypeError, ValueError)):
        code = "bad_request"
    else:
        code = "internal"
    message = f"{type(exc).__name__}: {exc}"
    detail = None
    if isinstance(exc, QuotaExceededError):
        detail = {"retry_after": exc.retry_after}
    return error_payload(message, code=code, op=op, request=request,
                         detail=detail)


def boxes_from_rows(rows, dimension: int | None = None) -> BoxSet:
    """Rows of ``[lo_1..lo_d, hi_1..hi_d]`` as a validated :class:`BoxSet`.

    This is the single wire decoder for box payloads — the server's ingest
    and estimate ops and the CLI's offline paths all parse through it.
    """
    array = np.asarray(rows, dtype=np.int64)
    if array.ndim != 2 or array.shape[1] % 2 or array.shape[1] == 0:
        raise ReproError("box rows must be [lo_1..lo_d, hi_1..hi_d] lists")
    d = array.shape[1] // 2
    if dimension is not None and d != dimension:
        raise ReproError(f"box rows are {d}-dimensional, expected {dimension}")
    return BoxSet(array[:, :d], array[:, d:])


def boxes_to_rows(boxes: BoxSet) -> list[list[int]]:
    """The inverse of :func:`boxes_from_rows`, for client-side encoding."""
    return np.hstack([boxes.lows, boxes.highs]).tolist()


def estimate_fields(result) -> dict:
    """The JSON projection of an :class:`~repro.core.result.EstimateResult`.

    ``json`` serialises floats via ``repr``, which round-trips IEEE
    doubles exactly — remote estimates are bit-identical to local ones.
    """
    return {
        "estimate": result.estimate,
        "selectivity": result.selectivity,
        "left_count": result.left_count,
        "right_count": result.right_count,
    }


def pack_bytes(data: bytes) -> str:
    """Binary payloads (snapshot bytes) as a JSON-safe base64 string."""
    return base64.b64encode(data).decode("ascii")


def unpack_bytes(text: str) -> bytes:
    """Inverse of :func:`pack_bytes`; raises :class:`ProtocolError`."""
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise ProtocolError(f"malformed base64 payload: {exc}") from exc


def payload_bytes(value: Any) -> bytes:
    """A binary payload field as raw bytes, whatever wire format carried it.

    Binary frames deliver byte blobs as ``bytes`` already; NDJSON delivers
    the base64 string :func:`pack_bytes` produced.  Every handler that
    accepts inline snapshot/WAL data decodes through this single helper.
    """
    if isinstance(value, (bytes, bytearray, memoryview)):
        return bytes(value)
    return unpack_bytes(str(value))


def raise_for_response(response: Mapping[str, Any]) -> dict:
    """Client-side check: return the response or raise its typed error."""
    if response.get("ok"):
        return dict(response)
    message = str(response.get("error", "unknown server error"))
    code = str(response.get("error_code", "error"))
    if code == "overloaded":
        raise OverloadedError(message)
    if code == "degraded":
        raise DegradedError(message, detail=response.get("detail"))
    if code == "protocol":
        raise ProtocolError(message)
    if code == "frame_too_large":
        raise FrameTooLargeError(message)
    if code in ("auth_required", "auth_failed"):
        raise AuthenticationError(message, code=code)
    if code == "quota_exceeded":
        detail = response.get("detail") or {}
        raise QuotaExceededError(
            message, retry_after=float(detail.get("retry_after", 0.0)))
    raise ServerError(message, code=code)
