"""Experiment scales.

The paper evaluates datasets of 30 K - 500 K objects with 36 K words of
summary memory.  Running every figure at that scale in pure Python takes
hours, so the default ("laptop") scale shrinks dataset sizes and memory
budgets while keeping every ratio that drives the qualitative behaviour
(objects per cell, summary words per object, result size vs. self-join
size).  The paper-scale parameters are retained for completeness and can be
selected via the CLI (``--scale paper``) when time permits; ``TINY_SCALE``
exists for the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentScale:
    """All tunable sizes of the figure experiments."""

    name: str
    #: Number of independent sketch runs averaged per data point.
    runs: int

    # Figures 5 and 6: synthetic 2-d joins, error vs dataset size.
    synthetic_sizes: tuple[int, ...]
    synthetic_domain: int
    synthetic_budget_words: int

    # Figures 7 and 8: 1-d guarantee / space experiments.
    guarantee_sizes: tuple[int, ...]
    guarantee_domain: int
    guarantee_epsilon: float
    guarantee_phi: float
    guarantee_max_instances: int

    # Figures 9-11: simulated real-life joins, error vs space.
    reallife_scale: float
    reallife_domain: int
    reallife_budgets: tuple[int, ...]

    # Ablations.
    ablation_size: int
    ablation_domain: int
    ablation_instances: int

    notes: str = ""


PAPER_SCALE = ExperimentScale(
    name="paper",
    runs=5,
    synthetic_sizes=(30_000, 100_000, 200_000, 350_000, 500_000),
    synthetic_domain=16_384,
    synthetic_budget_words=36_000,
    guarantee_sizes=(30_000, 100_000, 200_000, 350_000, 500_000),
    guarantee_domain=65_536,
    guarantee_epsilon=0.3,
    guarantee_phi=0.01,
    guarantee_max_instances=20_000,
    reallife_scale=1.0,
    reallife_domain=16_384,
    reallife_budgets=(2_500, 5_000, 10_000, 15_000, 20_000, 30_000, 40_000),
    ablation_size=50_000,
    ablation_domain=16_384,
    ablation_instances=2_048,
    notes="Parameters matching the paper; expect long run times in pure Python.",
)

LAPTOP_SCALE = ExperimentScale(
    name="laptop",
    runs=3,
    synthetic_sizes=(3_000, 6_000, 9_000, 12_000),
    synthetic_domain=1_024,
    synthetic_budget_words=9_000,
    guarantee_sizes=(2_000, 4_000, 8_000),
    guarantee_domain=16_384,
    guarantee_epsilon=0.3,
    guarantee_phi=0.01,
    guarantee_max_instances=2_500,
    reallife_scale=0.15,
    reallife_domain=16_384,
    reallife_budgets=(600, 1_200, 2_500, 5_000, 10_000),
    ablation_size=4_000,
    ablation_domain=4_096,
    ablation_instances=512,
    notes=(
        "Scaled-down defaults: dataset sizes and word budgets are reduced by roughly "
        "one order of magnitude relative to the paper so that every figure regenerates "
        "in a few minutes.  The synthetic domain is reduced along with the dataset "
        "sizes so that the result-size-to-self-join-size ratio (which governs SKETCH "
        "accuracy, Section 7.4) stays comparable to the paper's setting; see "
        "EXPERIMENTS.md for the full scaling discussion."
    ),
)

TINY_SCALE = ExperimentScale(
    name="tiny",
    runs=2,
    synthetic_sizes=(400, 800),
    synthetic_domain=1_024,
    synthetic_budget_words=800,
    guarantee_sizes=(400, 800),
    guarantee_domain=4_096,
    guarantee_epsilon=0.4,
    guarantee_phi=0.05,
    guarantee_max_instances=600,
    reallife_scale=0.02,
    reallife_domain=4_096,
    reallife_budgets=(300, 600, 1_200),
    ablation_size=500,
    ablation_domain=1_024,
    ablation_instances=128,
    notes="Minimal sizes used by the automated test-suite smoke tests.",
)


SCALES: dict[str, ExperimentScale] = {
    scale.name: scale for scale in (PAPER_SCALE, LAPTOP_SCALE, TINY_SCALE)
}


def get_scale(name: str) -> ExperimentScale:
    """Look up a scale by name (``paper``, ``laptop`` or ``tiny``)."""
    try:
        return SCALES[name]
    except KeyError as exc:
        raise KeyError(f"unknown scale {name!r}; choose from {sorted(SCALES)}") from exc
