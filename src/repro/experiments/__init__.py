"""Experiment harness reproducing the paper's evaluation (Section 7).

Every figure of the paper has a generator function in
:mod:`repro.experiments.figures`; the benchmarks under ``benchmarks/`` and
the command-line interface (:mod:`repro.cli`) are thin wrappers around
these functions.  :mod:`repro.experiments.config` holds the scaled-down
default parameters (and the paper-scale ones for reference), and
:mod:`repro.experiments.reporting` renders results as text tables.
"""

from repro.experiments.config import ExperimentScale, LAPTOP_SCALE, PAPER_SCALE, TINY_SCALE
from repro.experiments.harness import (
    average_sketch_error,
    histogram_errors,
    sketch_error_for_budgets,
)
from repro.experiments.metrics import relative_error
from repro.experiments.reporting import FigureResult, format_table

__all__ = [
    "ExperimentScale",
    "LAPTOP_SCALE",
    "PAPER_SCALE",
    "TINY_SCALE",
    "relative_error",
    "average_sketch_error",
    "sketch_error_for_budgets",
    "histogram_errors",
    "FigureResult",
    "format_table",
]
