"""Error metrics used by the evaluation."""

from __future__ import annotations

import numpy as np


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / truth`` (|estimate| when the truth is zero).

    This is the metric plotted on every figure of Section 7.
    """
    if truth == 0:
        return abs(float(estimate))
    return abs(float(estimate) - float(truth)) / abs(float(truth))


def mean_relative_error(estimates, truth: float) -> float:
    """Average relative error over independent runs (Section 7.1 reports these)."""
    return float(np.mean([relative_error(est, truth) for est in estimates]))


def summarize_errors(errors) -> dict[str, float]:
    """Mean / median / max of a collection of relative errors."""
    errors = np.asarray(list(errors), dtype=np.float64)
    if errors.size == 0:
        return {"mean": 0.0, "median": 0.0, "max": 0.0}
    return {
        "mean": float(errors.mean()),
        "median": float(np.median(errors)),
        "max": float(errors.max()),
    }
