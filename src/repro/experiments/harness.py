"""Reusable building blocks of the figure experiments.

The harness keeps the figure definitions in :mod:`repro.experiments.figures`
short: given two datasets and a memory budget it builds the SKETCH, GH and
EH summaries, produces their estimates and reports relative errors averaged
over independent runs.

A practical note on cost: a sketch built with ``k`` atomic-sketch instances
contains, as a prefix, a valid sketch for any smaller instance count.  The
space-sweep experiments (Figures 9-11) therefore build the sketch once per
run at the *largest* budget and evaluate smaller budgets on instance
prefixes, which cuts the running time by the number of budget points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import space
from repro.core.adaptive import choose_max_level
from repro.core.boosting import split_instances
from repro.core.domain import Domain
from repro.core.join_hyperrect import SpatialJoinEstimator
from repro.experiments.metrics import mean_relative_error, relative_error
from repro.geometry.boxset import BoxSet
from repro.histograms.euler import EulerHistogram
from repro.histograms.geometric import GeometricHistogram


@dataclass(frozen=True)
class SketchRunResult:
    """Per-run estimates of one sketch configuration."""

    estimates: tuple[float, ...]
    instances: int
    storage_words: float


def adaptive_domain(left: BoxSet, right: BoxSet, domain: Domain, *,
                    sample_size: int = 300, seed: int = 0) -> Domain:
    """The domain with the maxLevel chosen from a sample of both inputs (Section 6.5)."""
    rng = np.random.default_rng(seed)
    sample_left = left.sample(min(sample_size, len(left)), rng)
    sample_right = right.sample(min(sample_size, len(right)), rng)
    level = choose_max_level(sample_left.concat(sample_right), domain)
    return domain.with_max_level(level)


def average_sketch_error(left: BoxSet, right: BoxSet, domain: Domain, truth: float, *,
                         budget_words: float, runs: int = 3, seed: int = 0,
                         endpoint_policy: str = "transform",
                         adaptive: bool = True) -> float:
    """Mean relative error of the SKETCH estimate at a fixed word budget."""
    if adaptive:
        domain = adaptive_domain(left, right, domain, seed=seed)
    instances = space.instances_for_budget(budget_words, domain.dimension)
    estimates = []
    for run in range(runs):
        estimator = SpatialJoinEstimator(domain, instances, seed=seed + 1000 * (run + 1),
                                         endpoint_policy=endpoint_policy)
        estimator.insert_left(left)
        estimator.insert_right(right)
        estimates.append(estimator.estimate().estimate)
    return mean_relative_error(estimates, truth)


def sketch_error_for_budgets(left: BoxSet, right: BoxSet, domain: Domain, truth: float, *,
                             budgets: tuple[int, ...], runs: int = 3, seed: int = 0,
                             endpoint_policy: str = "transform",
                             adaptive: bool = True) -> dict[int, float]:
    """Mean relative error of SKETCH for several word budgets.

    The sketch is built once per run at the largest budget; smaller budgets
    reuse a prefix of its atomic-sketch instances.
    """
    if adaptive:
        domain = adaptive_domain(left, right, domain, seed=seed)
    budgets = tuple(sorted(budgets))
    instance_counts = {budget: space.instances_for_budget(budget, domain.dimension)
                       for budget in budgets}
    max_instances = max(instance_counts.values())

    per_budget_estimates: dict[int, list[float]] = {budget: [] for budget in budgets}
    for run in range(runs):
        estimator = SpatialJoinEstimator(domain, max_instances, seed=seed + 1000 * (run + 1),
                                         endpoint_policy=endpoint_policy)
        estimator.insert_left(left)
        estimator.insert_right(right)
        values = estimator.instance_values()
        for budget in budgets:
            count = instance_counts[budget]
            plan = split_instances(count)
            from repro.core.boosting import median_of_means

            estimate, _ = median_of_means(values[:count], plan)
            per_budget_estimates[budget].append(estimate)
    return {budget: mean_relative_error(estimates, truth)
            for budget, estimates in per_budget_estimates.items()}


def histogram_errors(left: BoxSet, right: BoxSet, domain: Domain, truth: float, *,
                     budget_words: float) -> dict[str, float]:
    """Relative errors of the EH and GH baselines at a word budget."""
    results: dict[str, float] = {}
    try:
        eh_level = space.euler_level_for_budget(budget_words)
        eh_left = EulerHistogram(domain, eh_level)
        eh_right = EulerHistogram(domain, eh_level)
        eh_left.insert(left)
        eh_right.insert(right)
        results["EH"] = relative_error(eh_left.estimate_join(eh_right), truth)
        results["EH_level"] = eh_level
    except Exception:  # budget too small for even a level-0 histogram
        results["EH"] = float("nan")
        results["EH_level"] = -1
    try:
        gh_level = space.geometric_level_for_budget(budget_words)
        gh_left = GeometricHistogram(domain, gh_level)
        gh_right = GeometricHistogram(domain, gh_level)
        gh_left.insert(left)
        gh_right.insert(right)
        results["GH"] = relative_error(gh_left.estimate_join(gh_right), truth)
        results["GH_level"] = gh_level
    except Exception:
        results["GH"] = float("nan")
        results["GH_level"] = -1
    return results
