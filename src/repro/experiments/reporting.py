"""Result containers and plain-text rendering of the figure reproductions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class FigureResult:
    """One reproduced figure: an identifier, the data series and free-form notes."""

    figure_id: str
    title: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: str = ""
    expected_shape: str = ""

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but the figure has {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def to_text(self) -> str:
        return format_table(self.title, self.columns, self.rows,
                            notes=self.notes, expected_shape=self.expected_shape)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()


def _format_value(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4f}" if abs(value) < 10 else f"{value:.2f}"
    return str(value)


def format_table(title: str, columns: Sequence[str], rows: Sequence[Sequence], *,
                 notes: str = "", expected_shape: str = "") -> str:
    """Render a result table as readable monospaced text."""
    header = [str(c) for c in columns]
    body = [[_format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts = [title, "-" * len(title), line(header), line(["-" * w for w in widths])]
    parts.extend(line(row) for row in body)
    if expected_shape:
        parts.append("")
        parts.append(f"expected shape: {expected_shape}")
    if notes:
        parts.append(f"notes: {notes}")
    return "\n".join(parts)
