"""Per-figure experiment definitions (Section 7 of the paper).

Every public function regenerates one figure (or one ablation study called
out in DESIGN.md) and returns a :class:`~repro.experiments.reporting.FigureResult`
whose rows are the data series the paper plots.  Absolute numbers differ
from the paper (different hardware, simulated real-life data, scaled-down
sizes) but the *shape* — which technique wins, how errors move with dataset
size and summary space — is what EXPERIMENTS.md records and what the
benchmarks assert.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import space
from repro.core.adaptive import choose_max_level
from repro.core.boosting import plan_boosting
from repro.core.domain import Domain
from repro.core.epsilon_join import EpsilonJoinEstimator
from repro.core.join_hyperrect import SpatialJoinEstimator
from repro.core.join_interval import IntervalJoinEstimator
from repro.core.range_query import RangeQueryEstimator
from repro.core.selfjoin import dataset_self_join_size
from repro.data import reallife, synthetic
from repro.engine.catalog import Catalog
from repro.engine.optimizer import Optimizer
from repro.engine.query import JoinQuery
from repro.engine.synopses import SynopsisManager
from repro.exact.epsilon_join import epsilon_join_count
from repro.exact.interval_join import interval_join_count
from repro.exact.range_query import range_query_count
from repro.exact.rectangle_join import rectangle_join_count
from repro.experiments.config import ExperimentScale, LAPTOP_SCALE
from repro.experiments.harness import (
    adaptive_domain,
    average_sketch_error,
    histogram_errors,
    sketch_error_for_budgets,
)
from repro.experiments.metrics import mean_relative_error, relative_error
from repro.experiments.reporting import FigureResult
from repro.geometry.boxset import BoxSet
from repro.geometry.rectangle import Rect


# ---------------------------------------------------------------------------
# Figures 5 and 6: relative error vs dataset size for synthetic 2-d joins.
# ---------------------------------------------------------------------------

def _synthetic_join_figure(figure_id: str, skew: float, scale: ExperimentScale,
                           seed: int) -> FigureResult:
    domain = Domain.square(scale.synthetic_domain, dimension=2)
    result = FigureResult(
        figure_id=figure_id,
        title=(f"Relative error vs dataset size (2-d join, Zipf z={skew:g}, "
               f"{scale.synthetic_budget_words} words per dataset)"),
        columns=("dataset_size", "sketch_error", "eh_error", "gh_error"),
        expected_shape=(
            "errors roughly flat in dataset size; SKETCH and GH comparable and below EH "
            "for uniform data (Figure 5); all three close together for skewed data with "
            "SKETCH marginally best (Figure 6)"
        ),
        notes=f"scale={scale.name}, {scale.runs} sketch runs per point",
    )
    for index, size in enumerate(scale.synthetic_sizes):
        rng = np.random.default_rng(seed + 17 * index)
        left = synthetic.generate_rectangles(size, domain, skew=skew, rng=rng)
        right = synthetic.generate_rectangles(size, domain, skew=skew, rng=rng)
        truth = rectangle_join_count(left, right)
        sketch_error = average_sketch_error(
            left, right, domain, truth,
            budget_words=scale.synthetic_budget_words,
            runs=scale.runs, seed=seed + index,
        )
        baseline = histogram_errors(left, right, domain, truth,
                                    budget_words=scale.synthetic_budget_words)
        result.add_row(size, sketch_error, baseline["EH"], baseline["GH"])
    return result


def figure5(scale: ExperimentScale = LAPTOP_SCALE, *, seed: int = 0) -> FigureResult:
    """Figure 5: uniform data (Zipf z = 0)."""
    return _synthetic_join_figure("figure5", 0.0, scale, seed)


def figure6(scale: ExperimentScale = LAPTOP_SCALE, *, seed: int = 0) -> FigureResult:
    """Figure 6: skewed data (Zipf z = 1)."""
    return _synthetic_join_figure("figure6", 1.0, scale, seed + 1)


# ---------------------------------------------------------------------------
# Figures 7 and 8: error guarantee and space requirement for 1-d joins.
# ---------------------------------------------------------------------------

def _guarantee_experiment(scale: ExperimentScale, seed: int):
    """Shared computation of Figures 7 and 8 (they use the same runs)."""
    rows = []
    runs = min(scale.runs, 2)
    for index, size in enumerate(scale.guarantee_sizes):
        rng = np.random.default_rng(seed + 31 * index)
        base_domain = Domain(scale.guarantee_domain)
        left = synthetic.generate_intervals(size, base_domain, rng=rng)
        right = synthetic.generate_intervals(size, base_domain, rng=rng)
        truth = interval_join_count(left, right)
        domain = adaptive_domain(left, right, base_domain, seed=seed + index)

        sj_left = dataset_self_join_size(left, domain)
        sj_right = dataset_self_join_size(right, domain)
        plan = plan_boosting(scale.guarantee_epsilon, scale.guarantee_phi,
                             0.5 * sj_left * sj_right, float(truth),
                             max_instances=scale.guarantee_max_instances)

        errors = []
        for run in range(runs):
            estimator = IntervalJoinEstimator(domain, plan.total_instances,
                                              seed=seed + 997 * (run + 1), boosting=plan)
            estimator.insert_left(left)
            estimator.insert_right(right)
            errors.append(relative_error(estimator.estimate().estimate, truth))
        words = space.sketch_words(1, plan.total_instances)
        rows.append({
            "size": size,
            "true_error": float(np.mean(errors)),
            "guaranteed": scale.guarantee_epsilon,
            "instances": plan.total_instances,
            "kwords": words / 1000.0,
            "capped": plan.total_instances >= scale.guarantee_max_instances,
        })
    return rows


def figure7(scale: ExperimentScale = LAPTOP_SCALE, *, seed: int = 0) -> FigureResult:
    """Figure 7: actual relative error vs the guaranteed bound (1-d interval join)."""
    result = FigureResult(
        figure_id="figure7",
        title=(f"Actual relative error vs guaranteed bound "
               f"(epsilon={scale.guarantee_epsilon}, phi={scale.guarantee_phi}, 1-d)"),
        columns=("dataset_size", "true_error", "guaranteed_error_bound"),
        expected_shape="the measured error stays well below the guaranteed bound for every size",
        notes="sketch sized by Theorem 1 with the exact self-join sizes and the true "
              "result as the sanity lower bound",
    )
    for row in _guarantee_experiment(scale, seed):
        result.add_row(row["size"], row["true_error"], row["guaranteed"])
    return result


def figure8(scale: ExperimentScale = LAPTOP_SCALE, *, seed: int = 0) -> FigureResult:
    """Figure 8: sketch space requirement vs dataset size for a fixed guarantee."""
    result = FigureResult(
        figure_id="figure8",
        title=(f"Sketch space requirement vs dataset size "
               f"(epsilon={scale.guarantee_epsilon}, phi={scale.guarantee_phi}, 1-d)"),
        columns=("dataset_size", "sketch_kwords", "instances", "fraction_of_dataset"),
        expected_shape="space stays roughly constant as the dataset grows, so the sketch "
                       "shrinks as a fraction of the dataset size",
        notes="words follow the accounting of repro.core.space",
    )
    for row in _guarantee_experiment(scale, seed):
        dataset_words = space.dataset_storage_words(row["size"], 1)
        result.add_row(row["size"], row["kwords"], row["instances"],
                       1000.0 * row["kwords"] / dataset_words)
    return result


# ---------------------------------------------------------------------------
# Figures 9-11: real-life (simulated) joins, error vs allocated space.
# ---------------------------------------------------------------------------

def _reallife_figure(figure_id: str, left_name: str, right_name: str,
                     scale: ExperimentScale, seed: int) -> FigureResult:
    domain = Domain.square(scale.reallife_domain, dimension=2)
    left, right, domain = reallife.load_real_life_pair(
        left_name, right_name, domain=domain, scale=scale.reallife_scale, seed=seed)
    truth = rectangle_join_count(left, right)

    result = FigureResult(
        figure_id=figure_id,
        title=(f"Relative error vs space for {left_name} join {right_name} "
               f"(simulated, scale {scale.reallife_scale:g}: "
               f"|R|={len(left)}, |S|={len(right)}, truth={truth})"),
        columns=("space_kwords", "sketch_error", "eh_error", "gh_error"),
        expected_shape=(
            "SKETCH error declines steadily with more space; EH can be good at small "
            "space but behaves unpredictably (non-monotonically) as the grid is refined; "
            "GH needs more space and is mostly slightly worse than SKETCH"
        ),
        notes=f"scale={scale.name}, {scale.runs} sketch runs per budget",
    )

    sketch_errors = sketch_error_for_budgets(
        left, right, domain, truth, budgets=scale.reallife_budgets,
        runs=scale.runs, seed=seed + 7,
    )
    for budget in scale.reallife_budgets:
        baseline = histogram_errors(left, right, domain, truth, budget_words=budget)
        result.add_row(budget / 1000.0, sketch_errors[budget],
                       baseline["EH"], baseline["GH"])
    return result


def figure9(scale: ExperimentScale = LAPTOP_SCALE, *, seed: int = 0) -> FigureResult:
    """Figure 9: LANDC join LANDO."""
    return _reallife_figure("figure9", "LANDC", "LANDO", scale, seed)


def figure10(scale: ExperimentScale = LAPTOP_SCALE, *, seed: int = 0) -> FigureResult:
    """Figure 10: LANDC join SOIL."""
    return _reallife_figure("figure10", "LANDC", "SOIL", scale, seed)


def figure11(scale: ExperimentScale = LAPTOP_SCALE, *, seed: int = 0) -> FigureResult:
    """Figure 11: LANDO join SOIL."""
    return _reallife_figure("figure11", "LANDO", "SOIL", scale, seed)


# ---------------------------------------------------------------------------
# Ablations and extensions called out in DESIGN.md.
# ---------------------------------------------------------------------------

def ablation_maxlevel(scale: ExperimentScale = LAPTOP_SCALE, *, seed: int = 0) -> FigureResult:
    """Section 6.5: the effect of the maximum dyadic level on accuracy.

    Uses a dataset of mostly short intervals, where the full dyadic sketch
    pays for coarse levels it never needs.
    """
    base_domain = Domain(scale.ablation_domain)
    rng = np.random.default_rng(seed)
    short = max(4.0, np.sqrt(scale.ablation_domain) / 4.0)
    left = synthetic.generate_intervals(scale.ablation_size, base_domain,
                                        mean_length=short, rng=rng)
    right = synthetic.generate_intervals(scale.ablation_size, base_domain,
                                         mean_length=short, rng=rng)
    truth = interval_join_count(left, right)
    sample = left.sample(min(300, len(left)), rng).concat(
        right.sample(min(300, len(right)), rng))
    chosen = choose_max_level(sample, base_domain)

    result = FigureResult(
        figure_id="ablation_maxlevel",
        title=f"maxLevel ablation (1-d join of short intervals, truth={truth})",
        columns=("max_level", "self_join_size", "mean_error", "is_adaptive_choice"),
        expected_shape="the adaptively chosen level minimises the self-join size and achieves "
                       "an error at or near the best of the swept levels; very low and very "
                       "high levels do worse",
        notes=f"{scale.runs} runs, {scale.ablation_instances} instances per run",
    )
    height = base_domain.dyadic(0).height
    candidate_levels = sorted({0, 2, chosen, min(height, chosen + 3), height})
    for level in candidate_levels:
        domain = base_domain.with_max_level(level)
        sj = dataset_self_join_size(left, domain) + dataset_self_join_size(right, domain)
        errors = []
        for run in range(scale.runs):
            estimator = IntervalJoinEstimator(domain, scale.ablation_instances,
                                              seed=seed + 71 * (run + 1))
            estimator.insert_left(left)
            estimator.insert_right(right)
            errors.append(relative_error(estimator.estimate().estimate, truth))
        result.add_row(level, sj, float(np.mean(errors)), level == chosen)
    return result


def ablation_dimensionality(scale: ExperimentScale = LAPTOP_SCALE, *,
                            seed: int = 0) -> FigureResult:
    """Section 6.1: accuracy and cost as dimensionality grows (fixed word budget)."""
    result = FigureResult(
        figure_id="ablation_dimensionality",
        title="Dimensionality ablation (fixed word budget per dataset)",
        columns=("dimension", "instances", "mean_error", "counters_per_instance"),
        expected_shape="for the same word budget the number of affordable instances shrinks "
                       "like 2^-d and the error grows with the dimensionality (the curse of "
                       "dimensionality discussed in Section 6.1)",
        notes=f"budget {scale.synthetic_budget_words} words, {scale.runs} runs",
    )
    size = max(400, scale.ablation_size // 4)
    domain_size = max(256, scale.ablation_domain // 4)
    for dimension in (1, 2, 3):
        domain = Domain.square(domain_size, dimension=dimension)
        rng = np.random.default_rng(seed + dimension)
        left = synthetic.generate_rectangles(size, domain, rng=rng)
        right = synthetic.generate_rectangles(size, domain, rng=rng)
        truth = rectangle_join_count(left, right)
        if truth == 0:
            continue
        tuned = adaptive_domain(left, right, domain, seed=seed)
        instances = space.instances_for_budget(scale.synthetic_budget_words, dimension)
        errors = []
        for run in range(scale.runs):
            estimator = SpatialJoinEstimator(tuned, instances, seed=seed + 13 * (run + 1))
            estimator.insert_left(left)
            estimator.insert_right(right)
            errors.append(relative_error(estimator.estimate().estimate, truth))
        result.add_row(dimension, instances, float(np.mean(errors)), 2 ** dimension)
    return result


def ablation_update_cost(scale: ExperimentScale = LAPTOP_SCALE, *,
                         seed: int = 0) -> FigureResult:
    """Dyadic vs standard sketches: per-update cover size and wall-clock cost."""
    result = FigureResult(
        figure_id="ablation_update_cost",
        title="Update cost: dyadic vs standard (maxLevel = 0) sketches",
        columns=("domain_size", "dyadic_ids_per_update", "standard_ids_per_update",
                 "dyadic_ms_per_object", "standard_ms_per_object"),
        expected_shape="standard-sketch update cost grows linearly with the object extent "
                       "(hence with the domain), dyadic cost only logarithmically",
        notes="one atomic-sketch instance, interval data with extent ~ sqrt(domain)",
    )
    count = min(500, scale.ablation_size)
    for exponent in (8, 10, 12):
        domain_size = 2 ** exponent
        base_domain = Domain(domain_size)
        rng = np.random.default_rng(seed + exponent)
        data = synthetic.generate_intervals(count, base_domain, rng=rng)

        measurements = {}
        for label, domain in (("dyadic", base_domain),
                              ("standard", base_domain.with_max_level(0))):
            dyadic = domain.dyadic(0)
            _, lengths = dyadic.covers(data.lows[:, 0], data.highs[:, 0])
            _, point_lengths = dyadic.point_covers(data.lows[:, 0])
            ids_per_update = float(np.mean(lengths) + 2 * np.mean(point_lengths))
            estimator = IntervalJoinEstimator(domain, 16, seed=seed,
                                              endpoint_policy="assume_distinct")
            start = time.perf_counter()
            estimator.insert_left(data)
            elapsed_ms = 1000.0 * (time.perf_counter() - start) / count
            measurements[label] = (ids_per_update, elapsed_ms)
        result.add_row(domain_size, measurements["dyadic"][0], measurements["standard"][0],
                       measurements["dyadic"][1], measurements["standard"][1])
    return result


def extension_epsilon_range(scale: ExperimentScale = LAPTOP_SCALE, *,
                            seed: int = 0) -> FigureResult:
    """Sections 6.3 / 6.4: epsilon-join and range-query estimation accuracy.

    The epsilon-join estimator restricts the dyadic levels to roughly the
    epsilon-cube size (the Section 6.5 heuristic applied to this query type)
    and uses twice the ablation instance budget: the paper's Lemma 8 variance
    bound shows this query family needs noticeably more instances per unit of
    accuracy than the plain spatial join.
    """
    instances = 2 * scale.ablation_instances
    result = FigureResult(
        figure_id="extension_epsilon_range",
        title="Epsilon-join and range-query estimators",
        columns=("query", "truth", "mean_estimate", "mean_error"),
        expected_shape="both estimators are unbiased; mean errors well under 1.0 at the "
                       "configured instance counts",
        notes=f"{scale.runs} runs, {instances} instances",
    )
    domain = Domain.square(scale.ablation_domain, dimension=2)
    rng = np.random.default_rng(seed)
    count = max(500, scale.ablation_size // 2)
    left_points = synthetic.generate_points(count, domain, rng=rng)
    right_points = synthetic.generate_points(count, domain, rng=rng)
    epsilon = max(4, scale.ablation_domain // 32)
    truth_eps = epsilon_join_count(left_points, right_points, epsilon)

    cube_level = max(1, int(np.ceil(np.log2(2 * epsilon))))
    eps_domain = domain.with_max_level(min(cube_level, domain.dyadic(0).height))
    estimates = []
    for run in range(scale.runs):
        estimator = EpsilonJoinEstimator(eps_domain, epsilon, instances,
                                         seed=seed + 29 * (run + 1))
        estimator.insert_left(left_points)
        estimator.insert_right(right_points)
        estimates.append(estimator.estimate().estimate)
    result.add_row(f"epsilon-join (eps={epsilon})", truth_eps, float(np.mean(estimates)),
                   mean_relative_error(estimates, truth_eps) if truth_eps else 0.0)

    rectangles = synthetic.generate_rectangles(max(1000, scale.ablation_size), domain,
                                               rng=rng)
    quarter = scale.ablation_domain // 4
    query = Rect.from_bounds((quarter, quarter), (3 * quarter - 1, 3 * quarter - 1))
    truth_range = range_query_count(rectangles, query)
    estimates = []
    for run in range(scale.runs):
        estimator = RangeQueryEstimator(domain.with_max_level(
            choose_max_level(rectangles.sample(min(300, len(rectangles)),
                                               np.random.default_rng(seed)), domain)),
            instances, seed=seed + 31 * (run + 1))
        estimator.insert(rectangles)
        estimates.append(estimator.estimate(query).estimate)
    result.add_row("range query (half-window)", truth_range, float(np.mean(estimates)),
                   mean_relative_error(estimates, truth_range) if truth_range else 0.0)
    return result


def extension_common_endpoints(scale: ExperimentScale = LAPTOP_SCALE, *,
                               seed: int = 0) -> FigureResult:
    """Section 5.2 / Appendix C: handling of shared endpoint coordinates."""
    result = FigureResult(
        figure_id="extension_common_endpoints",
        title="Common-endpoint handling (snapped interval data)",
        columns=("endpoint_policy", "truth", "mean_estimate", "mean_error"),
        expected_shape="'transform' and 'explicit' agree with the truth in expectation; "
                       "'assume_distinct' over-counts because shared endpoints violate "
                       "Assumption 1",
        notes=f"{scale.runs} runs, {scale.ablation_instances} instances; every coordinate "
              "snapped to a coarse grid so shared endpoints are frequent",
    )
    base_domain = Domain(scale.ablation_domain)
    rng = np.random.default_rng(seed)
    raw_left = synthetic.generate_intervals(scale.ablation_size, base_domain, rng=rng)
    raw_right = synthetic.generate_intervals(scale.ablation_size, base_domain, rng=rng)
    pitch = max(8, scale.ablation_domain // 128)

    def snap(boxes: BoxSet) -> BoxSet:
        lows = (boxes.lows // pitch) * pitch
        highs = np.maximum(((boxes.highs // pitch) + 1) * pitch - 1, lows + pitch - 1)
        highs = np.minimum(highs, scale.ablation_domain - 1)
        return BoxSet(lows, highs)

    left = snap(raw_left)
    right = snap(raw_right)
    truth = interval_join_count(left, right)
    domain = adaptive_domain(left, right, base_domain, seed=seed)

    for policy in ("transform", "explicit", "assume_distinct"):
        estimates = []
        for run in range(scale.runs):
            estimator = IntervalJoinEstimator(domain, scale.ablation_instances,
                                              seed=seed + 41 * (run + 1),
                                              endpoint_policy=policy)
            estimator.insert_left(left)
            estimator.insert_right(right)
            estimates.append(estimator.estimate().estimate)
        result.add_row(policy, truth, float(np.mean(estimates)),
                       mean_relative_error(estimates, truth))
    return result


def engine_optimizer_experiment(scale: ExperimentScale = LAPTOP_SCALE, *,
                                seed: int = 0) -> FigureResult:
    """Plan quality: sketch-driven join ordering vs the best and worst orders."""
    result = FigureResult(
        figure_id="engine_optimizer",
        title="Optimizer plan quality for a 3-way spatial join",
        columns=("plan", "estimated_cost", "actual_comparisons", "result_cardinality"),
        expected_shape="the sketch-driven plan's actual cost is close to the best "
                       "enumerated plan and clearly below the worst one",
        notes="costs in abstract comparison units; plans are left-deep orders",
    )
    domain = Domain.square(max(1024, scale.ablation_domain // 4), dimension=2)
    rng = np.random.default_rng(seed)
    catalog = Catalog(domain)
    sizes = {"parcels": max(400, scale.ablation_size // 4),
             "zones": max(200, scale.ablation_size // 8),
             "sensors": max(100, scale.ablation_size // 16)}
    skews = {"parcels": 0.0, "zones": 0.8, "sensors": 0.4}
    for name, size in sizes.items():
        boxes = synthetic.generate_rectangles(size, domain, skew=skews[name], rng=rng)
        catalog.create(name, boxes=boxes)
    synopses = SynopsisManager(domain.with_max_level(domain.dyadic(0).height // 2),
                               num_instances=min(256, scale.ablation_instances), seed=seed)
    optimizer = Optimizer(catalog, synopses)
    query = JoinQuery(relations=("parcels", "zones", "sensors"))

    chosen = optimizer.plan_join(query)
    executions = []
    import itertools as _it

    for order in _it.permutations(query.relations):
        plan = optimizer._cost_order(tuple(order))
        execution = optimizer.execute_plan(plan)
        executions.append((plan, execution))
    best = min(executions, key=lambda item: item[1].comparisons)
    worst = max(executions, key=lambda item: item[1].comparisons)
    chosen_execution = optimizer.execute_plan(chosen)

    result.add_row(" > ".join(chosen.order) + " (chosen)", chosen.estimated_cost,
                   chosen_execution.comparisons, chosen_execution.cardinality)
    result.add_row(" > ".join(best[0].order) + " (best)", best[0].estimated_cost,
                   best[1].comparisons, best[1].cardinality)
    result.add_row(" > ".join(worst[0].order) + " (worst)", worst[0].estimated_cost,
                   worst[1].comparisons, worst[1].cardinality)
    return result


#: All figure generators keyed by their public name (used by the CLI).
FIGURES = {
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "ablation_maxlevel": ablation_maxlevel,
    "ablation_dimensionality": ablation_dimensionality,
    "ablation_update_cost": ablation_update_cost,
    "extension_epsilon_range": extension_epsilon_range,
    "extension_common_endpoints": extension_common_endpoints,
    "engine_optimizer": engine_optimizer_experiment,
}
