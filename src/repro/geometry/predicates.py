"""Scalar and vectorised spatial predicates and distance functions.

The predicates implement the semantics used by the paper's counting
procedures (see the note in DESIGN.md about Definition 1 vs Figure 3):

* ``overlap``  — interiors intersect (Figure 3 cases 3-6),
* ``overlap+`` — closed boxes intersect, i.e. touching counts (Appendix B.1),
* ``contains`` — closed containment.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionalityError
from repro.geometry.boxset import BoxSet, PointSet
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rect


# -- scalar predicates -----------------------------------------------------

def interval_overlap(a: Interval, b: Interval) -> bool:
    """Strict overlap of two intervals (interiors intersect)."""
    return a.overlaps(b)


def interval_overlap_plus(a: Interval, b: Interval) -> bool:
    """Extended overlap: touching at a single coordinate counts."""
    return a.overlaps_plus(b)


def interval_contains(outer: Interval, inner: Interval) -> bool:
    """Closed containment of ``inner`` within ``outer``."""
    return outer.contains(inner)


def rect_overlap(a: Rect, b: Rect) -> bool:
    """Strict overlap of two hyper-rectangles."""
    return a.overlaps(b)


def rect_overlap_plus(a: Rect, b: Rect) -> bool:
    """Extended overlap of two hyper-rectangles."""
    return a.overlaps_plus(b)


def rect_contains(outer: Rect, inner: Rect) -> bool:
    """Closed containment of ``inner`` within ``outer``."""
    return outer.contains(inner)


# -- distances --------------------------------------------------------------

def _as_arrays(a, b) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise DimensionalityError(f"point shapes differ: {a.shape} vs {b.shape}")
    return a, b


def linf_distance(a, b) -> float:
    """L-infinity (Chebyshev) distance between two points."""
    a, b = _as_arrays(a, b)
    return float(np.max(np.abs(a - b)))


def l1_distance(a, b) -> float:
    """L1 (Manhattan) distance between two points."""
    a, b = _as_arrays(a, b)
    return float(np.sum(np.abs(a - b)))


def l2_distance(a, b) -> float:
    """Euclidean distance between two points."""
    a, b = _as_arrays(a, b)
    return float(np.sqrt(np.sum((a - b) ** 2)))


# -- vectorised predicates ---------------------------------------------------

def overlap_matrix(left: BoxSet, right: BoxSet, *, closed: bool = False) -> np.ndarray:
    """Boolean ``(|left|, |right|)`` matrix of pairwise overlap.

    Intended for small inputs (tests and oracles); the exact join
    algorithms in :mod:`repro.exact` should be used for large inputs.
    """
    if left.dimension != right.dimension:
        raise DimensionalityError("BoxSets have different dimensionality")
    ll = left.lows[:, None, :]
    lh = left.highs[:, None, :]
    rl = right.lows[None, :, :]
    rh = right.highs[None, :, :]
    if closed:
        per_dim = (ll <= rh) & (rl <= lh)
    else:
        per_dim = (ll < rh) & (rl < lh)
    return np.all(per_dim, axis=2)


def containment_matrix(outer: BoxSet, inner: BoxSet) -> np.ndarray:
    """Boolean ``(|outer|, |inner|)`` matrix of closed containment."""
    if outer.dimension != inner.dimension:
        raise DimensionalityError("BoxSets have different dimensionality")
    ol = outer.lows[:, None, :]
    oh = outer.highs[:, None, :]
    il = inner.lows[None, :, :]
    ih = inner.highs[None, :, :]
    return np.all((ol <= il) & (ih <= oh), axis=2)


def point_in_box_matrix(boxes: BoxSet, points: PointSet) -> np.ndarray:
    """Boolean ``(|boxes|, |points|)`` matrix of closed point containment."""
    if boxes.dimension != points.dimension:
        raise DimensionalityError("dimensionality mismatch between boxes and points")
    bl = boxes.lows[:, None, :]
    bh = boxes.highs[:, None, :]
    pc = points.coords[None, :, :]
    return np.all((bl <= pc) & (pc <= bh), axis=2)


def pairwise_linf_distances(a: PointSet, b: PointSet) -> np.ndarray:
    """``(|a|, |b|)`` matrix of L-infinity distances (small inputs only)."""
    if a.dimension != b.dimension:
        raise DimensionalityError("PointSets have different dimensionality")
    diff = np.abs(a.coords[:, None, :] - b.coords[None, :, :])
    return diff.max(axis=2)
