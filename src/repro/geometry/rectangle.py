"""d-dimensional hyper-rectangles as cross products of intervals.

A :class:`Rect` is the scalar-object counterpart of a row in a
:class:`repro.geometry.boxset.BoxSet`.  It mirrors Section 2.1 of the
paper: ``r = r(1) x r(2) x ... x r(d)`` with each ``r(i)`` a closed
integer range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import DimensionalityError, DomainError
from repro.geometry.interval import Interval


@dataclass(frozen=True)
class Rect:
    """A hyper-rectangle defined by one :class:`Interval` per dimension."""

    ranges: tuple[Interval, ...]

    def __post_init__(self) -> None:
        if not self.ranges:
            raise DimensionalityError("a hyper-rectangle needs at least one dimension")
        if not all(isinstance(r, Interval) for r in self.ranges):
            raise DomainError("all ranges of a Rect must be Interval instances")

    # -- constructors -------------------------------------------------

    @classmethod
    def from_bounds(cls, lows: Sequence[int], highs: Sequence[int]) -> "Rect":
        """Build a rectangle from parallel low/high coordinate sequences."""
        if len(lows) != len(highs):
            raise DimensionalityError(
                f"lows has {len(lows)} dimensions but highs has {len(highs)}"
            )
        return cls(tuple(Interval(int(lo), int(hi)) for lo, hi in zip(lows, highs)))

    @classmethod
    def from_point(cls, coords: Sequence[int]) -> "Rect":
        """A degenerate rectangle covering a single point."""
        return cls(tuple(Interval(int(c), int(c)) for c in coords))

    @classmethod
    def interval(cls, lo: int, hi: int) -> "Rect":
        """Convenience constructor for a one-dimensional rectangle."""
        return cls((Interval(lo, hi),))

    # -- basic accessors ----------------------------------------------

    @property
    def dimension(self) -> int:
        return len(self.ranges)

    @property
    def lows(self) -> tuple[int, ...]:
        return tuple(r.lo for r in self.ranges)

    @property
    def highs(self) -> tuple[int, ...]:
        return tuple(r.hi for r in self.ranges)

    @property
    def is_point(self) -> bool:
        return all(r.is_degenerate for r in self.ranges)

    def side_lengths(self) -> tuple[int, ...]:
        return tuple(r.length for r in self.ranges)

    def volume(self) -> int:
        """Number of integer lattice points covered by the rectangle."""
        result = 1
        for r in self.ranges:
            result *= r.length
        return result

    def center(self) -> tuple[float, ...]:
        return tuple((r.lo + r.hi) / 2.0 for r in self.ranges)

    # -- predicates ----------------------------------------------------

    def _check_dimension(self, other: "Rect") -> None:
        if self.dimension != other.dimension:
            raise DimensionalityError(
                f"cannot compare a {self.dimension}-d rectangle with a {other.dimension}-d one"
            )

    def overlaps(self, other: "Rect") -> bool:
        """Strict overlap: the interiors intersect in every dimension."""
        self._check_dimension(other)
        return all(a.overlaps(b) for a, b in zip(self.ranges, other.ranges))

    def overlaps_plus(self, other: "Rect") -> bool:
        """Extended overlap (Appendix B.1): boundary contact counts."""
        self._check_dimension(other)
        return all(a.overlaps_plus(b) for a, b in zip(self.ranges, other.ranges))

    def contains(self, other: "Rect") -> bool:
        """Closed containment of ``other`` within this rectangle."""
        self._check_dimension(other)
        return all(a.contains(b) for a, b in zip(self.ranges, other.ranges))

    def contains_point(self, coords: Sequence[int]) -> bool:
        if len(coords) != self.dimension:
            raise DimensionalityError(
                f"point has {len(coords)} coordinates but rectangle is {self.dimension}-d"
            )
        return all(r.contains_point(int(c)) for r, c in zip(self.ranges, coords))

    def intersection(self, other: "Rect") -> "Rect | None":
        """The common hyper-rectangle, or ``None`` if the two are disjoint."""
        self._check_dimension(other)
        pieces = []
        for a, b in zip(self.ranges, other.ranges):
            piece = a.intersection(b)
            if piece is None:
                return None
            pieces.append(piece)
        return Rect(tuple(pieces))

    # -- transformations ------------------------------------------------

    def expanded(self, radius: int) -> "Rect":
        """Minkowski-grow every range by ``radius`` (epsilon-join helper)."""
        return Rect(tuple(r.expanded(radius) for r in self.ranges))

    def clipped(self, lows: Sequence[int], highs: Sequence[int]) -> "Rect | None":
        """Clip the rectangle to the box ``[lows, highs]``."""
        return self.intersection(Rect.from_bounds(lows, highs))

    def translated(self, offsets: Sequence[int]) -> "Rect":
        if len(offsets) != self.dimension:
            raise DimensionalityError("offset dimensionality mismatch")
        return Rect(tuple(r.shifted(int(o)) for r, o in zip(self.ranges, offsets)))

    def corners(self) -> Iterable[tuple[int, ...]]:
        """All 2^d corner points of the rectangle."""
        def rec(index: int, prefix: tuple[int, ...]):
            if index == self.dimension:
                yield prefix
                return
            rng = self.ranges[index]
            yield from rec(index + 1, prefix + (rng.lo,))
            if rng.hi != rng.lo:
                yield from rec(index + 1, prefix + (rng.hi,))

        yield from rec(0, ())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return " x ".join(str(r) for r in self.ranges)
