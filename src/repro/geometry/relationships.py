"""Spatial relationship classification (Figure 3 / Figure 4 of the paper).

Section 4.1.1 enumerates six possible relationships between an interval
``r`` from the left input and an interval ``s`` from the right input:

1. ``DISJOINT``   — no common coordinate,
2. ``MEET``       — exactly one common boundary coordinate, no interior overlap,
3. ``OVERLAP``    — interiors intersect but neither contains the other,
4. ``CONTAIN``    — one strictly contains the other (no shared endpoints),
5. ``CONTAIN_MEET`` — containment with at least one shared endpoint,
6. ``IDENTICAL``  — equal intervals.

For d dimensions the relationship of two hyper-rectangles is the d-tuple of
the per-dimension relationships of their projections (Section 4.2).
"""

from __future__ import annotations

from enum import IntEnum

from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rect
from repro.errors import DimensionalityError


class IntervalRelationship(IntEnum):
    """The six interval relationships of Figure 3."""

    DISJOINT = 1
    MEET = 2
    OVERLAP = 3
    CONTAIN = 4
    CONTAIN_MEET = 5
    IDENTICAL = 6

    @property
    def is_overlapping(self) -> bool:
        """True for the relationships the spatial join counts (cases 3-6)."""
        return self in (
            IntervalRelationship.OVERLAP,
            IntervalRelationship.CONTAIN,
            IntervalRelationship.CONTAIN_MEET,
            IntervalRelationship.IDENTICAL,
        )

    @property
    def is_overlapping_plus(self) -> bool:
        """True for the relationships the extended join counts (cases 2-6)."""
        return self != IntervalRelationship.DISJOINT


def classify_intervals(r: Interval, s: Interval) -> IntervalRelationship:
    """Classify the relationship between intervals ``r`` and ``s``.

    The classification is symmetric: swapping the arguments yields the same
    relationship (the paper's Figure 3 omits mirror cases for this reason).
    """
    if r == s:
        return IntervalRelationship.IDENTICAL

    shared_endpoint = r.lo in (s.lo, s.hi) or r.hi in (s.lo, s.hi)

    if not r.overlaps(s):
        if r.overlaps_plus(s):
            return IntervalRelationship.MEET
        return IntervalRelationship.DISJOINT

    r_contains_s = r.contains(s)
    s_contains_r = s.contains(r)
    if r_contains_s or s_contains_r:
        if shared_endpoint:
            return IntervalRelationship.CONTAIN_MEET
        return IntervalRelationship.CONTAIN
    return IntervalRelationship.OVERLAP


def classify_rects(r: Rect, s: Rect) -> tuple[IntervalRelationship, ...]:
    """The per-dimension relationship tuple of two hyper-rectangles."""
    if r.dimension != s.dimension:
        raise DimensionalityError("rectangles have different dimensionality")
    return tuple(classify_intervals(a, b) for a, b in zip(r.ranges, s.ranges))


def rects_overlap_from_relationship(relationship: tuple[IntervalRelationship, ...]) -> bool:
    """True if the relationship tuple corresponds to an overlapping pair."""
    return all(rel.is_overlapping for rel in relationship)


def rects_overlap_plus_from_relationship(relationship: tuple[IntervalRelationship, ...]) -> bool:
    """True if the relationship tuple corresponds to an extended-overlap pair."""
    return all(rel.is_overlapping_plus for rel in relationship)
