"""Array-backed collections of hyper-rectangles and points.

Sketch construction, exact join counting, histograms and workload
generators all operate on :class:`BoxSet` (a set of axis-aligned boxes
stored as two ``(n, d)`` integer arrays) or :class:`PointSet`.  Keeping
the data in NumPy arrays is what makes sketch construction with hundreds
of independent atomic-sketch instances feasible in pure Python.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import DimensionalityError, DomainError
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rect


class BoxSet:
    """An immutable collection of ``n`` axis-aligned boxes in ``d`` dimensions.

    Coordinates are stored as ``int64``; ``lows[i, k] <= highs[i, k]`` holds
    for every box ``i`` and dimension ``k``.
    """

    __slots__ = ("_lows", "_highs")

    def __init__(self, lows: np.ndarray, highs: np.ndarray, *, validate: bool = True) -> None:
        lows = np.atleast_2d(np.asarray(lows, dtype=np.int64))
        highs = np.atleast_2d(np.asarray(highs, dtype=np.int64))
        if lows.shape != highs.shape:
            raise DimensionalityError(
                f"lows shape {lows.shape} does not match highs shape {highs.shape}"
            )
        if lows.ndim != 2:
            raise DimensionalityError("BoxSet expects 2-d arrays of shape (n, d)")
        if validate and lows.size and np.any(lows > highs):
            bad = int(np.argmax(np.any(lows > highs, axis=1)))
            raise DomainError(f"box {bad} has a lower endpoint above its upper endpoint")
        self._lows = lows
        self._highs = highs
        self._lows.setflags(write=False)
        self._highs.setflags(write=False)

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_rects(cls, rects: Iterable[Rect]) -> "BoxSet":
        rects = list(rects)
        if not rects:
            raise DomainError("cannot build a BoxSet from an empty rectangle list")
        dim = rects[0].dimension
        if any(r.dimension != dim for r in rects):
            raise DimensionalityError("all rectangles must have the same dimensionality")
        lows = np.array([r.lows for r in rects], dtype=np.int64)
        highs = np.array([r.highs for r in rects], dtype=np.int64)
        return cls(lows, highs)

    @classmethod
    def from_intervals(cls, intervals: Iterable[tuple[int, int] | Interval]) -> "BoxSet":
        """Build a 1-d BoxSet from ``(lo, hi)`` pairs or Interval objects."""
        pairs = [(iv.lo, iv.hi) if isinstance(iv, Interval) else (int(iv[0]), int(iv[1]))
                 for iv in intervals]
        if not pairs:
            raise DomainError("cannot build a BoxSet from an empty interval list")
        arr = np.array(pairs, dtype=np.int64)
        return cls(arr[:, :1], arr[:, 1:])

    @classmethod
    def empty(cls, dimension: int) -> "BoxSet":
        """An empty box set of the given dimensionality."""
        if dimension < 1:
            raise DimensionalityError("dimension must be at least 1")
        zero = np.zeros((0, dimension), dtype=np.int64)
        return cls(zero, zero.copy())

    # -- accessors --------------------------------------------------------

    @property
    def lows(self) -> np.ndarray:
        return self._lows

    @property
    def highs(self) -> np.ndarray:
        return self._highs

    @property
    def dimension(self) -> int:
        return self._lows.shape[1]

    def __len__(self) -> int:
        return self._lows.shape[0]

    def __iter__(self) -> Iterator[Rect]:
        for i in range(len(self)):
            yield self.rect(i)

    def rect(self, index: int) -> Rect:
        """The ``index``-th box as a :class:`Rect`."""
        return Rect.from_bounds(self._lows[index], self._highs[index])

    def __getitem__(self, index) -> "BoxSet":
        """Row-subset the collection (always returns a BoxSet)."""
        lows = self._lows[index]
        highs = self._highs[index]
        if lows.ndim == 1:
            lows = lows[None, :]
            highs = highs[None, :]
        return BoxSet(lows, highs, validate=False)

    def side_lengths(self) -> np.ndarray:
        """``(n, d)`` array of interval lengths (number of coordinates)."""
        return self._highs - self._lows + 1

    def bounding_box(self) -> Rect:
        if len(self) == 0:
            raise DomainError("an empty BoxSet has no bounding box")
        return Rect.from_bounds(self._lows.min(axis=0), self._highs.max(axis=0))

    def max_coordinate(self) -> int:
        """Largest coordinate used in any dimension (0 for an empty set)."""
        if len(self) == 0:
            return 0
        return int(self._highs.max())

    def min_coordinate(self) -> int:
        if len(self) == 0:
            return 0
        return int(self._lows.min())

    # -- transformations ---------------------------------------------------

    def concat(self, other: "BoxSet") -> "BoxSet":
        if other.dimension != self.dimension:
            raise DimensionalityError("cannot concatenate BoxSets of different dimensionality")
        return BoxSet(
            np.concatenate([self._lows, other._lows]),
            np.concatenate([self._highs, other._highs]),
            validate=False,
        )

    def translated(self, offsets: Sequence[int]) -> "BoxSet":
        off = np.asarray(offsets, dtype=np.int64)
        if off.shape != (self.dimension,):
            raise DimensionalityError("offset dimensionality mismatch")
        return BoxSet(self._lows + off, self._highs + off, validate=False)

    def scaled(self, factor: int) -> "BoxSet":
        """Multiply every coordinate by ``factor`` (used by the endpoint transform)."""
        if factor <= 0:
            raise DomainError("scale factor must be positive")
        return BoxSet(self._lows * factor, self._highs * factor, validate=False)

    def expanded(self, radius: int) -> "BoxSet":
        """Grow every box by ``radius`` on each side (epsilon-join helper)."""
        if radius < 0:
            raise DomainError("expansion radius must be non-negative")
        return BoxSet(self._lows - radius, self._highs + radius, validate=False)

    def clipped(self, lo: int, hi: int) -> "BoxSet":
        """Clip every box to ``[lo, hi]`` in every dimension.

        Boxes entirely outside the clipping window are dropped.
        """
        lows = np.clip(self._lows, lo, hi)
        highs = np.clip(self._highs, lo, hi)
        keep = np.all(self._lows <= hi, axis=1) & np.all(self._highs >= lo, axis=1)
        return BoxSet(lows[keep], highs[keep], validate=False)

    def shrunk_for_endpoint_transform(self) -> "BoxSet":
        """Apply the Section 5.2 shrink: coordinates scaled by 3, then
        lower endpoints moved to ``3*lo + 1`` and upper endpoints to ``3*hi - 1``.

        The resulting boxes never share an endpoint coordinate with any box
        whose coordinates were merely scaled by 3.
        """
        return BoxSet(self._lows * 3 + 1, self._highs * 3 - 1, validate=False)

    def projected(self, dimensions: Sequence[int]) -> "BoxSet":
        dims = list(dimensions)
        return BoxSet(self._lows[:, dims], self._highs[:, dims], validate=False)

    def sample(self, size: int, rng: np.random.Generator) -> "BoxSet":
        """A uniform random subset of ``size`` boxes (without replacement)."""
        if size > len(self):
            raise DomainError(f"cannot sample {size} boxes from a set of {len(self)}")
        idx = rng.choice(len(self), size=size, replace=False)
        return self[idx]

    def to_rects(self) -> list[Rect]:
        return [self.rect(i) for i in range(len(self))]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoxSet(n={len(self)}, d={self.dimension})"


class PointSet:
    """A collection of ``n`` points in ``d`` dimensions (``int64`` coordinates)."""

    __slots__ = ("_coords",)

    def __init__(self, coords: np.ndarray) -> None:
        coords = np.atleast_2d(np.asarray(coords, dtype=np.int64))
        if coords.ndim != 2:
            raise DimensionalityError("PointSet expects a 2-d array of shape (n, d)")
        self._coords = coords
        self._coords.setflags(write=False)

    @property
    def coords(self) -> np.ndarray:
        return self._coords

    @property
    def dimension(self) -> int:
        return self._coords.shape[1]

    def __len__(self) -> int:
        return self._coords.shape[0]

    def __getitem__(self, index) -> "PointSet":
        sub = self._coords[index]
        if sub.ndim == 1:
            sub = sub[None, :]
        return PointSet(sub)

    def point(self, index: int) -> tuple[int, ...]:
        return tuple(int(c) for c in self._coords[index])

    def max_coordinate(self) -> int:
        if len(self) == 0:
            return 0
        return int(self._coords.max())

    def to_boxes(self) -> BoxSet:
        """Degenerate boxes (``lo == hi``) covering each point."""
        return BoxSet(self._coords.copy(), self._coords.copy(), validate=False)

    def expanded_boxes(self, radius: int, *, clip_lo: int | None = None,
                       clip_hi: int | None = None) -> BoxSet:
        """L-infinity balls of the given radius around each point.

        This is the ``B'`` construction of Section 6.3: each point becomes a
        hyper-cube of side length ``2 * radius``.  Optional clipping keeps the
        cubes inside the data domain (safe because all query points lie in the
        domain as well).
        """
        if radius < 0:
            raise DomainError("radius must be non-negative")
        lows = self._coords - radius
        highs = self._coords + radius
        if clip_lo is not None:
            lows = np.maximum(lows, clip_lo)
            highs = np.maximum(highs, clip_lo)
        if clip_hi is not None:
            lows = np.minimum(lows, clip_hi)
            highs = np.minimum(highs, clip_hi)
        return BoxSet(lows, highs, validate=False)

    def concat(self, other: "PointSet") -> "PointSet":
        if other.dimension != self.dimension:
            raise DimensionalityError("cannot concatenate PointSets of different dimensionality")
        return PointSet(np.concatenate([self._coords, other._coords]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PointSet(n={len(self)}, d={self.dimension})"
