"""One-dimensional closed integer intervals ``[lo, hi]``.

Intervals are the basic spatial object of Section 3.1/4.1 of the paper.
``lo == hi`` denotes a degenerate (point) interval; the paper's join
definitions ignore degenerate objects because they cannot produce a
strictly overlapping pair, but range queries and epsilon-joins use them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DomainError


@dataclass(frozen=True, order=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` with ``lo <= hi``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise DomainError(f"interval lower endpoint {self.lo} exceeds upper endpoint {self.hi}")

    @property
    def length(self) -> int:
        """Number of integer coordinates covered by the interval."""
        return self.hi - self.lo + 1

    @property
    def is_degenerate(self) -> bool:
        """True for point "intervals" with ``lo == hi``."""
        return self.lo == self.hi

    def contains_point(self, point: int) -> bool:
        """True if ``point`` lies within the closed interval."""
        return self.lo <= point <= self.hi

    def contains(self, other: "Interval") -> bool:
        """True if ``other`` is fully contained in this interval (closed)."""
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """Strict overlap: the interiors of the two intervals intersect.

        This is the semantics of Figure 3 cases (3)-(6): touching at a
        single coordinate (case 2, "meet") does not count.
        """
        return self.lo < other.hi and other.lo < self.hi

    def overlaps_plus(self, other: "Interval") -> bool:
        """Extended overlap (Appendix B.1): touching boundaries count too."""
        return self.lo <= other.hi and other.lo <= self.hi

    def intersection(self, other: "Interval") -> "Interval | None":
        """The common closed interval, or ``None`` if the two are disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def shifted(self, offset: int) -> "Interval":
        """A copy translated by ``offset``."""
        return Interval(self.lo + offset, self.hi + offset)

    def expanded(self, radius: int) -> "Interval":
        """A copy grown by ``radius`` on both sides (used by epsilon-joins)."""
        if radius < 0:
            raise DomainError(f"expansion radius must be non-negative, got {radius}")
        return Interval(self.lo - radius, self.hi + radius)

    def clipped(self, lo: int, hi: int) -> "Interval | None":
        """The part of the interval inside ``[lo, hi]``, or ``None`` if empty."""
        return self.intersection(Interval(lo, hi))

    def __iter__(self):
        yield self.lo
        yield self.hi

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lo}, {self.hi}]"
