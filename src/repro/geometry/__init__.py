"""Geometric primitives used throughout the library.

The package provides two levels of abstraction:

* Scalar objects (:class:`~repro.geometry.interval.Interval`,
  :class:`~repro.geometry.rectangle.Rect`) that are convenient for tests,
  examples and small inputs.
* Array-backed collections (:class:`~repro.geometry.boxset.BoxSet`,
  :class:`~repro.geometry.boxset.PointSet`) that the sketches, exact join
  algorithms and histograms operate on.

All coordinates are integers from a finite domain ``{0, ..., n-1}`` per
dimension, exactly as in Section 2.1 of the paper; Section 5.1's treatment
of real-valued data is provided by :class:`repro.core.domain.Quantizer`.
"""

from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rect
from repro.geometry.boxset import BoxSet, PointSet
from repro.geometry.predicates import (
    interval_overlap,
    interval_overlap_plus,
    interval_contains,
    rect_overlap,
    rect_overlap_plus,
    rect_contains,
    linf_distance,
    l1_distance,
    l2_distance,
)
from repro.geometry.relationships import (
    IntervalRelationship,
    classify_intervals,
    classify_rects,
)

__all__ = [
    "Interval",
    "Rect",
    "BoxSet",
    "PointSet",
    "interval_overlap",
    "interval_overlap_plus",
    "interval_contains",
    "rect_overlap",
    "rect_overlap_plus",
    "rect_contains",
    "linf_distance",
    "l1_distance",
    "l2_distance",
    "IntervalRelationship",
    "classify_intervals",
    "classify_rects",
]
