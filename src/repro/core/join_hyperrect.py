"""Spatial join estimation for d-dimensional hyper-rectangles.

This module implements the paper's main estimators:

* Theorem 1 (d = 1), Theorem 2 (d = 2) and Theorem 3 (general d) via
  :class:`SpatialJoinEstimator` — the estimator random variable is

      Z = 2^{-d} * sum over words w in {I, E}^d of  X_w * Y_{w-bar}

  which is unbiased for ``|R join_o S|`` when no R endpoint coincides with
  an S endpoint in any dimension (Assumption 1).

* The ``endpoint_policy`` argument selects how Assumption 1 is enforced:

  - ``"assume_distinct"`` — trust the caller (fastest, exactly Theorems 1-3),
  - ``"transform"``       — apply the Section 5.2 domain refinement so the
    assumption always holds (the default; costs two extra dyadic levels),
  - ``"explicit"``        — keep the original domain and use the Appendix C
    correction terms that explicitly subtract the over-counted shared-
    endpoint configurations.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.atomic import Letter
from repro.core.boosting import BoostingPlan, plan_boosting
from repro.core.domain import Domain
from repro.core.join_base import PairTerm, PairedSketchJoinEstimator
from repro.errors import SketchConfigError


#: Per-dimension pair terms of the plain spatial join (Sections 4.1-4.2, 6.1).
STANDARD_PAIR_TERMS: tuple[PairTerm, ...] = (
    PairTerm(Letter.INTERVAL, Letter.ENDPOINTS, 0.5),
    PairTerm(Letter.ENDPOINTS, Letter.INTERVAL, 0.5),
)

#: Per-dimension pair terms of the Appendix C estimator, which keeps the
#: original domain and explicitly corrects for shared endpoints.
EXPLICIT_ENDPOINT_PAIR_TERMS: tuple[PairTerm, ...] = (
    PairTerm(Letter.INTERVAL, Letter.ENDPOINTS, 0.5),
    PairTerm(Letter.ENDPOINTS, Letter.INTERVAL, 0.5),
    PairTerm(Letter.LOWER_LEAF, Letter.UPPER_LEAF, -1.0),
    PairTerm(Letter.UPPER_LEAF, Letter.LOWER_LEAF, -1.0),
    PairTerm(Letter.LOWER_LEAF, Letter.LOWER_LEAF, -0.5),
    PairTerm(Letter.UPPER_LEAF, Letter.UPPER_LEAF, -0.5),
)

ENDPOINT_POLICIES = ("assume_distinct", "transform", "explicit")


class SpatialJoinEstimator(PairedSketchJoinEstimator):
    """Sketch-based estimator for ``|R join_o S|`` of two hyper-rectangle sets."""

    def __init__(self, domain: Domain, num_instances: int, *, seed=0,
                 endpoint_policy: str = "transform",
                 boosting: BoostingPlan | None = None) -> None:
        if endpoint_policy not in ENDPOINT_POLICIES:
            raise SketchConfigError(
                f"endpoint_policy must be one of {ENDPOINT_POLICIES}, got {endpoint_policy!r}"
            )
        self._endpoint_policy = endpoint_policy
        if endpoint_policy == "explicit":
            pair_terms: Sequence[PairTerm] = EXPLICIT_ENDPOINT_PAIR_TERMS
            use_transform = False
        else:
            pair_terms = STANDARD_PAIR_TERMS
            use_transform = endpoint_policy == "transform"
        super().__init__(domain, pair_terms, num_instances, seed=seed,
                         boosting=boosting, use_endpoint_transform=use_transform)

    @property
    def endpoint_policy(self) -> str:
        return self._endpoint_policy

    # -- guarantee-driven construction -------------------------------------------------

    @classmethod
    def from_guarantee(cls, domain: Domain, epsilon: float, phi: float,
                       self_join_left: float, self_join_right: float,
                       result_lower_bound: float, *, seed=0,
                       endpoint_policy: str = "transform",
                       max_instances: int | None = None) -> "SpatialJoinEstimator":
        """Size the sketch for a target (epsilon, phi) guarantee (Theorems 1-3).

        ``self_join_left`` / ``self_join_right`` are ``SJ(R)`` and ``SJ(S)``
        (see :mod:`repro.core.selfjoin`); ``result_lower_bound`` is the sanity
        lower bound on the true join cardinality.
        """
        variance_bound = 0.5 * self_join_left * self_join_right
        plan = plan_boosting(epsilon, phi, variance_bound, result_lower_bound,
                             max_instances=max_instances)
        return cls(domain, plan.total_instances, seed=seed,
                   endpoint_policy=endpoint_policy, boosting=plan)

    @classmethod
    def from_budget(cls, domain: Domain, budget_words: float, *, seed=0,
                    endpoint_policy: str = "transform") -> "SpatialJoinEstimator":
        """Build the largest estimator that fits in a per-dataset word budget."""
        from repro.core import space

        counters = 2 ** domain.dimension
        if endpoint_policy == "explicit":
            counters = 4 ** domain.dimension
        instances = space.instances_for_budget(budget_words, domain.dimension,
                                               counters_per_instance=counters)
        return cls(domain, instances, seed=seed, endpoint_policy=endpoint_policy)
