"""Extended join predicates (Appendix B.1 and Appendix C).

Two estimators live here:

* :class:`ExtendedOverlapJoinEstimator` — estimates ``|R join+_o S|``, the
  *extended* spatial join where hyper-rectangles that merely touch at their
  boundaries also count (Definition 4).  Following Appendix B.1, the I/E
  sketches are built over endpoint-transformed (shrunk) coordinates, while
  additional leaf-level endpoint sketches (X_L, X_U, ...) over the original
  coordinates capture exactly the touching configurations:

      Z = sum over words w in {I, E, L, U}^d of  X_w * Y_{w-bar} / 2^{c(w)}

  with ``c(w)`` the number of I/E letters in ``w``.

* :class:`CommonEndpointJoinEstimator` — the Appendix C estimator for the
  *strict* join that keeps the original domain (no shrinking) and instead
  explicitly subtracts the configurations that the simple counting procedure
  over-counts when endpoints are shared.  In one dimension,

      Z = (X_I Y_E + X_E Y_I - 2 X_L Y_U - 2 X_U Y_L - X_L Y_L - X_U Y_U) / 2.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.atomic import Letter
from repro.core.boosting import BoostingPlan
from repro.core.domain import Domain
from repro.core.join_base import PairTerm, PairedSketchJoinEstimator
from repro.core.join_hyperrect import SpatialJoinEstimator
from repro.geometry.boxset import BoxSet


#: Per-dimension pair terms of the extended-overlap estimator (Appendix B.1).
#: The strict-overlap part is estimated on shrunk coordinates; the two leaf
#: terms count the "meet" configurations on the original (scaled) coordinates.
EXTENDED_OVERLAP_PAIR_TERMS: tuple[PairTerm, ...] = (
    PairTerm(Letter.INTERVAL, Letter.ENDPOINTS, 0.5, transformed=True),
    PairTerm(Letter.ENDPOINTS, Letter.INTERVAL, 0.5, transformed=True),
    PairTerm(Letter.LOWER_LEAF, Letter.UPPER_LEAF, 1.0),
    PairTerm(Letter.UPPER_LEAF, Letter.LOWER_LEAF, 1.0),
)


class ExtendedOverlapJoinEstimator(PairedSketchJoinEstimator):
    """Estimates the extended spatial join ``|R join+_o S|`` (touching counts)."""

    def __init__(self, domain: Domain, num_instances: int, *, seed=0,
                 boosting: BoostingPlan | None = None) -> None:
        super().__init__(domain, EXTENDED_OVERLAP_PAIR_TERMS, num_instances,
                         seed=seed, boosting=boosting, use_endpoint_transform=True)

    def _prepare_right(self, boxes: BoxSet) -> tuple[BoxSet, Mapping[Letter, BoxSet] | None]:
        # I/E letters see the shrunk coordinates; the leaf letters must see the
        # merely-scaled coordinates so that shared endpoints remain detectable.
        assert self._transform is not None
        shrunk = self._transform.transform_right(boxes)
        scaled = self._transform.transform_left(boxes)
        return shrunk, {Letter.LOWER_LEAF: scaled, Letter.UPPER_LEAF: scaled}


class CommonEndpointJoinEstimator(SpatialJoinEstimator):
    """The Appendix C estimator: strict join, original domain, explicit correction.

    Functionally equivalent to ``SpatialJoinEstimator(endpoint_policy="explicit")``;
    provided as a named class because the paper treats it as a distinct technique.
    """

    def __init__(self, domain: Domain, num_instances: int, *, seed=0,
                 boosting: BoostingPlan | None = None) -> None:
        super().__init__(domain, num_instances, seed=seed,
                         endpoint_policy="explicit", boosting=boosting)
