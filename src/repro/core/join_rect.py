"""Spatial join of rectangle sets (Section 4.2, Theorem 2).

:class:`RectangleJoinEstimator` is the two-dimensional specialisation of
:class:`~repro.core.join_hyperrect.SpatialJoinEstimator`.  It is the
estimator used by the paper's main experiments (Figures 5, 6, 9, 10, 11).
"""

from __future__ import annotations

from repro.core.boosting import BoostingPlan
from repro.core.domain import Domain
from repro.core.join_hyperrect import SpatialJoinEstimator
from repro.errors import DimensionalityError


class RectangleJoinEstimator(SpatialJoinEstimator):
    """Estimates ``|R join_o S|`` for two sets of two-dimensional rectangles."""

    def __init__(self, domain: Domain, num_instances: int, *, seed=0,
                 endpoint_policy: str = "transform",
                 boosting: BoostingPlan | None = None) -> None:
        if domain.dimension != 2:
            raise DimensionalityError("RectangleJoinEstimator requires a 2-dimensional domain")
        super().__init__(domain, num_instances, seed=seed,
                         endpoint_policy=endpoint_policy, boosting=boosting)
