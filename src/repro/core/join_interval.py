"""Spatial join of interval sets (Section 4.1, Theorem 1).

:class:`IntervalJoinEstimator` is the one-dimensional specialisation of
:class:`~repro.core.join_hyperrect.SpatialJoinEstimator` with a small
interval-oriented convenience API on top (inserting plain ``(lo, hi)``
pairs instead of :class:`~repro.geometry.boxset.BoxSet` objects).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.boosting import BoostingPlan
from repro.core.domain import Domain
from repro.core.join_hyperrect import SpatialJoinEstimator
from repro.errors import DimensionalityError
from repro.geometry.boxset import BoxSet
from repro.geometry.interval import Interval


def _as_boxes(intervals) -> BoxSet:
    if isinstance(intervals, BoxSet):
        return intervals
    return BoxSet.from_intervals(intervals)


class IntervalJoinEstimator(SpatialJoinEstimator):
    """Estimates ``|R join_o S|`` for two sets of one-dimensional intervals."""

    def __init__(self, domain: Domain | int, num_instances: int, *, seed=0,
                 endpoint_policy: str = "transform",
                 boosting: BoostingPlan | None = None) -> None:
        if isinstance(domain, int):
            domain = Domain(domain)
        if domain.dimension != 1:
            raise DimensionalityError("IntervalJoinEstimator requires a 1-dimensional domain")
        super().__init__(domain, num_instances, seed=seed,
                         endpoint_policy=endpoint_policy, boosting=boosting)

    # -- interval-flavoured update API --------------------------------------------------

    def insert_left_intervals(self, intervals: Iterable[tuple[int, int] | Interval]) -> None:
        self.insert_left(_as_boxes(intervals))

    def insert_right_intervals(self, intervals: Iterable[tuple[int, int] | Interval]) -> None:
        self.insert_right(_as_boxes(intervals))

    def delete_left_intervals(self, intervals: Iterable[tuple[int, int] | Interval]) -> None:
        self.delete_left(_as_boxes(intervals))

    def delete_right_intervals(self, intervals: Iterable[tuple[int, int] | Interval]) -> None:
        self.delete_right(_as_boxes(intervals))
