"""Compiled sketch programs: a shared estimator IR and its vectorised executor.

Every estimator in this library reduces to the same pipeline — per-dimension
xi *letter sums* over canonical dyadic covers, products across dimensions and
across sketch banks, a linear combination of those products per atomic-sketch
instance, then median-of-means boosting.  The eight families only differ in
*which* products they combine.  This module lifts that shared structure into
a small declarative IR:

* :class:`CounterRef` — the per-instance counter vector of one word in one
  :class:`~repro.core.atomic.SketchBank` (the *data side*),
* :class:`LetterSumRef` — a per-instance xi sum over one dimension's dyadic
  cover of a query coordinate interval (the *query side*),
* :class:`ProgramTerm` — one coefficient times the product of counter and
  letter-sum factors,
* :class:`SketchProgram` — an ordered tuple of terms plus the reduction spec
  (a :class:`~repro.core.boosting.BoostingPlan`) and the input cardinalities
  carried into the :class:`~repro.core.result.EstimateResult`.

Estimator families *lower* their queries into programs (see
``lower``/``lower_batch`` on the family classes) and a shared
:class:`ProgramExecutor` runs whole batches of programs — across different
queries, different words and different estimator families — with three levels
of sharing:

1. identical letter-sum requests — same xi family, dyadic shape, letter
   and interval — are computed **once per batch** (and optionally cached
   across batches in a bounded LRU — letter sums depend only on the bank's
   xi families and domain, never on its counters, so cache entries never go
   stale, and survive delta-applied merged views that alias those
   families),
2. programs with the same term *structure* (same banks, words, letters and
   coefficients — e.g. a batch of range queries against one sketch) are
   evaluated as single ``(instances, programs)`` matrix kernels,
3. programs sharing ``(num_instances, plan)`` are boosted by one
   :func:`~repro.core.boosting.median_of_means_batch` reduction.

Execution is **bit-identical** to the historical scalar paths: the same
accumulation order, the same elementwise kernels, the same reductions.  The
executor is a pure execution-strategy layer, never a numerics change.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

from repro.core.atomic import Letter, SketchBank, Word
from repro.core.boosting import BoostingPlan, median_of_means_batch
from repro.core.result import EstimateResult
from repro.errors import SketchConfigError

__all__ = [
    "CounterRef",
    "LetterSumRef",
    "ProgramTerm",
    "SketchProgram",
    "ProgramExecutor",
    "ExecutorStats",
    "QuerylessProgramEstimator",
    "batch_request_count",
    "replicate_estimate",
    "describe_program",
    "letter_cover_size",
    "default_executor",
]


# -- the IR -------------------------------------------------------------------------


@dataclass(frozen=True)
class CounterRef:
    """The per-instance counter vector of one word in one bank.

    Banks compare by identity: two refs are interchangeable exactly when
    they read the same live counter storage.
    """

    bank: SketchBank
    word: Word


@dataclass(frozen=True)
class LetterSumRef:
    """A per-instance xi letter sum over one dimension's coordinate interval.

    Resolves to ``bank.letter_sums(dim, letter, [low], [high])`` — the
    query-side kernel of the paper's estimators.  The value depends only on
    the bank's xi families and dyadic domain (never on its counters), which
    is what makes these safely cacheable across queries and batches.
    """

    bank: SketchBank
    dim: int
    letter: Letter
    low: int
    high: int

    @property
    def key(self) -> tuple:
        """The executor's sharing key: xi identity, dyadic shape, letter, interval.

        A letter sum is a pure function of the dimension's xi family, the
        dyadic domain shape and the interval — the *bank* only carries them.
        Keying on ``(xi bank, dyadic size, max level, letter, interval)``
        instead of the bank itself means two banks that alias one xi family
        over the same dyadic structure share cache entries, which is what
        keeps the letter-sum cache warm across delta-applied merged views
        (:meth:`repro.core.atomic.SketchBank.clone_with_delta` aliases the
        xi families of the view it refreshes).
        """
        dyadic = self.bank.domain.dyadic(self.dim)
        return (self.bank.xi_banks[self.dim], dyadic.size, dyadic.max_level,
                self.letter, self.low, self.high)



@dataclass(frozen=True)
class ProgramTerm:
    """One coefficient times a product of counter and letter-sum factors.

    The counter factors multiply in tuple order (the pairwise instance
    combination of the join families: instance ``i`` of every bank
    contributes to instance ``i`` of the product); the letter-sum factors
    multiply in tuple order after them, exactly as the scalar
    ``evaluate``/``instance_values`` paths always did.
    """

    coefficient: float
    counters: tuple[CounterRef, ...] = ()
    letter_sums: tuple[LetterSumRef, ...] = ()


@dataclass(frozen=True)
class SketchProgram:
    """A compiled estimate: terms, reduction spec and result metadata.

    ``replicas`` expresses the query-less batch contract (N requests against
    a join estimator share one set of per-instance values): the executor
    evaluates the program once and returns ``replicas`` results, each owning
    its own arrays.
    """

    terms: tuple[ProgramTerm, ...]
    num_instances: int
    plan: BoostingPlan
    left_count: int
    right_count: int = 1
    replicas: int = 1

    def __post_init__(self) -> None:
        if not self.terms:
            raise SketchConfigError("a sketch program needs at least one term")
        if self.replicas < 1:
            raise SketchConfigError("a sketch program needs at least one replica")

    @property
    def letter_sum_refs(self) -> list[LetterSumRef]:
        """Every letter-sum request of the program, in term order."""
        return [ref for term in self.terms for ref in term.letter_sums]

    def structure_key(self) -> tuple:
        """Groups programs the executor can evaluate as one matrix kernel.

        Two programs share a structure when they differ only in the
        *intervals* of their letter-sum requests — same banks, words,
        letters, coefficients, instance count and reduction plan.
        """
        return (
            self.num_instances,
            self.plan,
            tuple(
                (
                    term.coefficient,
                    term.counters,
                    tuple((ref.bank, ref.dim, ref.letter)
                          for ref in term.letter_sums),
                )
                for term in self.terms
            ),
        )


# -- batch-request helpers (shared by the query-less families) ----------------------


def batch_request_count(queries) -> int:
    """Normalise a batch request for query-less estimators to a result count.

    Join estimators summarise both inputs up front, so a "batched" request
    is simply *how many* results are wanted: either an integer count or a
    sequence of ``None`` placeholders (the shape the service layer produces
    when it routes mixed batches through one API).  Anything non-``None`` in
    the sequence is an error — these families do not take per-query
    arguments.
    """
    if isinstance(queries, (int, np.integer)):
        count = int(queries)
        if count < 0:
            raise SketchConfigError("batch size must be non-negative")
        return count
    entries = list(queries)
    if any(entry is not None for entry in entries):
        raise SketchConfigError(
            "this estimator family does not take a query argument; batch "
            "entries must all be None (or pass an integer count)"
        )
    return len(entries)


def replicate_estimate(result: EstimateResult, count: int) -> list[EstimateResult]:
    """``count`` independent copies of one estimate.

    Matches the scalar-loop contract: every returned result owns its own
    arrays, so in-place post-processing of one entry cannot leak into the
    others.  The estimator values themselves are computed only once.
    """
    results = [result]
    for _ in range(count - 1):
        results.append(EstimateResult(
            estimate=result.estimate,
            instance_values=result.instance_values.copy(),
            group_means=result.group_means.copy(),
            left_count=result.left_count,
            right_count=result.right_count,
        ))
    return results


# -- the executor -------------------------------------------------------------------


def _weak_key(key: tuple) -> tuple:
    """A cache key that does not keep the xi bank alive (see _LetterSumCache)."""
    return (weakref.ref(key[0]),) + key[1:]


@dataclass
class ExecutorStats:
    """Lifetime counters of one executor (all mutated under its lock)."""

    runs: int = 0
    programs: int = 0
    results: int = 0
    kernel_calls: int = 0
    letter_sums_requested: int = 0
    letter_sums_computed: int = 0
    cache_hits: int = 0

    def copy(self) -> "ExecutorStats":
        return replace(self)

    def as_dict(self) -> dict:
        """JSON form for the service ``stats`` op and the metrics verb."""
        return {
            "runs": self.runs,
            "programs": self.programs,
            "results": self.results,
            "kernel_calls": self.kernel_calls,
            "letter_sums_requested": self.letter_sums_requested,
            "letter_sums_computed": self.letter_sums_computed,
            "cache_hits": self.cache_hits,
        }


class _LetterSumCache:
    """A bounded LRU of resolved letter-sum vectors (callers lock).

    Keys are ``LetterSumRef.key`` tuples with the xi family bank replaced
    by a **weak** reference: a live xi bank hashes/compares by identity (so
    lookups are exact and id reuse after collection can never alias — a
    dead weakref only equals itself), while a discarded family is *not*
    pinned by its cached vectors; its entries become unmatchable and age
    out of the LRU.  Because delta-applied merged views alias the xi banks
    of the views they refresh (sketch linearity: letter sums never depend
    on counters), a flush-and-delta-apply cycle keeps every entry live —
    only a full rebuild, which redraws the families, orphans them.
    """

    def __init__(self, max_entries: int) -> None:
        self._max = int(max_entries)
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> np.ndarray | None:
        vector = self._entries.get(key)
        if vector is not None:
            self._entries.move_to_end(key)
        return vector

    def put(self, key: tuple, vector: np.ndarray) -> None:
        self._entries[key] = vector
        self._entries.move_to_end(key)
        while len(self._entries) > self._max:
            self._entries.popitem(last=False)


class ProgramExecutor:
    """Runs batches of :class:`SketchProgram` objects against shared kernels.

    Parameters
    ----------
    cache_size:
        Capacity (entries) of the cross-batch letter-sum LRU.  ``0``
        disables cross-batch caching; identical requests *within* one run
        are still computed once (intra-batch sharing is structural, not a
        cache policy).  Cached vectors are read-only and never go stale:
        letter sums depend only on a bank's xi families and domain.
    """

    #: Programs evaluated per vectorised round; bounds the transient
    #: ``(instances, programs)`` matrices while huge batches stream.
    DEFAULT_CHUNK = 4096

    def __init__(self, *, cache_size: int = 8192) -> None:
        if cache_size < 0:
            raise SketchConfigError("cache_size must be non-negative")
        self._cache = _LetterSumCache(cache_size) if cache_size else None
        self._lock = threading.Lock()
        self._stats = ExecutorStats()

    @property
    def stats(self) -> ExecutorStats:
        with self._lock:
            return self._stats.copy()

    @property
    def cache_entries(self) -> int:
        with self._lock:
            return len(self._cache) if self._cache is not None else 0

    # -- public entry points ------------------------------------------------------

    def run(self, programs: Sequence[SketchProgram], *,
            chunk_size: int | None = None) -> list[EstimateResult]:
        """Evaluate and boost a batch of programs.

        Returns one :class:`EstimateResult` per *logical* query: a program
        with ``replicas == k`` contributes ``k`` consecutive results.
        Result order follows program order.  Every result is bit-identical
        to the corresponding scalar estimate.
        """
        programs = list(programs)
        chunk = int(chunk_size or self.DEFAULT_CHUNK)
        if chunk < 1:
            raise SketchConfigError("chunk_size must be positive")
        results: list[EstimateResult] = []
        for start in range(0, len(programs), chunk):
            results.extend(self._run_chunk(programs[start:start + chunk]))
        with self._lock:
            self._stats.runs += 1
            self._stats.programs += len(programs)
            self._stats.results += len(results)
        return results

    def run_values(self, programs: Sequence[SketchProgram]
                   ) -> list[np.ndarray]:
        """Per-instance estimator values Z of each program (no boosting).

        ``replicas`` is ignored: one value vector per program.
        """
        programs = list(programs)
        values: list[np.ndarray] = []
        for start in range(0, len(programs), self.DEFAULT_CHUNK):
            chunk = programs[start:start + self.DEFAULT_CHUNK]
            resolved = self._resolve_letter_sums(chunk)
            columns = self._chunk_values(chunk, resolved)
            values.extend(np.ascontiguousarray(column) for column in columns)
        return values

    # -- execution ----------------------------------------------------------------

    def _run_chunk(self, programs: list[SketchProgram]) -> list[EstimateResult]:
        if not programs:
            return []
        resolved = self._resolve_letter_sums(programs)
        columns = self._chunk_values(programs, resolved)

        # One boosting reduction per (num_instances, plan) group, rows in
        # program order within the group — bit-identical per row to scalar
        # median_of_means, so the grouping itself is invisible.
        estimates: list[float] = [0.0] * len(programs)
        means: list[np.ndarray] = [None] * len(programs)  # type: ignore[list-item]
        reduction_groups: OrderedDict[tuple, list[int]] = OrderedDict()
        for position, program in enumerate(programs):
            key = (program.num_instances, program.plan)
            reduction_groups.setdefault(key, []).append(position)
        for (_, plan), positions in reduction_groups.items():
            matrix = np.stack([columns[position] for position in positions])
            boosted, group_means = median_of_means_batch(matrix, plan)
            for row, position in enumerate(positions):
                estimates[position] = float(boosted[row])
                means[position] = group_means[row]

        results: list[EstimateResult] = []
        for position, program in enumerate(programs):
            result = EstimateResult(
                estimate=estimates[position],
                instance_values=np.ascontiguousarray(columns[position]),
                group_means=means[position].copy(),
                left_count=program.left_count,
                right_count=program.right_count,
            )
            if program.replicas == 1:
                results.append(result)
            else:
                results.extend(replicate_estimate(result, program.replicas))
        return results

    def _chunk_values(self, programs: list[SketchProgram],
                      resolved: dict[tuple, np.ndarray]) -> list[np.ndarray]:
        """Per-program value vectors, evaluated one structure group at a time."""
        columns: list[np.ndarray] = [None] * len(programs)  # type: ignore[list-item]
        groups: OrderedDict[tuple, list[int]] = OrderedDict()
        for position, program in enumerate(programs):
            groups.setdefault(program.structure_key(), []).append(position)
        for positions in groups.values():
            members = [programs[position] for position in positions]
            matrix = self._group_values(members, resolved)
            for column, position in enumerate(positions):
                columns[position] = matrix[:, column]
        return columns

    @staticmethod
    def _group_values(programs: list[SketchProgram],
                      resolved: dict[tuple, np.ndarray]) -> np.ndarray:
        """``(num_instances, len(programs))`` values for one structure group.

        The accumulation mirrors the historical scalar paths exactly:
        counters multiply first (in ref order), letter sums multiply next
        (in dimension order), the coefficient scales the product, and terms
        accumulate into a zero-initialised matrix in term order.
        """
        template = programs[0]
        values = np.zeros((template.num_instances, len(programs)),
                          dtype=np.float64)
        for term_index, term in enumerate(template.terms):
            counter_product: np.ndarray | None = None
            for ref in term.counters:
                column = ref.bank.counter(ref.word)
                counter_product = (column if counter_product is None
                                   else counter_product * column)
            sum_product: np.ndarray | None = None
            for slot in range(len(term.letter_sums)):
                gathered = np.stack(
                    [resolved[p.terms[term_index].letter_sums[slot].key]
                     for p in programs], axis=1)
                if sum_product is None:
                    sum_product = gathered
                else:
                    sum_product *= gathered
            if sum_product is None:
                values += term.coefficient * counter_product[:, None]
            elif counter_product is None:
                values += term.coefficient * sum_product
            else:
                values += term.coefficient * (counter_product[:, None]
                                              * sum_product)
        return values

    def _resolve_letter_sums(self, programs: Iterable[SketchProgram]
                             ) -> dict[tuple, np.ndarray]:
        """Resolve every letter-sum request of a chunk, sharing aggressively.

        Identical requests resolve to one vector; cache hits skip the
        kernel entirely; misses are grouped by ``(xi bank, dyadic shape,
        letter)`` and computed in **one** vectorised kernel call per group
        (column ``j`` of a batched kernel is bit-identical to a
        single-interval call).
        """
        resolved: dict[tuple, np.ndarray] = {}
        # Misses grouped by the interval-free key prefix (xi bank, dyadic
        # shape, letter); any member ref's (bank, dim) serves as the kernel
        # representative — every ref in the group reduces over the same xi
        # family and dyadic structure, so the results are interchangeable.
        missing: OrderedDict[tuple, OrderedDict[tuple[int, int], None]] = \
            OrderedDict()
        representatives: dict[tuple, LetterSumRef] = {}
        requested = 0
        hits = 0
        for program in programs:
            for term in program.terms:
                for ref in term.letter_sums:
                    requested += 1
                    key = ref.key
                    if key in resolved:
                        continue
                    if self._cache is not None:
                        with self._lock:
                            cached = self._cache.get(_weak_key(key))
                        if cached is not None:
                            resolved[key] = cached
                            hits += 1
                            continue
                    group_key = key[:-2]
                    group = missing.setdefault(group_key, OrderedDict())
                    representatives.setdefault(group_key, ref)
                    group.setdefault((ref.low, ref.high))
                    resolved[key] = None  # type: ignore[assignment]

        kernel_calls = 0
        computed = 0
        for group_key, intervals in missing.items():
            rep = representatives[group_key]
            lows = np.fromiter((low for low, _ in intervals), dtype=np.int64,
                               count=len(intervals))
            highs = np.fromiter((high for _, high in intervals),
                                dtype=np.int64, count=len(intervals))
            sums = rep.bank.letter_sums(rep.dim, rep.letter, lows, highs)
            kernel_calls += 1
            computed += len(intervals)
            for index, (low, high) in enumerate(intervals):
                vector = np.ascontiguousarray(sums[:, index])
                vector.setflags(write=False)
                key = group_key + (low, high)
                resolved[key] = vector
                if self._cache is not None:
                    with self._lock:
                        self._cache.put(_weak_key(key), vector)
        with self._lock:
            self._stats.letter_sums_requested += requested
            self._stats.letter_sums_computed += computed
            self._stats.kernel_calls += kernel_calls
            self._stats.cache_hits += hits
        return resolved


_DEFAULT_EXECUTOR: ProgramExecutor | None = None
_DEFAULT_EXECUTOR_LOCK = threading.Lock()


def default_executor() -> ProgramExecutor:
    """The process-wide executor the estimator families run on.

    Deliberately created **without** a cross-batch cache: a scalar
    ``estimate`` call must cost exactly what it always did, and intra-batch
    sharing (the structural win) needs no cache.  Long-lived serving layers
    that want cross-batch reuse own their own caching executor (see
    :class:`~repro.service.service.EstimationService`).
    """
    global _DEFAULT_EXECUTOR
    if _DEFAULT_EXECUTOR is None:
        with _DEFAULT_EXECUTOR_LOCK:
            if _DEFAULT_EXECUTOR is None:
                _DEFAULT_EXECUTOR = ProgramExecutor(cache_size=0)
    return _DEFAULT_EXECUTOR


# -- the shared query-less estimate surface -----------------------------------------


class QuerylessProgramEstimator:
    """Estimate surface for families whose queries carry no argument.

    The paired join, epsilon-join and containment estimators all answer the
    same way: lower the (fixed) estimator random variable into one
    :class:`SketchProgram` and run it on the shared executor.  Subclasses
    provide the family-specific pieces:

    * ``_program_terms()`` — the term tuple of the estimator,
    * ``_counts()`` — the ``(left, right)`` input cardinalities,
    * ``_require_data()`` — raise ``EstimationError`` when nothing was
      inserted yet,

    plus ``_plan`` / ``_num_instances`` attributes.
    """

    _plan: BoostingPlan | None
    _num_instances: int

    def _program_terms(self) -> tuple[ProgramTerm, ...]:
        raise NotImplementedError

    def _counts(self) -> tuple[int, int]:
        raise NotImplementedError

    def _require_data(self) -> None:
        raise NotImplementedError

    # -- lowering -----------------------------------------------------------------

    def lower(self, *, plan: BoostingPlan | None = None,
              replicas: int = 1) -> SketchProgram:
        """Compile this estimator into a :class:`SketchProgram`."""
        from repro.core.boosting import split_instances

        left_count, right_count = self._counts()
        return SketchProgram(
            terms=self._program_terms(),
            num_instances=self._num_instances,
            plan=plan or self._plan or split_instances(self._num_instances),
            left_count=left_count,
            right_count=right_count,
            replicas=replicas,
        )

    def lower_batch(self, queries, *, plan: BoostingPlan | None = None
                    ) -> list[SketchProgram]:
        """Compile a batch request (a count or ``None`` placeholders).

        Query-less batches share one set of per-instance values, so the
        whole batch compiles to a single program with ``replicas`` set.
        """
        count = batch_request_count(0 if queries is None else queries)
        if count == 0:
            return []
        self._require_data()
        return [self.lower(plan=plan, replicas=count)]

    # -- estimation ---------------------------------------------------------------

    def instance_values(self) -> np.ndarray:
        """The per-instance estimator values Z (before boosting)."""
        return default_executor().run_values([self.lower()])[0]

    def estimate(self, *, plan: BoostingPlan | None = None) -> EstimateResult:
        """Boosted estimate from the compiled program."""
        self._require_data()
        return default_executor().run([self.lower(plan=plan)])[0]

    def estimate_batch(self, queries=None, *, plan: BoostingPlan | None = None
                       ) -> list[EstimateResult]:
        """A batch of boosted estimates (all of the same join).

        ``queries`` is an integer count or a sequence of ``None`` entries
        (these families take no per-query argument — the uniform signature
        exists so the service layer can batch mixed estimator families
        through one API).  The program is evaluated *once* for the whole
        batch; every returned result is bit-identical to a scalar
        :meth:`estimate` call and owns its own arrays.
        """
        return default_executor().run(self.lower_batch(queries, plan=plan))

    def estimate_cardinality(self) -> float:
        """Shorthand returning only the boosted cardinality estimate."""
        return self.estimate().estimate

    def estimate_selectivity(self) -> float:
        """Shorthand returning only the boosted selectivity estimate."""
        return self.estimate().selectivity


# -- introspection ------------------------------------------------------------------


def letter_cover_size(ref: LetterSumRef) -> int:
    """How many xi variables the letter sum of ``ref`` touches.

    This is the size of the letter-specific dyadic cover — the quantity the
    paper's update/query cost analysis counts (O(d log n) per box).
    """
    dyadic = ref.bank.domain.dyadic(ref.dim)
    lows = np.asarray([ref.low], dtype=np.int64)
    highs = np.asarray([ref.high], dtype=np.int64)
    if ref.letter is Letter.INTERVAL:
        _, lengths = dyadic.covers(lows, highs)
        return int(lengths[0])
    if ref.letter is Letter.ENDPOINTS:
        _, low_lengths = dyadic.point_covers(lows)
        _, high_lengths = dyadic.point_covers(highs)
        return int(low_lengths[0] + high_lengths[0])
    if ref.letter is Letter.LOWER_POINT:
        _, lengths = dyadic.point_covers(lows)
        return int(lengths[0])
    if ref.letter is Letter.UPPER_POINT:
        _, lengths = dyadic.point_covers(highs)
        return int(lengths[0])
    # Leaf letters touch exactly one level-0 variable.
    return 1


def _word_text(word: Word) -> str:
    return "".join(str(letter) for letter in word)


def describe_program(program: SketchProgram) -> dict:
    """A JSON-friendly description of one compiled program.

    Used by ``repro-spatial estimate --explain`` to show what an estimate
    *is*: the word products and coefficients, the letter-sum requests with
    their dyadic cover sizes, and the reduction plan.
    """
    terms = []
    for term in program.terms:
        terms.append({
            "coefficient": term.coefficient,
            "counters": [_word_text(ref.word) for ref in term.counters],
            "letter_sums": [
                {"dim": ref.dim, "letter": str(ref.letter),
                 "interval": [ref.low, ref.high]}
                for ref in term.letter_sums
            ],
        })
    requests = []
    seen: set[tuple] = set()
    for ref in program.letter_sum_refs:
        key = ref.key
        if key in seen:
            continue
        seen.add(key)
        requests.append({
            "dim": ref.dim,
            "letter": str(ref.letter),
            "interval": [ref.low, ref.high],
            "cover_size": letter_cover_size(ref),
        })
    plan = program.plan
    return {
        "num_instances": program.num_instances,
        "terms": terms,
        "letter_sum_requests": requests,
        "reduction": {
            "group_size": plan.group_size,
            "num_groups": plan.num_groups,
            "total_instances": plan.total_instances,
        },
        "replicas": program.replicas,
        "left_count": program.left_count,
        "right_count": program.right_count,
    }
