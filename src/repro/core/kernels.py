"""Optional compiled reduction kernels for the letter-sum hot path.

The fused letter-sum evaluation in :mod:`repro.core.atomic` has two inner
reductions: summing xi signs over the variable-length dyadic covers of a
box batch (``segment``), and over the fixed-length point covers of a
coordinate batch (``point``).  The NumPy form materialises the full
``(num_families, total_cover_ids)`` sign matrix and then reduces it; when
a bank has a precomputed sign table, both steps fuse into one pass that
reads table bytes and accumulates integers — which is what the kernels
here do, compiled with `numba <https://numba.pydata.org>`_ when it is
importable.

numba is strictly optional.  When it is missing (or disabled via the
``REPRO_DISABLE_NUMBA`` environment variable, which CI uses to pin the
fallback), every entry point returns ``False`` and callers take the pure
NumPy route.  Both routes are bit-identical: the signs are ±1 integers,
their partial sums stay far below 2^53, and a float64 store of an exact
integer is exact — so a sketch built under numba and one built without it
hold byte-for-byte equal counters (the equivalence tests pin this).
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import SketchConfigError


def _load_numba():
    """Import numba unless absent or explicitly disabled."""
    if os.environ.get("REPRO_DISABLE_NUMBA"):
        return None
    try:
        import numba
    except ImportError:
        return None
    return numba


_numba = _load_numba()

#: Whether the compiled fast path is available in this process.
HAVE_NUMBA = _numba is not None


if HAVE_NUMBA:

    @_numba.njit(cache=True, parallel=True)
    def _tensor_add_kernel(base, delta, out):  # pragma: no cover - compiled
        for row in _numba.prange(base.shape[0]):
            for col in range(base.shape[1]):
                out[row, col] = base[row, col] + delta[row, col]

    @_numba.njit(cache=True, parallel=True)
    def _segment_sums_kernel(table, ids, starts, lengths, out):  # pragma: no cover - compiled
        for family in _numba.prange(table.shape[0]):
            row = table[family]
            for box in range(starts.shape[0]):
                acc = 0
                base = starts[box]
                for step in range(lengths[box]):
                    acc += row[ids[base + step]]
                out[family, box] = acc

    @_numba.njit(cache=True, parallel=True)
    def _point_sums_kernel(table, ids, per_point, out):  # pragma: no cover - compiled
        for family in _numba.prange(table.shape[0]):
            row = table[family]
            for point in range(out.shape[1]):
                acc = 0
                base = point * per_point
                for step in range(per_point):
                    acc += row[ids[base + step]]
                out[family, point] = acc


def _check_ids(ids: np.ndarray, universe_size: int) -> None:
    # The compiled kernels index the table without bounds checks, so the
    # range check is load-bearing for memory safety, not just diagnostics.
    # Same message as FourWiseFamilyBank._check_ids — callers see one
    # error regardless of which evaluation path served them.
    if ids.size and (ids.min() < 0 or ids.max() >= universe_size):
        raise SketchConfigError(
            f"ids must be within [0, {universe_size}), "
            f"got range [{ids.min()}, {ids.max()}]"
        )


def tensor_add(base: np.ndarray, delta: np.ndarray, out: np.ndarray) -> None:
    """Out-of-place counter-tensor addition: ``out[:] = base + delta``.

    The delta-propagation fast path refreshes a cached merged view by adding
    a compact delta tensor to the cached counters in a *single* fused pass —
    neither input is mutated, so in-flight estimator runs reading the cached
    view are never torn.  Elementwise float64 addition of exact integers is
    exact in any path, so the compiled and NumPy variants are bit-identical
    (and both equal a from-scratch shard re-merge, by linearity).
    """
    if HAVE_NUMBA and base.ndim == 2 and base.flags.c_contiguous \
            and delta.flags.c_contiguous and out.flags.c_contiguous:
        _tensor_add_kernel(base, delta, out)
        return
    np.add(base, delta, out=out)


def segment_sums_from_table(table: np.ndarray, ids: np.ndarray,
                            starts: np.ndarray, lengths: np.ndarray,
                            out: np.ndarray) -> bool:
    """Fused gather+reduce over variable-length cover segments.

    ``out[f, j]`` receives ``sum(table[f, ids[starts[j] : starts[j] +
    lengths[j]]])`` as an exact float64.  Returns ``False`` (leaving
    ``out`` untouched) when the compiled path is unavailable.
    """
    if not HAVE_NUMBA:
        return False
    ids = np.ascontiguousarray(ids, dtype=np.int64)
    _check_ids(ids, table.shape[1])
    _segment_sums_kernel(table, ids, starts, lengths, out)
    return True


def point_sums_from_table(table: np.ndarray, ids: np.ndarray,
                          per_point: int, out: np.ndarray) -> bool:
    """Fused gather+reduce over fixed-length point covers.

    ``out[f, j]`` receives ``sum(table[f, ids[j*per_point : (j+1) *
    per_point]])``.  Returns ``False`` when the compiled path is
    unavailable.
    """
    if not HAVE_NUMBA:
        return False
    ids = np.ascontiguousarray(ids, dtype=np.int64)
    _check_ids(ids, table.shape[1])
    _point_sums_kernel(table, ids, np.int64(per_point), out)
    return True
