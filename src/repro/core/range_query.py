"""Range-query selectivity estimation (Section 6.4, Lemma 9).

A range query selects every hyper-rectangle of R that overlaps the query
hyper-rectangle ``q``.  Because the query is known at estimation time, only
the data set needs to be sketched.  Per dimension, an interval ``[a, b]`` of
R overlaps the query range ``[u, v]`` iff

    (b lies in [u, v])   XOR-free or   (v lies in [a, b]),

two mutually exclusive conditions that together cover all overlap cases.
Hence two atomic sketches per dimension suffice: ``X_I`` (interval cover)
and ``X_U`` (upper-endpoint point cover), and per instance

    Z = sum over words w in {I, U}^d of
            prod_i q_i(w[i]) * X_w

where ``q_i(U)`` is the xi sum over the dyadic cover of the query range in
dimension ``i`` and ``q_i(I)`` is the xi sum over the point cover of the
query's upper endpoint ``v_i``.

Note on boundaries: the counting conditions use closed containment, so a
data rectangle that merely *touches* the query rectangle is counted as
selected.  This matches the common "window query" semantics; pass
``strict=True`` to :meth:`RangeQueryEstimator.estimate` to apply the
endpoint transformation and reproduce the strict Definition 1 semantics.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.atomic import Letter, SketchBank, Word, all_words
from repro.core.boosting import BoostingPlan, split_instances
from repro.core.domain import Domain, EndpointTransform
from repro.core.program import (
    CounterRef,
    LetterSumRef,
    ProgramTerm,
    SketchProgram,
    default_executor,
)
from repro.core.result import EstimateResult
from repro.errors import (
    DimensionalityError,
    EstimationError,
    MergeCompatibilityError,
    SketchConfigError,
)
from repro.geometry.boxset import BoxSet
from repro.geometry.rectangle import Rect


class RangeQueryEstimator:
    """Estimates ``|Q(q, R)|``, the number of rectangles of R overlapping ``q``.

    Parameters
    ----------
    domain:
        The data space.
    num_instances:
        Number of independent atomic-sketch instances.
    strict:
        When True, the Section 5.2 endpoint transformation is applied so
        that touching rectangles are *not* counted (Definition 1 semantics).
        When False (default), closed-overlap semantics are used.
    """

    def __init__(self, domain: Domain, num_instances: int, *, seed=0, strict: bool = False,
                 boosting: BoostingPlan | None = None) -> None:
        if num_instances < 1:
            raise SketchConfigError("at least one atomic-sketch instance is required")
        self._original_domain = domain
        self._plan = boosting
        self._num_instances = int(num_instances)
        self._strict = bool(strict)
        self._transform = EndpointTransform(domain) if strict else None
        self._sketch_domain = (self._transform.expanded_domain
                               if self._transform is not None else domain)
        self._words = all_words([Letter.INTERVAL, Letter.UPPER_POINT], domain.dimension)
        self._bank = SketchBank(self._sketch_domain, self._words, num_instances, seed=seed)
        self._count = 0

    # -- introspection ----------------------------------------------------------------

    @property
    def domain(self) -> Domain:
        return self._original_domain

    @property
    def dimension(self) -> int:
        return self._original_domain.dimension

    @property
    def num_instances(self) -> int:
        return self._num_instances

    @property
    def count(self) -> int:
        """Current cardinality of the summarised relation."""
        return self._count

    @property
    def bank(self) -> SketchBank:
        return self._bank

    # -- updates -------------------------------------------------------------------------

    def _prepare(self, boxes: BoxSet) -> BoxSet:
        if self._transform is None:
            return boxes
        # Data rectangles play the role of the shrunk (S) side so that a data
        # rectangle touching the query no longer overlaps it.
        return self._transform.transform_right(boxes)

    def insert(self, boxes: BoxSet) -> None:
        self._bank.insert(self._prepare(boxes))
        self._count += len(boxes)

    def delete(self, boxes: BoxSet) -> None:
        self._bank.insert(self._prepare(boxes), weight=-1.0)
        self._count -= len(boxes)


    # -- composition and persistence ----------------------------------------------------

    def merge(self, other: "RangeQueryEstimator") -> None:
        """Fold another estimator over a disjoint partition into this one."""
        if type(other) is not type(self):
            raise MergeCompatibilityError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )
        if other._strict != self._strict:
            raise MergeCompatibilityError(
                "cannot merge strict and non-strict range-query estimators"
            )
        self._bank.check_merge_compatible(other._bank)
        self._bank.merge(other._bank)
        self._count += other._count

    def state_dict(self, *, arrays: bool = False) -> dict:
        """A snapshot of the bank and the input count.

        ``arrays=True`` keeps the counters as a contiguous tensor (the
        binary-snapshot form); the default is the v1 JSON form.
        """
        return {
            "strict": self._strict,
            "bank": self._bank.state_dict(arrays=arrays),
            "count": self._count,
        }

    def load_state_dict(self, state, *, copy: bool = True) -> None:
        """Restore a snapshot captured by :meth:`state_dict`."""
        if bool(state["strict"]) != self._strict:
            raise MergeCompatibilityError("snapshot was taken with a different strict setting")
        self._bank.load_state_dict(state["bank"], copy=copy)
        self._count = int(state["count"])

    # -- estimation -----------------------------------------------------------------------

    def _query_box(self, query: Rect | BoxSet) -> BoxSet:
        if isinstance(query, Rect):
            query = BoxSet.from_rects([query])
        if len(query) != 1:
            raise SketchConfigError("a range query consists of exactly one rectangle")
        if query.dimension != self.dimension:
            raise DimensionalityError("query dimensionality does not match the domain")
        if self._transform is not None:
            query = self._transform.transform_query(query)
        return query

    def _query_word(self, word: Word) -> Word:
        """The query-side word paired with a counter word (I <-> U flip)."""
        return tuple(
            Letter.INTERVAL if letter is Letter.UPPER_POINT else Letter.UPPER_POINT
            for letter in word
        )

    # -- lowering -----------------------------------------------------------------------

    def lower(self, queries: Rect | BoxSet | Sequence[Rect | BoxSet], *,
              plan: BoostingPlan | None = None) -> list[SketchProgram]:
        """Compile a batch of range queries into sketch programs.

        Program ``j`` lowers query ``j`` to one term per counter word:
        the word's counter times the per-dimension letter sums of the
        *query-side* word (the I <-> U flip), over the (possibly
        endpoint-transformed) query coordinates.
        """
        return self._lower_prepared(self._query_batch(queries), plan=plan)

    def lower_batch(self, queries, *, plan: BoostingPlan | None = None
                    ) -> list[SketchProgram]:
        """Batch-request lowering with the historical guards (service entry)."""
        if not isinstance(queries, Rect) and not len(queries):
            return []
        if self._count == 0 and self._bank.num_updates == 0:
            raise EstimationError("estimate requested before any data was inserted")
        return self.lower(queries, plan=plan)

    def _lower_prepared(self, query_boxes: BoxSet,
                        plan: BoostingPlan | None) -> list[SketchProgram]:
        """Programs for already-transformed queries (one per box row)."""
        self._bank.domain.validate_boxes(query_boxes, what="query boxes")
        plan = plan or self._plan or split_instances(self._num_instances)
        pairs = [(word, self._query_word(word)) for word in self._words]
        lows = query_boxes.lows
        highs = query_boxes.highs
        programs: list[SketchProgram] = []
        for row in range(len(query_boxes)):
            terms = tuple(
                ProgramTerm(
                    1.0,
                    counters=(CounterRef(self._bank, word),),
                    letter_sums=tuple(
                        LetterSumRef(self._bank, dim, query_word[dim],
                                     int(lows[row, dim]), int(highs[row, dim]))
                        for dim in range(self.dimension)
                    ),
                )
                for word, query_word in pairs
            )
            programs.append(SketchProgram(
                terms=terms,
                num_instances=self._num_instances,
                plan=plan,
                left_count=self._count,
                right_count=1,
            ))
        return programs

    # -- estimation ---------------------------------------------------------------------

    def instance_values(self, query: Rect | BoxSet) -> np.ndarray:
        program = self._lower_prepared(self._query_box(query), plan=None)[0]
        return default_executor().run_values([program])[0]

    def _query_batch(self, queries: Rect | BoxSet | Sequence[Rect | BoxSet]) -> BoxSet:
        """Normalise a batch of queries to one (validated) BoxSet."""
        if isinstance(queries, Rect):
            queries = BoxSet.from_rects([queries])
        elif not isinstance(queries, BoxSet):
            rects = []
            for query in queries:
                if isinstance(query, BoxSet):
                    if len(query) != 1:
                        raise SketchConfigError(
                            "each query of a batch must be exactly one rectangle"
                        )
                    rects.extend(query.to_rects())
                else:
                    rects.append(query)
            queries = BoxSet.from_rects(rects)
        if queries.dimension != self.dimension:
            raise DimensionalityError("query dimensionality does not match the domain")
        if self._transform is not None:
            queries = self._transform.transform_query(queries)
        return queries

    def instance_values_batch(self, queries: Rect | BoxSet | Sequence[Rect | BoxSet]
                              ) -> np.ndarray:
        """Per-instance estimator values for a whole query batch.

        Returns a ``(num_queries, num_instances)`` matrix whose row ``j`` is
        bit-identical to ``instance_values(queries[j])``; the dyadic covers
        and xi sums of all queries are computed in single NumPy kernels.
        """
        programs = self._lower_prepared(self._query_batch(queries), plan=None)
        matrix = np.empty((len(programs), self._num_instances), dtype=np.float64)
        for row, values in enumerate(default_executor().run_values(programs)):
            matrix[row] = values
        return matrix

    def estimate(self, query: Rect | BoxSet, *, plan: BoostingPlan | None = None
                 ) -> EstimateResult:
        """Boosted estimate of the number of rectangles selected by ``query``."""
        if self._count == 0 and self._bank.num_updates == 0:
            raise EstimationError("estimate requested before any data was inserted")
        program = self._lower_prepared(self._query_box(query), plan=plan)[0]
        return default_executor().run([program])[0]

    #: Queries per vectorised executor round; keeps the per-(dim, letter)
    #: xi-sum matrices (num_instances x chunk) bounded while large batches
    #: stream.
    _BATCH_CHUNK = 4096

    def estimate_batch(self, queries: Rect | BoxSet | Sequence[Rect | BoxSet], *,
                       plan: BoostingPlan | None = None) -> list[EstimateResult]:
        """Boosted estimates for a whole batch of range queries.

        Result ``j`` is bit-identical to ``estimate(queries[j])`` — the same
        xi sums, the same word/dimension accumulation order and the same
        median-of-means grouping — but the batch lowers to one program per
        query and runs on the shared
        :class:`~repro.core.program.ProgramExecutor`: identical letter-sum
        requests are computed once per batch, programs evaluate as matrix
        kernels, and the boosting runs as one median-of-instances reduction
        per batch (see :func:`~repro.core.boosting.median_of_means_batch`).
        """
        return default_executor().run(self.lower_batch(queries, plan=plan),
                                      chunk_size=self._BATCH_CHUNK)

    def estimate_cardinality(self, query: Rect | BoxSet) -> float:
        return self.estimate(query).estimate

    def estimate_selectivity(self, query: Rect | BoxSet) -> float:
        """Estimated fraction of rectangles selected by ``query``."""
        return self.estimate(query).selectivity
