"""Data-space handling: multi-dimensional domains, real-valued data, and the
common-endpoint transformation.

Three concerns from the paper live here:

* :class:`Domain` — a d-dimensional finite integer data space
  ``N^d = {0..n_1-1} x ... x {0..n_d-1}`` (Section 2.1), possibly with
  per-dimension ``max_level`` restrictions (Section 6.5).
* :class:`Quantizer` — mapping real-valued coordinates onto a finite integer
  grid (Section 5.1: "typically real-valued coordinates are stored as 32 or
  64 bit floating point numbers — clearly a finite domain").
* :class:`EndpointTransform` — the Section 5.2 refinement that inserts two
  synthetic coordinates between every pair of consecutive domain values and
  shrinks the right-hand join input so that Assumption 1 (no common
  endpoints) holds.  Coordinates are multiplied by 3; right-hand lower
  endpoints become ``3*lo + 1`` and upper endpoints ``3*hi - 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DimensionalityError, DomainError
from repro.core.dyadic import DyadicDomain
from repro.geometry.boxset import BoxSet, PointSet


class Domain:
    """A d-dimensional integer data space."""

    __slots__ = ("_dyadic",)

    def __init__(self, sizes: Sequence[int] | int, *,
                 max_levels: Sequence[int | None] | int | None = None) -> None:
        if isinstance(sizes, (int, np.integer)):
            sizes = (int(sizes),)
        sizes = tuple(int(s) for s in sizes)
        if not sizes:
            raise DimensionalityError("a domain needs at least one dimension")
        if max_levels is None or isinstance(max_levels, (int, np.integer)):
            max_levels = (max_levels,) * len(sizes)
        max_levels = tuple(max_levels)
        if len(max_levels) != len(sizes):
            raise DimensionalityError("max_levels must match the number of dimensions")
        self._dyadic = tuple(
            DyadicDomain(size, max_level=None if ml is None else int(ml))
            for size, ml in zip(sizes, max_levels)
        )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def square(cls, size: int, dimension: int, *, max_level: int | None = None) -> "Domain":
        """A domain with the same size in every dimension."""
        return cls((size,) * dimension, max_levels=max_level)

    @classmethod
    def for_boxes(cls, *box_sets: BoxSet, max_level: int | None = None,
                  slack: int = 1) -> "Domain":
        """The smallest domain that contains every box of the given sets."""
        non_empty = [b for b in box_sets if len(b)]
        if not non_empty:
            raise DomainError("cannot infer a domain from empty box sets")
        dim = non_empty[0].dimension
        if any(b.dimension != dim for b in non_empty):
            raise DimensionalityError("box sets have different dimensionality")
        sizes = [0] * dim
        for boxes in non_empty:
            if boxes.min_coordinate() < 0:
                raise DomainError("boxes contain negative coordinates; quantize first")
            per_dim = boxes.highs.max(axis=0) + 1
            sizes = [max(s, int(p)) for s, p in zip(sizes, per_dim)]
        return cls([s + slack - 1 for s in sizes], max_levels=max_level)

    # -- accessors --------------------------------------------------------------

    @property
    def dimension(self) -> int:
        return len(self._dyadic)

    @property
    def sizes(self) -> tuple[int, ...]:
        """Padded per-dimension sizes (powers of two)."""
        return tuple(d.size for d in self._dyadic)

    @property
    def requested_sizes(self) -> tuple[int, ...]:
        return tuple(d.requested_size for d in self._dyadic)

    def dyadic(self, dimension: int) -> DyadicDomain:
        """The dyadic structure of the given dimension."""
        return self._dyadic[dimension]

    @property
    def dyadics(self) -> tuple[DyadicDomain, ...]:
        return self._dyadic

    def with_max_level(self, max_level: int | None) -> "Domain":
        """A copy with a uniform level restriction in every dimension."""
        return Domain(self.requested_sizes, max_levels=max_level)

    def signature(self) -> tuple[tuple[int, int], ...]:
        """Per-dimension ``(requested_size, max_level)`` pairs.

        Two domains with equal signatures induce identical dyadic
        decompositions, which is the precondition for merging sketches
        built over them.
        """
        return tuple((d.requested_size, d.max_level) for d in self._dyadic)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Domain):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def contains(self, boxes: BoxSet) -> bool:
        """True if every box fits inside the (padded) domain."""
        if boxes.dimension != self.dimension:
            return False
        if len(boxes) == 0:
            return True
        sizes = np.asarray(self.sizes, dtype=np.int64)
        return bool(np.all(boxes.lows >= 0) and np.all(boxes.highs < sizes))

    def validate_boxes(self, boxes: BoxSet, *, what: str = "boxes") -> None:
        if boxes.dimension != self.dimension:
            raise DimensionalityError(
                f"{what} are {boxes.dimension}-dimensional but the domain is "
                f"{self.dimension}-dimensional"
            )
        if not self.contains(boxes):
            raise DomainError(f"{what} contain coordinates outside the domain {self.sizes}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Domain(sizes={self.sizes})"


@dataclass(frozen=True)
class Quantizer:
    """Maps real-valued boxes onto an integer grid of a given resolution.

    Section 5.1: sketches need a finite domain; real data is quantised onto
    ``resolution`` cells per dimension.  Quantisation is conservative for
    joins in the sense that the lower endpoint is floored and the upper
    endpoint is also floored (both endpoints land on the grid cell that
    contains them), so objects keep their relative arrangement.
    """

    lower_bounds: tuple[float, ...]
    upper_bounds: tuple[float, ...]
    resolution: int

    def __post_init__(self) -> None:
        if self.resolution < 2:
            raise DomainError("resolution must be at least 2")
        if len(self.lower_bounds) != len(self.upper_bounds):
            raise DimensionalityError("bound dimensionality mismatch")
        for lo, hi in zip(self.lower_bounds, self.upper_bounds):
            if not lo < hi:
                raise DomainError(f"invalid bounds [{lo}, {hi}]")

    @property
    def dimension(self) -> int:
        return len(self.lower_bounds)

    def domain(self, *, max_level: int | None = None) -> Domain:
        """The integer domain that quantised data lives in."""
        return Domain((self.resolution,) * self.dimension, max_levels=max_level)

    def _scale(self, values: np.ndarray) -> np.ndarray:
        lows = np.asarray(self.lower_bounds, dtype=np.float64)
        highs = np.asarray(self.upper_bounds, dtype=np.float64)
        scaled = (values - lows) / (highs - lows) * self.resolution
        cells = np.floor(scaled).astype(np.int64)
        return np.clip(cells, 0, self.resolution - 1)

    def quantize_boxes(self, lows, highs) -> BoxSet:
        """Quantise real-valued boxes given as ``(n, d)`` float arrays."""
        lows = np.atleast_2d(np.asarray(lows, dtype=np.float64))
        highs = np.atleast_2d(np.asarray(highs, dtype=np.float64))
        if lows.shape[1] != self.dimension:
            raise DimensionalityError("box dimensionality does not match the quantizer")
        qlo = self._scale(lows)
        qhi = self._scale(highs)
        return BoxSet(qlo, np.maximum(qlo, qhi), validate=False)

    def quantize_points(self, coords) -> PointSet:
        coords = np.atleast_2d(np.asarray(coords, dtype=np.float64))
        if coords.shape[1] != self.dimension:
            raise DimensionalityError("point dimensionality does not match the quantizer")
        return PointSet(self._scale(coords))


class EndpointTransform:
    """The Section 5.2 domain refinement that removes common endpoints.

    The left (R) input keeps its coordinates, merely scaled by 3; the right
    (S) input is "shrunk a little": lower endpoints move to ``3*lo + 1`` and
    upper endpoints to ``3*hi - 1``.  Overlap relationships between R and S
    objects are preserved exactly (``overlap(r, s) <=> overlap(r, s')``),
    but no transformed S endpoint can coincide with a transformed R endpoint,
    so Assumption 1 holds and the plain join estimators apply.
    """

    FACTOR = 3

    def __init__(self, domain: Domain) -> None:
        self._original = domain
        self._expanded = Domain(
            tuple(size * self.FACTOR for size in domain.requested_sizes),
            max_levels=tuple(
                None if d.max_level == d.height else min(d.max_level + 2, 63)
                for d in domain.dyadics
            ),
        )

    @property
    def original_domain(self) -> Domain:
        return self._original

    @property
    def expanded_domain(self) -> Domain:
        """The refined domain the sketches are actually built over."""
        return self._expanded

    def transform_left(self, boxes: BoxSet) -> BoxSet:
        """Scale the left-input coordinates (no shrinking)."""
        return boxes.scaled(self.FACTOR)

    def transform_right(self, boxes: BoxSet) -> BoxSet:
        """Scale and shrink the right-input coordinates."""
        return boxes.shrunk_for_endpoint_transform()

    def transform_query(self, boxes: BoxSet) -> BoxSet:
        """Scale a query rectangle like the left input."""
        return boxes.scaled(self.FACTOR)
