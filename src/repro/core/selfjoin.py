"""Self-join sizes ``SJ(X_w)`` of atomic sketches.

The variance bounds of Sections 4.1.4, 4.2.1 and 6 are expressed in terms
of the self-join sizes of the atomic sketches:

    SJ(X_w) = E[X_w^2] = sum over dyadic cells (delta_1, ..., delta_d) of
              f_w(delta_1, ..., delta_d)^2

where ``f_w`` counts (with multiplicity) how often a dyadic cell appears in
the letter-specific covers of the dataset's objects.  Together with
``SJ(R) = sum_w SJ(X_w)``, these quantities size the sketches for a target
(epsilon, phi) guarantee (Theorems 1-3).

Two ways of obtaining them are provided:

* :func:`self_join_size` — exact computation from the dataset (used by the
  Figure 7/8 experiments and by tests),
* :func:`estimate_self_join` — the AMS estimate ``mean(X_w^2)`` computed from
  an existing :class:`~repro.core.atomic.SketchBank`, usable when the data
  is only seen as a stream.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.atomic import Letter, SketchBank, Word, all_words
from repro.core.domain import Domain
from repro.errors import DimensionalityError
from repro.geometry.boxset import BoxSet


def _letter_cover_ids(domain: Domain, dim: int, letter: Letter, lows: np.ndarray,
                      highs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flat cover ids and per-box lengths for one dimension and letter."""
    dyadic = domain.dyadic(dim)
    if letter is Letter.INTERVAL:
        return dyadic.covers(lows, highs)
    if letter is Letter.ENDPOINTS:
        low_ids, low_len = dyadic.point_covers(lows)
        high_ids, high_len = dyadic.point_covers(highs)
        per_point = int(low_len[0]) if len(low_len) else dyadic.max_level + 1
        low_ids = low_ids.reshape(len(lows), per_point)
        high_ids = high_ids.reshape(len(highs), per_point)
        combined = np.concatenate([low_ids, high_ids], axis=1)
        return combined.reshape(-1), np.full(len(lows), 2 * per_point, dtype=np.int64)
    if letter is Letter.LOWER_POINT:
        return dyadic.point_covers(lows)
    if letter is Letter.UPPER_POINT:
        return dyadic.point_covers(highs)
    if letter is Letter.LOWER_LEAF:
        ids = dyadic.size - 1 + np.asarray(lows, dtype=np.int64)
        return ids, np.ones(len(lows), dtype=np.int64)
    if letter is Letter.UPPER_LEAF:
        ids = dyadic.size - 1 + np.asarray(highs, dtype=np.int64)
        return ids, np.ones(len(highs), dtype=np.int64)
    raise ValueError(f"unknown letter {letter!r}")


def self_join_size(boxes: BoxSet, domain: Domain, word: Word) -> float:
    """Exact ``SJ(X_w)`` of the atomic sketch for ``word`` over ``boxes``.

    The computation enumerates, per box, the cross product of the per-
    dimension cover id lists (with multiplicity) and counts how often each
    dyadic cell is hit across the whole dataset.
    """
    word = tuple(word)
    if len(word) != domain.dimension:
        raise DimensionalityError("word dimensionality does not match the domain")
    if boxes.dimension != domain.dimension:
        raise DimensionalityError("boxes dimensionality does not match the domain")
    if len(boxes) == 0:
        return 0.0

    per_dim_ids: list[np.ndarray] = []
    per_dim_lengths: list[np.ndarray] = []
    for dim, letter in enumerate(word):
        ids, lengths = _letter_cover_ids(domain, dim, letter, boxes.lows[:, dim],
                                         boxes.highs[:, dim])
        per_dim_ids.append(ids)
        per_dim_lengths.append(lengths)

    # Encode dyadic-cell tuples as a single integer key per cell.
    strides = []
    stride = 1
    for dim in reversed(range(domain.dimension)):
        strides.append(stride)
        stride *= domain.dyadic(dim).num_nodes
    strides = list(reversed(strides))

    keys_parts: list[np.ndarray] = []
    offsets = [np.concatenate([[0], np.cumsum(lengths)]) for lengths in per_dim_lengths]
    for box in range(len(boxes)):
        cell_keys = np.zeros(1, dtype=np.int64)
        for dim in range(domain.dimension):
            ids = per_dim_ids[dim][offsets[dim][box]:offsets[dim][box + 1]]
            cell_keys = (cell_keys[:, None] + ids[None, :] * strides[dim]).reshape(-1)
        keys_parts.append(cell_keys)
    keys = np.concatenate(keys_parts)
    _, counts = np.unique(keys, return_counts=True)
    return float(np.sum(counts.astype(np.float64) ** 2))


def dataset_self_join_size(boxes: BoxSet, domain: Domain,
                           words: Sequence[Word] | None = None) -> float:
    """``SJ(R) = sum_w SJ(X_w)`` over the standard join words ``{I, E}^d``.

    A different word set can be supplied for the extended estimators.
    """
    if words is None:
        words = all_words([Letter.INTERVAL, Letter.ENDPOINTS], domain.dimension)
    return float(sum(self_join_size(boxes, domain, word) for word in words))


def estimate_self_join(bank: SketchBank, word: Word) -> float:
    """AMS estimate of ``SJ(X_w)`` from an existing sketch bank.

    ``X_w^2`` is an unbiased estimator of the self-join size (Section 2.2),
    so averaging it over the bank's instances yields an estimate that can be
    used for sizing without a second pass over the data.
    """
    values = bank.counter(word)
    return float(np.mean(values ** 2))


def estimate_dataset_self_join(bank: SketchBank,
                               words: Sequence[Word] | None = None) -> float:
    """Sketch-based estimate of ``SJ(R)`` (sum over the bank's join words)."""
    if words is None:
        words = [w for w in bank.words
                 if all(letter in (Letter.INTERVAL, Letter.ENDPOINTS) for letter in w)]
    return float(sum(estimate_self_join(bank, word) for word in words))
