"""The paper's primary contribution: sketches for spatial data.

Public entry points re-exported here:

* :class:`~repro.core.dyadic.DyadicDomain` — dyadic decomposition of a domain.
* :class:`~repro.core.atomic.SketchBank` — banks of atomic spatial sketches.
* Join / query estimators:
  :class:`~repro.core.join_interval.IntervalJoinEstimator`,
  :class:`~repro.core.join_rect.RectangleJoinEstimator`,
  :class:`~repro.core.join_hyperrect.SpatialJoinEstimator`,
  :class:`~repro.core.join_extended.ExtendedOverlapJoinEstimator`,
  :class:`~repro.core.join_extended.CommonEndpointJoinEstimator`,
  :class:`~repro.core.join_containment.ContainmentJoinEstimator`,
  :class:`~repro.core.epsilon_join.EpsilonJoinEstimator`,
  :class:`~repro.core.range_query.RangeQueryEstimator`.
* The compiled-program layer in :mod:`repro.core.program`:
  :class:`~repro.core.program.SketchProgram` (the shared estimator IR every
  family lowers to) and :class:`~repro.core.program.ProgramExecutor` (the
  vectorised executor with cross-query letter-sum sharing).
* Boosting helpers in :mod:`repro.core.boosting` and space accounting in
  :mod:`repro.core.space`.
"""

from repro.core.hashing import FourWiseFamilyBank, stable_seed_offset, stable_text_hash
from repro.core.dyadic import DyadicDomain
from repro.core.domain import Domain, EndpointTransform, Quantizer
from repro.core.atomic import Letter, SketchBank
from repro.core.boosting import (
    BoostingPlan,
    median_of_means,
    median_of_means_batch,
    plan_boosting,
)
from repro.core.program import (
    CounterRef,
    LetterSumRef,
    ProgramExecutor,
    ProgramTerm,
    SketchProgram,
    default_executor,
    describe_program,
)
from repro.core.selfjoin import self_join_size, dataset_self_join_size
from repro.core.join_interval import IntervalJoinEstimator
from repro.core.join_rect import RectangleJoinEstimator
from repro.core.join_hyperrect import SpatialJoinEstimator
from repro.core.join_extended import (
    CommonEndpointJoinEstimator,
    ExtendedOverlapJoinEstimator,
)
from repro.core.join_containment import ContainmentJoinEstimator
from repro.core.epsilon_join import EpsilonJoinEstimator
from repro.core.range_query import RangeQueryEstimator
from repro.core.adaptive import choose_max_level
from repro.core.result import EstimateResult

__all__ = [
    "FourWiseFamilyBank",
    "stable_seed_offset",
    "stable_text_hash",
    "DyadicDomain",
    "Domain",
    "EndpointTransform",
    "Quantizer",
    "Letter",
    "SketchBank",
    "BoostingPlan",
    "median_of_means",
    "median_of_means_batch",
    "plan_boosting",
    "CounterRef",
    "LetterSumRef",
    "ProgramExecutor",
    "ProgramTerm",
    "SketchProgram",
    "default_executor",
    "describe_program",
    "self_join_size",
    "dataset_self_join_size",
    "IntervalJoinEstimator",
    "RectangleJoinEstimator",
    "SpatialJoinEstimator",
    "ExtendedOverlapJoinEstimator",
    "CommonEndpointJoinEstimator",
    "ContainmentJoinEstimator",
    "EpsilonJoinEstimator",
    "RangeQueryEstimator",
    "choose_max_level",
    "EstimateResult",
]
