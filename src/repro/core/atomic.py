"""Atomic spatial sketches (Sections 3.1 and 3.2).

An *atomic sketch* is a single randomized linear projection of a spatial
dataset.  For a d-dimensional dataset every atomic sketch instance keeps one
counter per *word* ``w``, where a word assigns a :class:`Letter` to every
dimension.  Inserting a hyper-rectangle ``r`` adds

    prod_i  s(i, w[i], r(i))

to the counter of word ``w``, where ``s(i, letter, [lo, hi])`` is the sum of
the dimension-``i`` xi variables over the letter-specific dyadic cover:

* ``INTERVAL``    — the dyadic cover of ``[lo, hi]``          (the paper's "I"),
* ``ENDPOINTS``   — point covers of both ``lo`` and ``hi``    (the paper's "E"),
* ``LOWER_POINT`` — point cover of ``lo`` only                (points / epsilon-join),
* ``UPPER_POINT`` — point cover of ``hi`` only                (range queries, X_U),
* ``LOWER_LEAF``  — the single level-0 variable at ``lo``     (Appendix B/C, X_L),
* ``UPPER_LEAF``  — the single level-0 variable at ``hi``     (Appendix B/C, X_U).

A :class:`SketchBank` holds ``num_instances`` independent atomic sketches
(each with its own xi families per dimension) and updates all of them with
vectorised NumPy operations.  The estimators in the sibling modules combine
word counters of two banks built over *shared* xi families.
"""

from __future__ import annotations

import threading
from enum import Enum
from typing import Mapping, Sequence

import numpy as np

from repro.errors import DimensionalityError, MergeCompatibilityError, SketchConfigError
from repro.core import kernels
from repro.core.domain import Domain
from repro.core.hashing import FourWiseFamilyBank, stack_xi_coefficients
from repro.geometry.boxset import BoxSet


class _Workspace(threading.local):
    """Per-thread scratch buffers for the letter-sum kernels.

    The letter-sum hot path needs an ``(instances, cover_ids)`` int8 sign
    matrix per call; allocating it fresh each time dominated small-batch
    profiles.  Buffers grow geometrically and are reused across calls.
    Thread-local because server executors evaluate banks from worker
    threads concurrently — sharing a buffer would corrupt results.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def buffer(self, name: str, count: int, dtype) -> np.ndarray:
        """A 1-D scratch array of exactly ``count`` elements."""
        dtype = np.dtype(dtype)
        existing = self._buffers.get(name)
        if existing is None or existing.dtype != dtype or existing.size < count:
            capacity = max(count, 1)
            if existing is not None and existing.dtype == dtype:
                capacity = max(capacity, 2 * existing.size)
            existing = np.empty(capacity, dtype=dtype)
            self._buffers[name] = existing
        return existing[:count]


_WORKSPACE = _Workspace()


class Letter(str, Enum):
    """Per-dimension sketching modes (see module docstring)."""

    INTERVAL = "I"
    ENDPOINTS = "E"
    LOWER_POINT = "P"
    UPPER_POINT = "U"
    LOWER_LEAF = "l"
    UPPER_LEAF = "u"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


Word = tuple[Letter, ...]


#: Letter complement used by the join estimators: I <-> E, leaf lower <-> leaf upper.
JOIN_COMPLEMENT: dict[Letter, Letter] = {
    Letter.INTERVAL: Letter.ENDPOINTS,
    Letter.ENDPOINTS: Letter.INTERVAL,
    Letter.LOWER_LEAF: Letter.UPPER_LEAF,
    Letter.UPPER_LEAF: Letter.LOWER_LEAF,
    Letter.LOWER_POINT: Letter.INTERVAL,
    Letter.UPPER_POINT: Letter.INTERVAL,
}


def complement_word(word: Word) -> Word:
    """The word ``w-bar`` obtained by complementing every letter."""
    return tuple(JOIN_COMPLEMENT[letter] for letter in word)


def all_words(letters: Sequence[Letter], dimension: int) -> list[Word]:
    """All ``len(letters)^dimension`` words over the given letters."""
    words: list[Word] = [()]
    for _ in range(dimension):
        words = [w + (letter,) for w in words for letter in letters]
    return words


class SketchBank:
    """A bank of ``num_instances`` atomic spatial sketches over one dataset.

    Parameters
    ----------
    domain:
        The d-dimensional data space (with optional maxLevel restrictions).
    words:
        The words whose counters are maintained.
    num_instances:
        Number of independent atomic sketches.
    seed:
        Seed for the xi families (ignored when ``xi_banks`` is given).
    xi_banks:
        Per-dimension :class:`FourWiseFamilyBank` objects to share with
        another bank (the two inputs of a join must share their families).
    """

    #: Upper bound on ``num_instances * ids_per_chunk`` for one vectorised step.
    _CHUNK_ELEMENT_BUDGET = 1 << 23

    def __init__(self, domain: Domain, words: Sequence[Word], num_instances: int,
                 *, seed=0, xi_banks: Sequence[FourWiseFamilyBank] | None = None) -> None:
        if num_instances < 1:
            raise SketchConfigError("a sketch bank needs at least one instance")
        words = [tuple(w) for w in words]
        if not words:
            raise SketchConfigError("a sketch bank needs at least one word")
        for word in words:
            if len(word) != domain.dimension:
                raise DimensionalityError(
                    f"word {word} has {len(word)} letters but the domain is "
                    f"{domain.dimension}-dimensional"
                )
            if not all(isinstance(letter, Letter) for letter in word):
                raise SketchConfigError(f"word {word} contains non-Letter entries")
        if len(set(words)) != len(words):
            raise SketchConfigError("duplicate words in sketch bank configuration")

        self._domain = domain
        self._words: tuple[Word, ...] = tuple(words)
        self._num_instances = int(num_instances)

        if xi_banks is None:
            rng = np.random.default_rng(seed)
            xi_banks = []
            for dim in range(domain.dimension):
                universe = domain.dyadic(dim).num_nodes
                xi_banks.append(FourWiseFamilyBank(num_instances, universe, rng))
        else:
            xi_banks = list(xi_banks)
            if len(xi_banks) != domain.dimension:
                raise SketchConfigError("one xi bank per dimension is required")
            for dim, bank in enumerate(xi_banks):
                if bank.num_families != num_instances:
                    raise SketchConfigError("xi banks disagree with num_instances")
                if bank.universe_size < domain.dyadic(dim).num_nodes:
                    raise SketchConfigError(
                        f"xi bank universe too small for dimension {dim}"
                    )
        self._xi: tuple[FourWiseFamilyBank, ...] = tuple(xi_banks)
        # All counters live in one contiguous (instances, words) tensor;
        # column j holds the per-instance counters of self._words[j].  Merges
        # and snapshots operate on the tensor as a whole, never word by word.
        self._word_index: dict[Word, int] = {
            word: index for index, word in enumerate(self._words)
        }
        self._matrix = np.zeros((self._num_instances, len(self._words)),
                                dtype=np.float64)
        # Net weighted box count (see num_updates); float so that fractional
        # update weights account exactly like the counters they feed.
        self._updates = 0.0

    # -- introspection --------------------------------------------------------

    @property
    def domain(self) -> Domain:
        return self._domain

    @property
    def dimension(self) -> int:
        return self._domain.dimension

    @property
    def words(self) -> tuple[Word, ...]:
        return self._words

    @property
    def num_instances(self) -> int:
        return self._num_instances

    @property
    def xi_banks(self) -> tuple[FourWiseFamilyBank, ...]:
        return self._xi

    @property
    def num_updates(self) -> int | float:
        """Net weighted box count: inserts minus deletes, scaled by weight.

        A plain insert moves this by ``+count``, a delete by ``-count``, and
        a weighted update by ``weight * count`` — the accounting follows the
        linear-projection semantics, where inserting with ``weight=w`` is
        exactly inserting ``w`` copies of every box.  Integral totals (the
        norm under ±1 streaming updates) are returned as ``int`` so that
        snapshots and comparisons keep their historical integer shape.
        """
        if float(self._updates).is_integer():
            return int(self._updates)
        return float(self._updates)

    @property
    def counter_tensor(self) -> np.ndarray:
        """The full ``(num_instances, num_words)`` counter tensor (read-only view).

        Column ``j`` holds the counters of ``self.words[j]``.  This is the
        bank's actual storage — one contiguous float64 array — exposed for
        zero-copy merges, snapshots and batched estimation kernels.
        """
        view = self._matrix.view()
        view.setflags(write=False)
        return view

    def counter(self, word: Word) -> np.ndarray:
        """A copy of the per-instance counter values for ``word``."""
        return self._matrix[:, self._word_index[tuple(word)]].copy()

    def counters(self) -> Mapping[Word, np.ndarray]:
        """Copies of every counter, keyed by word."""
        return {word: self._matrix[:, index].copy()
                for word, index in self._word_index.items()}

    def companion(self, words: Sequence[Word] | None = None) -> "SketchBank":
        """A new empty bank sharing this bank's xi families.

        The two inputs of a join must be sketched against the *same* xi
        families; ``companion`` is how the second input's bank is created.
        """
        return SketchBank(
            self._domain,
            self._words if words is None else words,
            self._num_instances,
            xi_banks=self._xi,
        )

    # -- composition and persistence -------------------------------------------

    def check_merge_compatible(self, other: "SketchBank") -> None:
        """Raise :class:`MergeCompatibilityError` unless ``other`` is mergeable.

        Merge compatibility requires the same domain (dyadic structure), the
        same word set, the same instance count and the same xi families.
        """
        if other.domain.signature() != self._domain.signature():
            raise MergeCompatibilityError(
                f"cannot merge banks over different domains "
                f"({other.domain!r} vs {self._domain!r})"
            )
        if other.words != self._words:
            raise MergeCompatibilityError("cannot merge banks with different word sets")
        if other.num_instances != self._num_instances:
            raise MergeCompatibilityError("cannot merge banks with different instance counts")
        for mine, theirs in zip(self._xi, other._xi):
            if mine is not theirs and not mine.matches_coefficients(theirs.coefficients):
                raise MergeCompatibilityError(
                    "cannot merge banks built over different xi families (seed mismatch)"
                )

    def merge(self, other: "SketchBank") -> None:
        """Add another bank's counters into this one.

        Sketches are linear projections, so the merged bank summarises the
        union (multiset sum) of the two inputs — the standard way to build a
        sketch over partitioned or distributed data.  Both banks must have
        been created over the *same* xi families (e.g. via :meth:`companion`
        or from the same seed and domain); anything else raises
        :class:`~repro.errors.MergeCompatibilityError`.  The merge is one
        vectorised add of the two counter tensors.
        """
        self.check_merge_compatible(other)
        self._ensure_writable()
        self._matrix += other._matrix
        self._updates += other._updates

    def clone_with_delta(self, delta: "SketchBank") -> "SketchBank":
        """A new bank equal to ``self + delta``, sharing this bank's xi families.

        This is the counter half of the delta-propagation fast path: instead
        of re-merging every shard into a fresh bank (which would also redraw
        the xi families from the seed), the new bank *aliases* this bank's
        :class:`~repro.core.hashing.FourWiseFamilyBank` objects — keeping
        their lazily-built sign tables warm and keeping every letter-sum
        cache entry keyed on them valid — and computes its counter tensor as
        one fused out-of-place add (:func:`repro.core.kernels.tensor_add`).
        Neither input is mutated.  Counter updates are exact integers in
        float64, so the result is bit-identical to a from-scratch merge.
        """
        self.check_merge_compatible(delta)
        clone = object.__new__(SketchBank)
        clone._domain = self._domain
        clone._words = self._words
        clone._num_instances = self._num_instances
        clone._xi = self._xi
        clone._word_index = self._word_index
        clone._matrix = np.empty_like(self._matrix)
        kernels.tensor_add(self._matrix, delta._matrix, clone._matrix)
        clone._updates = self._updates + delta._updates
        return clone

    def xi_coefficient_tensor(self) -> np.ndarray:
        """All xi seeds as one ``(dimension, num_instances, 4)`` uint64 tensor."""
        return stack_xi_coefficients(self._xi)

    def state_dict(self, *, arrays: bool = False) -> dict:
        """A snapshot of the bank's counters and seeds (a view over the tensor).

        With ``arrays=False`` (the default) the snapshot is the v1
        JSON-serialisable form: per-word counter lists plus nested xi
        coefficient lists.  With ``arrays=True`` the ``counters`` entry is
        the contiguous ``(num_instances, num_words)`` tensor itself (a copy)
        and ``xi_coefficients`` the stacked ``(dimension, num_instances, 4)``
        seed tensor — the shape binary snapshots store and memory-map back.
        :meth:`load_state_dict` accepts either form.
        """
        state: dict = {
            "num_instances": self._num_instances,
            "updates": self.num_updates,
            "domain": [list(pair) for pair in self._domain.signature()],
            "words": ["".join(letter.value for letter in word) for word in self._words],
        }
        if arrays:
            state["counters"] = self._matrix.copy()
            state["xi_coefficients"] = self.xi_coefficient_tensor()
        else:
            state["counters"] = {
                "".join(letter.value for letter in word):
                    self._matrix[:, index].tolist()
                for word, index in self._word_index.items()
            }
            state["xi_coefficients"] = [bank.coefficients_state()
                                        for bank in self._xi]
        return state

    def load_state_dict(self, state: Mapping, *, copy: bool = True) -> None:
        """Restore counters previously captured by :meth:`state_dict`.

        The bank must have been constructed with the same configuration; the
        xi seeds stored in the snapshot are checked against the bank's own to
        guard against mixing incompatible sketches.  Both snapshot forms are
        accepted: per-word lists (v1 JSON) and the contiguous counter tensor
        (binary snapshots).  With ``copy=False`` an array-form counter
        tensor is adopted as-is — e.g. a read-only memory-mapped snapshot
        view, giving near-zero-copy restores; the bank copies it lazily the
        first time it is mutated.
        """
        if int(state["num_instances"]) != self._num_instances:
            raise MergeCompatibilityError("snapshot was taken with a different instance count")
        if "domain" in state:
            snapshot_signature = tuple(tuple(int(v) for v in pair)
                                       for pair in state["domain"])
            if snapshot_signature != self._domain.signature():
                raise MergeCompatibilityError(
                    "snapshot was taken over a different domain "
                    f"({snapshot_signature} vs {self._domain.signature()})"
                )
        expected_words = ["".join(letter.value for letter in word) for word in self._words]
        if list(state["words"]) != expected_words:
            raise MergeCompatibilityError("snapshot was taken with a different word set")
        xi_state = state["xi_coefficients"]
        if isinstance(xi_state, np.ndarray):
            xi_state = [xi_state[dim] for dim in range(xi_state.shape[0])] \
                if xi_state.ndim == 3 else list(xi_state)
        if len(xi_state) != len(self._xi):
            raise MergeCompatibilityError("snapshot has a different dimensionality")
        for dim, coefficients in enumerate(xi_state):
            if not self._xi[dim].matches_coefficients(coefficients):
                raise MergeCompatibilityError(
                    "snapshot was taken over different xi families (seed mismatch)"
                )
        counters = state["counters"]
        if isinstance(counters, (list, tuple)):
            # The arrays-form tensor after an NDJSON hop: the wire encoder
            # renders ndarrays as nested lists, so accept that shape too.
            counters = np.asarray(counters, dtype=np.float64)
        if isinstance(counters, np.ndarray):
            matrix = np.asarray(counters, dtype=np.float64)
            if matrix.shape != self._matrix.shape:
                raise MergeCompatibilityError("snapshot counter shape mismatch")
            # Adopt without copying only read-only tensors (memory-mapped
            # snapshot views): adopting a *writable* array would alias this
            # bank's counters with the caller's state (and with every other
            # bank restored from it), so later inserts would corrupt them.
            if copy or matrix.flags.writeable:
                self._matrix = matrix.copy()
            else:
                self._matrix = matrix
        else:
            matrix = np.empty_like(self._matrix)
            for word, key in zip(self._words, expected_words):
                values = np.asarray(counters[key], dtype=np.float64)
                if values.shape != (self._num_instances,):
                    raise MergeCompatibilityError("snapshot counter shape mismatch")
                matrix[:, self._word_index[word]] = values
            self._matrix = matrix
        self._updates = float(state["updates"])

    # -- updates -----------------------------------------------------------------

    def insert(self, boxes: BoxSet, *, weight: float = 1.0,
               letter_boxes: Mapping[Letter, BoxSet] | None = None) -> None:
        """Add ``weight`` times the contribution of every box to all counters.

        ``letter_boxes`` optionally overrides the coordinates used for
        specific letters (the extended-overlap estimator sketches shrunk
        coordinates for I/E letters but original coordinates for the leaf
        letters of the same objects).
        """
        if boxes.dimension != self.dimension:
            raise DimensionalityError(
                f"boxes are {boxes.dimension}-dimensional, bank is {self.dimension}-dimensional"
            )
        count = len(boxes)
        if count == 0:
            return
        self._ensure_writable()
        sources: dict[Letter, BoxSet] = {}
        for letter in self._letters_in_use():
            override = None if letter_boxes is None else letter_boxes.get(letter)
            source = boxes if override is None else override
            if len(source) != count:
                raise SketchConfigError("letter_boxes overrides must have the same cardinality")
            self._domain.validate_boxes(source, what=f"boxes for letter {letter}")
            sources[letter] = source

        chunk = self._chunk_size()
        for start in range(0, count, chunk):
            stop = min(start + chunk, count)
            self._insert_chunk(sources, start, stop, weight)
        self._updates += float(weight) * count

    def delete(self, boxes: BoxSet, *,
               letter_boxes: Mapping[Letter, BoxSet] | None = None) -> None:
        """Remove previously inserted boxes (sketches are linear projections)."""
        self.insert(boxes, weight=-1.0, letter_boxes=letter_boxes)

    # -- query-side evaluation ------------------------------------------------------

    def evaluate(self, word: Word, box: BoxSet) -> np.ndarray:
        """Per-instance value of ``prod_i s(i, word[i], box(i))`` for one box.

        Used to evaluate the *query side* of range queries, where the query
        rectangle is known and does not need to be summarised in a counter.
        """
        word = tuple(word)
        if len(word) != self.dimension:
            raise DimensionalityError("word dimensionality mismatch")
        if len(box) != 1:
            raise SketchConfigError("evaluate expects exactly one box")
        self._domain.validate_boxes(box, what="query box")
        product = np.ones(self._num_instances, dtype=np.float64)
        for dim, letter in enumerate(word):
            sums = self._letter_sums(dim, letter, box.lows[:, dim], box.highs[:, dim])
            product *= sums[:, 0]
        return product

    def evaluate_many(self, words: Sequence[Word], boxes: BoxSet
                      ) -> dict[Word, np.ndarray]:
        """Batched :meth:`evaluate`: per-instance products for many boxes at once.

        For every requested word the result holds a ``(num_instances,
        num_boxes)`` matrix whose column ``j`` is bit-identical to
        ``evaluate(word, boxes[j])``.  The per-``(dimension, letter)`` xi
        sums — and with them the dyadic covers — are computed once per batch
        and shared across all words, which is where the batched estimation
        path gets its speedup: one vectorised kernel per letter instead of
        one per (query, word, letter) triple.
        """
        words = [tuple(word) for word in words]
        for word in words:
            if len(word) != self.dimension:
                raise DimensionalityError("word dimensionality mismatch")
        self._domain.validate_boxes(boxes, what="query boxes")
        sums: dict[tuple[int, Letter], np.ndarray] = {}
        for word in words:
            for dim, letter in enumerate(word):
                key = (dim, letter)
                if key not in sums:
                    sums[key] = self._letter_sums(
                        dim, letter, boxes.lows[:, dim], boxes.highs[:, dim]
                    )
        products: dict[Word, np.ndarray] = {}
        for word in words:
            term = sums[(0, word[0])].copy()
            for dim in range(1, self.dimension):
                term *= sums[(dim, word[dim])]
            products[word] = term
        return products

    def letter_sums(self, dim: int, letter: Letter, lows: np.ndarray,
                    highs: np.ndarray) -> np.ndarray:
        """Vectorised per-instance xi sums for one letter over many intervals.

        Returns a ``(num_instances, len(lows))`` matrix whose column ``j``
        is the letter sum ``s(dim, letter, [lows[j], highs[j]])`` — the
        query-side kernel that :class:`~repro.core.program.ProgramExecutor`
        batches across programs.  Column ``j`` is bit-identical to a
        single-interval call: the per-interval covers reduce independently.
        The result depends only on this bank's xi families and domain,
        never on its counters.
        """
        if not 0 <= int(dim) < self.dimension:
            raise DimensionalityError(
                f"dimension {dim} out of range for a {self.dimension}-dimensional bank"
            )
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        return self._letter_sums(int(dim), letter, lows, highs)

    # -- internals ----------------------------------------------------------------

    def _ensure_writable(self) -> None:
        """Materialise the counter tensor before mutation (copy-on-write).

        A bank restored with ``copy=False`` may hold a read-only view into a
        memory-mapped snapshot; query-only consumers never pay for a copy,
        while the first mutation transparently promotes it to private memory.
        """
        if not self._matrix.flags.writeable:
            self._matrix = self._matrix.copy()

    def _letters_in_use(self) -> set[Letter]:
        return {letter for word in self._words for letter in word}

    def _chunk_size(self) -> int:
        # A conservative bound on cover ids per box and dimension.
        worst_cover = 1
        for dim in range(self.dimension):
            dyadic = self._domain.dyadic(dim)
            worst_cover = max(worst_cover, 2 * max(dyadic.max_level, 1) + 2)
        per_box = worst_cover
        chunk = max(1, self._CHUNK_ELEMENT_BUDGET // max(1, self._num_instances * per_box))
        return chunk

    def _insert_chunk(self, sources: Mapping[Letter, BoxSet], start: int, stop: int,
                      weight: float) -> None:
        sums: dict[tuple[int, Letter], np.ndarray] = {}
        for word in self._words:
            for dim, letter in enumerate(word):
                key = (dim, letter)
                if key in sums:
                    continue
                source = sources[letter]
                sums[key] = self._letter_sums(
                    dim, letter, source.lows[start:stop, dim], source.highs[start:stop, dim]
                )
        for index, word in enumerate(self._words):
            term = sums[(0, word[0])]
            if self.dimension > 1:
                term = term.copy()
                for dim in range(1, self.dimension):
                    term *= sums[(dim, word[dim])]
            self._matrix[:, index] += weight * term.sum(axis=1)

    def _letter_sums(self, dim: int, letter: Letter, lows: np.ndarray,
                     highs: np.ndarray) -> np.ndarray:
        """``(num_instances, num_boxes)`` per-box xi sums for one letter/dimension."""
        dyadic = self._domain.dyadic(dim)
        xi = self._xi[dim]
        n_boxes = len(lows)
        if letter is Letter.INTERVAL:
            ids, lengths = dyadic.covers(lows, highs)
            return self._segment_sums(xi, ids, lengths, n_boxes)
        if letter is Letter.ENDPOINTS:
            low_sums = self._point_cover_sums(xi, dyadic, lows)
            high_sums = self._point_cover_sums(xi, dyadic, highs)
            return low_sums + high_sums
        if letter is Letter.LOWER_POINT:
            return self._point_cover_sums(xi, dyadic, lows)
        if letter is Letter.UPPER_POINT:
            return self._point_cover_sums(xi, dyadic, highs)
        if letter is Letter.LOWER_LEAF:
            leaves = dyadic.size - 1 + np.asarray(lows, dtype=np.int64)
            return self._leaf_sums(xi, leaves)
        if letter is Letter.UPPER_LEAF:
            leaves = dyadic.size - 1 + np.asarray(highs, dtype=np.int64)
            return self._leaf_sums(xi, leaves)
        raise SketchConfigError(f"unknown letter {letter!r}")

    # The three reducers below share one structure: account the request via
    # resolve_table() exactly once, take a fused table kernel when both the
    # table and numba are available, and otherwise gather signs into a
    # thread-local workspace buffer and reduce with NumPy.  Every path
    # returns a *fresh* float64 array (never a workspace view): callers —
    # the program executor's cover cache in particular — retain results
    # across calls.  All paths produce bit-identical values: the summands
    # are ±1 integers, so any summation order yields the same exact float.

    @staticmethod
    def _scratch_signs(xi: FourWiseFamilyBank, ids: np.ndarray) -> np.ndarray:
        signs = _WORKSPACE.buffer("signs", xi.num_families * ids.size, np.int8)
        return xi.signs_into(ids, signs.reshape(xi.num_families, ids.size))

    @staticmethod
    def _leaf_sums(xi: FourWiseFamilyBank, leaves: np.ndarray) -> np.ndarray:
        xi.resolve_table(leaves.size)
        return SketchBank._scratch_signs(xi, leaves).astype(np.float64)

    @staticmethod
    def _point_cover_sums(xi: FourWiseFamilyBank, dyadic, coordinates: np.ndarray) -> np.ndarray:
        ids, lengths = dyadic.point_covers(coordinates)
        per_point = int(lengths[0]) if len(lengths) else dyadic.max_level + 1
        n_points = len(coordinates)
        table = xi.resolve_table(ids.size)
        if table is not None and n_points:
            out = np.empty((xi.num_families, n_points), dtype=np.float64)
            if kernels.point_sums_from_table(table, ids, per_point, out):
                return out
        signs = SketchBank._scratch_signs(xi, ids)
        shaped = signs.reshape(xi.num_families, n_points, per_point)
        return shaped.sum(axis=2, dtype=np.float64)

    @staticmethod
    def _segment_sums(xi: FourWiseFamilyBank, ids: np.ndarray, lengths: np.ndarray,
                      n_boxes: int) -> np.ndarray:
        if n_boxes == 0:
            return np.zeros((xi.num_families, 0), dtype=np.float64)
        starts = np.zeros(n_boxes, dtype=np.int64)
        np.cumsum(lengths[:-1], out=starts[1:])
        table = xi.resolve_table(ids.size)
        if table is not None:
            out = np.empty((xi.num_families, n_boxes), dtype=np.float64)
            if kernels.segment_sums_from_table(table, ids, starts, lengths, out):
                return out
        signs = SketchBank._scratch_signs(xi, ids)
        return np.add.reduceat(signs, starts, axis=1, dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SketchBank(d={self.dimension}, words={len(self._words)}, "
            f"instances={self._num_instances}, updates={self.num_updates})"
        )
