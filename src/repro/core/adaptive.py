"""Adaptive choice of the maximum dyadic level (Section 6.5).

The dyadic endpoint sketch adds, for every inserted object, the xi variable
of *every* dyadic level up to the root, so for datasets of mostly short
intervals the coarse levels inflate the self-join size (and hence the
variance) without being needed to cover the objects.  Section 6.5 proposes
to cap the levels at a data-dependent ``maxLevel``: lower levels reduce
SJ(X_E) but make long intervals more expensive to cover.

:func:`choose_max_level` implements that trade-off by estimating, from a
sample of the data (e.g. interval-length statistics collected on the
stream), the dataset self-join size ``SJ(R) = sum_w SJ(X_w)`` for every
candidate level and returning the level that minimises it.  ``maxLevel = 0``
degenerates to the standard (non-dyadic) sketches.
"""

from __future__ import annotations

import numpy as np

from repro.core.atomic import Letter, all_words
from repro.core.domain import Domain
from repro.core.selfjoin import dataset_self_join_size
from repro.errors import SketchConfigError
from repro.geometry.boxset import BoxSet


def candidate_levels(domain: Domain) -> list[int]:
    """All levels that can be used as a uniform maxLevel for the domain."""
    height = min(dyadic.height for dyadic in domain.dyadics)
    return list(range(height + 1))


def choose_max_level(sample: BoxSet, domain: Domain, *,
                     levels: list[int] | None = None,
                     min_level: int | None = None,
                     update_cost_weight: float = 0.0) -> int:
    """Pick a uniform maxLevel for all dimensions from a data sample.

    Parameters
    ----------
    sample:
        A (sub)sample of the dataset; only its side-length distribution and
        coordinate placement matter.
    domain:
        The data space.
    levels:
        Candidate levels; defaults to all levels of the domain.
    min_level:
        Optional lower bound on the returned level (e.g. to cap the update
        cost of very long objects).
    update_cost_weight:
        Optional weight that penalises the per-object cover size (update
        cost); 0 optimises purely for self-join size / estimate variance.
    """
    if len(sample) == 0:
        raise SketchConfigError("cannot choose a max level from an empty sample")
    if levels is None:
        levels = candidate_levels(domain)
    if min_level is not None:
        levels = [lvl for lvl in levels if lvl >= min_level]
    if not levels:
        raise SketchConfigError("no candidate levels to choose from")

    words = all_words([Letter.INTERVAL, Letter.ENDPOINTS], domain.dimension)
    best_level = levels[0]
    best_score = None
    for level in levels:
        restricted = domain.with_max_level(level)
        score = dataset_self_join_size(sample, restricted, words)
        if update_cost_weight:
            score += update_cost_weight * _average_cover_size(sample, restricted)
        if best_score is None or score < best_score:
            best_score = score
            best_level = level
    return best_level


def _average_cover_size(sample: BoxSet, domain: Domain) -> float:
    """Average number of dyadic intervals needed to cover an object."""
    total = 0
    for dim in range(domain.dimension):
        _, lengths = domain.dyadic(dim).covers(sample.lows[:, dim], sample.highs[:, dim])
        total += int(np.sum(lengths))
    return total / max(1, len(sample))


def level_profile(sample: BoxSet, domain: Domain) -> dict[int, float]:
    """Self-join size of the sample for every candidate maxLevel (diagnostics)."""
    words = all_words([Letter.INTERVAL, Letter.ENDPOINTS], domain.dimension)
    profile: dict[int, float] = {}
    for level in candidate_levels(domain):
        restricted = domain.with_max_level(level)
        profile[level] = dataset_self_join_size(sample, restricted, words)
    return profile
