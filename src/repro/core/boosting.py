"""Accuracy boosting via averaging and median selection (Section 2.3).

Given ``k1 * k2`` i.i.d. instances of an unbiased estimator Z, the boosted
estimate is the median of ``k2`` group means of ``k1`` instances each
(Figure 1 of the paper).  Lemma 1 gives the sizing rule:

    using 16 * Var[Z] / (eps^2 * E[Z]^2) * lg(1/phi) instances, the boosted
    estimate is within relative error ``eps`` of E[Z] with probability at
    least ``1 - phi``.

which is achieved with ``k1 = 8 * Var[Z] / (eps^2 * E[Z]^2)`` and
``k2 = 2 * lg(1/phi)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SketchConfigError


@dataclass(frozen=True)
class BoostingPlan:
    """A concrete (k1, k2) boosting configuration."""

    group_size: int       # k1: instances averaged per group
    num_groups: int       # k2: groups whose means are median-selected
    epsilon: float | None = None
    phi: float | None = None

    @property
    def total_instances(self) -> int:
        return self.group_size * self.num_groups

    def __post_init__(self) -> None:
        if self.group_size < 1 or self.num_groups < 1:
            raise SketchConfigError("boosting plan needs k1 >= 1 and k2 >= 1")


def plan_boosting(epsilon: float, phi: float, variance_bound: float,
                  expectation_lower_bound: float, *,
                  max_instances: int | None = None) -> BoostingPlan:
    """Size a sketch for a target relative error and confidence (Lemma 1).

    Parameters
    ----------
    epsilon:
        Target relative error.
    phi:
        Target failure probability (confidence is ``1 - phi``).
    variance_bound:
        An upper bound on Var[Z] — e.g. ``SJ(R) * SJ(S) / 2`` for the
        interval and rectangle joins (Equation 8 / Lemma 6).
    expectation_lower_bound:
        A lower ("sanity") bound on E[Z]; the paper discusses obtaining it
        from historic data or coarse auxiliary estimates.
    max_instances:
        Optional cap on the total number of instances (the plan is clipped,
        sacrificing the guarantee, which mirrors fixed-space experiments).
    """
    if not 0 < epsilon:
        raise SketchConfigError(f"epsilon must be positive, got {epsilon}")
    if not 0 < phi < 1:
        raise SketchConfigError(f"phi must be in (0, 1), got {phi}")
    if variance_bound < 0:
        raise SketchConfigError("variance bound must be non-negative")
    if expectation_lower_bound <= 0:
        raise SketchConfigError("the expectation lower bound must be positive")

    k1 = max(1, math.ceil(8.0 * variance_bound / (epsilon ** 2 * expectation_lower_bound ** 2)))
    k2 = max(1, math.ceil(2.0 * math.log2(1.0 / phi)))
    if max_instances is not None and k1 * k2 > max_instances:
        k2 = min(k2, max_instances)
        k1 = max(1, max_instances // k2)
    return BoostingPlan(group_size=k1, num_groups=k2, epsilon=epsilon, phi=phi)


def split_instances(total: int, *, num_groups: int | None = None) -> BoostingPlan:
    """A reasonable (k1, k2) split for a given total instance budget.

    Used by fixed-space experiments where the number of instances is imposed
    by a word budget rather than by an (epsilon, phi) target.  The number of
    groups defaults to a small odd number so the median is well defined and
    most of the budget goes into averaging.
    """
    if total < 1:
        raise SketchConfigError("at least one instance is required")
    if num_groups is None:
        if total >= 45:
            num_groups = 9
        elif total >= 15:
            num_groups = 5
        elif total >= 3:
            num_groups = 3
        else:
            num_groups = 1
    num_groups = min(num_groups, total)
    group_size = total // num_groups
    return BoostingPlan(group_size=group_size, num_groups=num_groups)


def median_of_means(values: np.ndarray, plan: BoostingPlan | None = None,
                    *, num_groups: int | None = None) -> tuple[float, np.ndarray]:
    """Boost per-instance estimator values into a single estimate.

    Parameters
    ----------
    values:
        1-d array of per-instance estimator values.
    plan:
        Optional explicit boosting plan; instances beyond
        ``plan.total_instances`` are ignored.
    num_groups:
        Used when ``plan`` is not given; defaults to :func:`split_instances`.

    Returns
    -------
    ``(estimate, group_means)``.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise SketchConfigError("cannot boost an empty set of estimator values")
    if plan is None:
        plan = split_instances(values.size, num_groups=num_groups)
    usable = plan.total_instances
    if usable > values.size:
        raise SketchConfigError(
            f"boosting plan needs {usable} instances but only {values.size} are available"
        )
    grouped = values[:usable].reshape(plan.num_groups, plan.group_size)
    group_means = grouped.mean(axis=1)
    return float(np.median(group_means)), group_means


def median_of_means_batch(values: np.ndarray, plan: BoostingPlan | None = None,
                          *, num_groups: int | None = None
                          ) -> tuple[np.ndarray, np.ndarray]:
    """Boost a whole batch of per-instance value vectors at once.

    The rows of ``values`` (shape ``(num_queries, num_instances)``) are
    independent per-query estimator values; the result is bit-identical to
    calling :func:`median_of_means` on every row, but the grouping, the
    group means and the median selection all run as single NumPy kernels
    over the batch — one median-of-instances reduction per batch instead of
    one per query.

    Returns
    -------
    ``(estimates, group_means)`` with shapes ``(num_queries,)`` and
    ``(num_queries, k2)``.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise SketchConfigError(
            f"batched boosting expects a (num_queries, num_instances) matrix, "
            f"got shape {values.shape}"
        )
    num_queries, num_instances = values.shape
    if num_instances == 0:
        raise SketchConfigError("cannot boost an empty set of estimator values")
    if plan is None:
        plan = split_instances(num_instances, num_groups=num_groups)
    usable = plan.total_instances
    if usable > num_instances:
        raise SketchConfigError(
            f"boosting plan needs {usable} instances but only {num_instances} are available"
        )
    grouped = values[:, :usable].reshape(num_queries, plan.num_groups, plan.group_size)
    group_means = grouped.mean(axis=2)
    if num_queries == 0:
        return np.empty(0, dtype=np.float64), group_means
    return np.median(group_means, axis=1), group_means
