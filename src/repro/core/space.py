"""Space accounting in machine words.

Section 7 of the paper compares SKETCH, GH and EH at equal memory budgets,
measured in "units (words) of memory" *per dataset*.  This module
centralises that accounting so the experiments are internally consistent:

* An atomic-sketch instance for the {I, E}^d join estimator stores ``2^d``
  counters per dataset plus ``4`` seed words per dimension; the seeds are
  shared by the two join inputs, so each dataset is charged half of them
  (``2 d`` words).
* A generalized Euler histogram of grid level L uses ``9*4^L - 6*2^L + 1``
  words (Section 7).
* A Geometric Histogram of grid level L uses ``4^(L+1)`` words (4 statistics
  for each of the ``4^L`` cells; the paper writes this as ``4^(L+1)``).
"""

from __future__ import annotations

import math

from repro.errors import SketchConfigError


SEED_WORDS_PER_DIMENSION = 4
"""Words needed to store one degree-3 polynomial seed."""


def sketch_words_per_instance(dimension: int, *, counters_per_instance: int | None = None,
                              share_seed: bool = True) -> float:
    """Words charged to one dataset for a single atomic-sketch instance."""
    if dimension < 1:
        raise SketchConfigError("dimension must be at least 1")
    if counters_per_instance is None:
        counters_per_instance = 2 ** dimension
    seed_words = SEED_WORDS_PER_DIMENSION * dimension
    if share_seed:
        seed_words = seed_words / 2
    return counters_per_instance + seed_words


def sketch_words(dimension: int, num_instances: int, *,
                 counters_per_instance: int | None = None,
                 share_seed: bool = True) -> float:
    """Total words charged to one dataset for a bank of ``num_instances``."""
    return num_instances * sketch_words_per_instance(
        dimension, counters_per_instance=counters_per_instance, share_seed=share_seed
    )


def instances_for_budget(budget_words: float, dimension: int, *,
                         counters_per_instance: int | None = None,
                         share_seed: bool = True) -> int:
    """Largest number of atomic-sketch instances that fits in a word budget."""
    per_instance = sketch_words_per_instance(
        dimension, counters_per_instance=counters_per_instance, share_seed=share_seed
    )
    instances = int(budget_words // per_instance)
    if instances < 1:
        raise SketchConfigError(
            f"budget of {budget_words} words cannot hold even one instance "
            f"({per_instance} words each)"
        )
    return instances


def euler_histogram_words(level: int) -> int:
    """Memory of a generalized Euler histogram of grid level ``level``."""
    if level < 0:
        raise SketchConfigError("grid level must be non-negative")
    cells = 2 ** level
    return 9 * cells * cells - 6 * cells + 1


def geometric_histogram_words(level: int) -> int:
    """Memory of a Geometric Histogram of grid level ``level``."""
    if level < 0:
        raise SketchConfigError("grid level must be non-negative")
    return 4 ** (level + 1)


def euler_level_for_budget(budget_words: float) -> int:
    """Finest Euler-histogram grid level that fits in the budget."""
    level = 0
    while euler_histogram_words(level + 1) <= budget_words:
        level += 1
    if euler_histogram_words(level) > budget_words:
        raise SketchConfigError(
            f"budget of {budget_words} words cannot hold an Euler histogram"
        )
    return level


def geometric_level_for_budget(budget_words: float) -> int:
    """Finest Geometric-Histogram grid level that fits in the budget."""
    level = 0
    while geometric_histogram_words(level + 1) <= budget_words:
        level += 1
    if geometric_histogram_words(level) > budget_words:
        raise SketchConfigError(
            f"budget of {budget_words} words cannot hold a Geometric Histogram"
        )
    return level


def words_to_kilowords(words: float) -> float:
    """Convenience conversion used by the figure axes ("K words")."""
    return words / 1000.0


def dataset_storage_words(num_objects: int, dimension: int) -> int:
    """Words needed to store a dataset exactly (``2 d`` coordinates per object).

    Section 7.2 uses this to report the sketch size as a fraction of the
    dataset size.
    """
    if num_objects < 0 or dimension < 1:
        raise SketchConfigError("invalid dataset shape")
    return 2 * dimension * num_objects


def required_instances_for_guarantee(epsilon: float, phi: float, sj_left: float,
                                     sj_right: float, result_lower_bound: float) -> int:
    """Total instances required by Theorem 1/2 for an (epsilon, phi) guarantee."""
    if epsilon <= 0 or not 0 < phi < 1:
        raise SketchConfigError("epsilon must be positive and phi in (0, 1)")
    if result_lower_bound <= 0:
        raise SketchConfigError("result lower bound must be positive")
    k1 = max(1, math.ceil(4.0 * sj_left * sj_right /
                          (epsilon ** 2 * result_lower_bound ** 2)))
    k2 = max(1, math.ceil(2.0 * math.log2(1.0 / phi)))
    return k1 * k2
