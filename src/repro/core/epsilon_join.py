"""Epsilon-join estimation for point sets (Section 6.3).

``A join_eps B`` pairs every point of A with every point of B at
L-infinity distance at most ``eps``.  Following the paper, each point
``b`` of B is replaced by the hyper-cube ``b'`` of side length ``2 eps``
centred at ``b``; then ``dist_inf(a, b) <= eps`` iff ``a`` lies inside
``b'``, and the join cardinality is estimated by

    Z = X_E * Y_I

where ``X_E`` sketches the points of A with per-dimension point covers and
``Y_I`` sketches the cubes of B' with per-dimension interval covers
(Lemmas 7 and 8).  Points lie strictly inside the domain, so the cubes can
be clipped at the domain boundary without changing the result.
"""

from __future__ import annotations

import numpy as np

from repro.core.atomic import Letter, SketchBank
from repro.core.boosting import BoostingPlan
from repro.core.domain import Domain
from repro.core.program import CounterRef, ProgramTerm, QuerylessProgramEstimator
from repro.errors import (
    DomainError,
    EstimationError,
    MergeCompatibilityError,
    SketchConfigError,
)
from repro.geometry.boxset import BoxSet, PointSet


class EpsilonJoinEstimator(QuerylessProgramEstimator):
    """Estimates ``|A join_eps B|`` under the L-infinity distance.

    Lowers to a single-term :class:`~repro.core.program.SketchProgram`
    (``Z = X_E * Y_I``) executed on the shared program executor; the
    estimate surface (``estimate`` / ``estimate_batch`` / shorthands) is
    inherited from :class:`QuerylessProgramEstimator`.
    """

    def __init__(self, domain: Domain, epsilon: int, num_instances: int, *, seed=0,
                 boosting: BoostingPlan | None = None) -> None:
        if num_instances < 1:
            raise SketchConfigError("at least one atomic-sketch instance is required")
        if epsilon < 0:
            raise DomainError("epsilon must be non-negative")
        self._domain = domain
        self._epsilon = int(epsilon)
        self._plan = boosting
        self._num_instances = int(num_instances)

        self._point_word = (Letter.LOWER_POINT,) * domain.dimension
        self._cube_word = (Letter.INTERVAL,) * domain.dimension
        self._point_bank = SketchBank(domain, [self._point_word], num_instances, seed=seed)
        self._cube_bank = self._point_bank.companion([self._cube_word])
        self._left_count = 0
        self._right_count = 0

    # -- introspection -----------------------------------------------------------

    @property
    def domain(self) -> Domain:
        return self._domain

    @property
    def epsilon(self) -> int:
        return self._epsilon

    @property
    def num_instances(self) -> int:
        return self._num_instances

    @property
    def left_count(self) -> int:
        return self._left_count

    @property
    def right_count(self) -> int:
        return self._right_count

    # -- updates ------------------------------------------------------------------

    def _cubes(self, points: PointSet) -> BoxSet:
        per_dim_hi = np.asarray(self._domain.sizes, dtype=np.int64) - 1
        lows = np.maximum(points.coords - self._epsilon, 0)
        highs = np.minimum(points.coords + self._epsilon, per_dim_hi)
        return BoxSet(lows, highs, validate=False)

    def insert_left(self, points: PointSet) -> None:
        """Insert points into the A side."""
        boxes = points.to_boxes()
        self._domain.validate_boxes(boxes, what="A points")
        self._point_bank.insert(boxes)
        self._left_count += len(points)

    def insert_right(self, points: PointSet) -> None:
        """Insert points into the B side (sketched as epsilon-cubes)."""
        self._domain.validate_boxes(points.to_boxes(), what="B points")
        self._cube_bank.insert(self._cubes(points))
        self._right_count += len(points)

    def delete_left(self, points: PointSet) -> None:
        boxes = points.to_boxes()
        self._domain.validate_boxes(boxes, what="A points")
        self._point_bank.insert(boxes, weight=-1.0)
        self._left_count -= len(points)

    def delete_right(self, points: PointSet) -> None:
        self._domain.validate_boxes(points.to_boxes(), what="B points")
        self._cube_bank.insert(self._cubes(points), weight=-1.0)
        self._right_count -= len(points)


    # -- composition and persistence ----------------------------------------------------

    def merge(self, other: "EpsilonJoinEstimator") -> None:
        """Fold another estimator over a disjoint partition into this one."""
        if type(other) is not type(self):
            raise MergeCompatibilityError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )
        if other._epsilon != self._epsilon:
            raise MergeCompatibilityError(
                f"cannot merge epsilon-join estimators with different epsilon "
                f"({other._epsilon} vs {self._epsilon})"
            )
        self._point_bank.check_merge_compatible(other._point_bank)
        self._cube_bank.check_merge_compatible(other._cube_bank)
        self._point_bank.merge(other._point_bank)
        self._cube_bank.merge(other._cube_bank)
        self._left_count += other._left_count
        self._right_count += other._right_count

    def state_dict(self, *, arrays: bool = False) -> dict:
        """A snapshot of both banks and the input counts.

        ``arrays=True`` keeps the counters as contiguous tensors (the
        binary-snapshot form); the default is the v1 JSON form.
        """
        return {
            "epsilon": self._epsilon,
            "points": self._point_bank.state_dict(arrays=arrays),
            "cubes": self._cube_bank.state_dict(arrays=arrays),
            "left_count": self._left_count,
            "right_count": self._right_count,
        }

    def load_state_dict(self, state, *, copy: bool = True) -> None:
        """Restore a snapshot captured by :meth:`state_dict`."""
        if int(state["epsilon"]) != self._epsilon:
            raise MergeCompatibilityError("snapshot was taken with a different epsilon")
        self._point_bank.load_state_dict(state["points"], copy=copy)
        self._cube_bank.load_state_dict(state["cubes"], copy=copy)
        self._left_count = int(state["left_count"])
        self._right_count = int(state["right_count"])

    # -- lowering (estimation itself is inherited from the program layer) -----------

    def _program_terms(self) -> tuple[ProgramTerm, ...]:
        return (ProgramTerm(
            1.0,
            counters=(CounterRef(self._point_bank, self._point_word),
                      CounterRef(self._cube_bank, self._cube_word)),
        ),)

    def _counts(self) -> tuple[int, int]:
        return self._left_count, self._right_count

    def _require_data(self) -> None:
        if self._left_count == 0 and self._right_count == 0:
            raise EstimationError("estimate requested before any data was inserted")
