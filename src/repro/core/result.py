"""Result objects returned by the estimators."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class EstimateResult:
    """Outcome of a sketch-based estimation.

    Attributes
    ----------
    estimate:
        The boosted (median-of-means) cardinality estimate.
    instance_values:
        The per-atomic-sketch-instance values of the estimator random
        variable Z (useful for diagnostics and variance estimation).
    group_means:
        The ``k2`` group averages whose median is the final estimate.
    left_count / right_count:
        Current cardinalities of the join inputs (or of the single input for
        range queries), used to convert cardinality into selectivity.
    """

    estimate: float
    instance_values: np.ndarray
    group_means: np.ndarray
    left_count: int
    right_count: int = field(default=1)

    @property
    def num_instances(self) -> int:
        return int(self.instance_values.size)

    @property
    def selectivity(self) -> float:
        """Estimated selectivity: cardinality / (|R| * |S|)."""
        denominator = max(self.left_count, 1) * max(self.right_count, 1)
        return self.estimate / denominator

    @property
    def sample_variance(self) -> float:
        """Sample variance of the per-instance estimator values."""
        if self.instance_values.size < 2:
            return 0.0
        return float(np.var(self.instance_values, ddof=1))

    def relative_error(self, truth: float) -> float:
        """|estimate - truth| / truth (defined as |estimate| when truth is 0)."""
        if truth == 0:
            return abs(self.estimate)
        return abs(self.estimate - truth) / abs(truth)

    def __float__(self) -> float:
        return float(self.estimate)
