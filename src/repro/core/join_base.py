"""Shared machinery for the sketch-based join estimators.

Every join estimator in this library follows the same pattern:

1. maintain one :class:`~repro.core.atomic.SketchBank` per join input, built
   over *shared* xi families,
2. compute, per atomic-sketch instance, the estimator random variable Z as a
   linear combination of products of word counters,
3. boost the per-instance values into a final estimate via median-of-means
   (Section 2.3).

The linear combinations themselves are all generated from *per-dimension
pair terms*: a pair term ``(letter_R, letter_S, coefficient, transformed)``
states that in a single dimension the product of the letter_R counter of R
and the letter_S counter of S contributes with the given coefficient to the
per-dimension count, optionally on endpoint-transformed coordinates.  For d
dimensions the estimator is the sum over all ways of picking one pair term
per dimension, with the product of the coefficients (this is exactly how the
paper's Z generalises from Theorem 1 to Theorem 3 and Appendices B/C).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.atomic import Letter, SketchBank, Word
from repro.core.boosting import BoostingPlan, split_instances
from repro.core.domain import Domain, EndpointTransform
from repro.core.program import (
    CounterRef,
    ProgramTerm,
    QuerylessProgramEstimator,
    batch_request_count,
    replicate_estimate,
)
from repro.errors import EstimationError, MergeCompatibilityError, SketchConfigError
from repro.geometry.boxset import BoxSet

__all__ = [
    "PairTerm",
    "expand_pair_terms",
    "PairedSketchJoinEstimator",
    # Re-exported for API stability; the canonical home is repro.core.program.
    "batch_request_count",
    "replicate_estimate",
]


@dataclass(frozen=True)
class PairTerm:
    """A per-dimension contribution to the estimator (see module docstring)."""

    left_letter: Letter
    right_letter: Letter
    coefficient: float
    transformed: bool = False


def expand_pair_terms(pair_terms: Sequence[PairTerm], dimension: int
                      ) -> dict[tuple[Word, Word], float]:
    """Accumulate coefficients of (left word, right word) products for d dims."""
    combos: dict[tuple[Word, Word], float] = {}
    for choice in itertools.product(pair_terms, repeat=dimension):
        left_word = tuple(term.left_letter for term in choice)
        right_word = tuple(term.right_letter for term in choice)
        coefficient = 1.0
        for term in choice:
            coefficient *= term.coefficient
        key = (left_word, right_word)
        combos[key] = combos.get(key, 0.0) + coefficient
    return combos


class PairedSketchJoinEstimator(QuerylessProgramEstimator):
    """Base class for estimators over two spatial inputs R (left) and S (right).

    Subclasses define the pair terms; this class owns sketch construction,
    streaming updates (insert/delete) and the *lowering* of the estimator
    random variable into a :class:`~repro.core.program.SketchProgram` —
    evaluation and boosting run on the shared
    :class:`~repro.core.program.ProgramExecutor` (see the inherited
    estimate surface of :class:`QuerylessProgramEstimator`).
    """

    def __init__(self, domain: Domain, pair_terms: Sequence[PairTerm],
                 num_instances: int, *, seed=0,
                 boosting: BoostingPlan | None = None,
                 use_endpoint_transform: bool = False) -> None:
        if num_instances < 1:
            raise SketchConfigError("at least one atomic-sketch instance is required")
        self._original_domain = domain
        self._pair_terms = tuple(pair_terms)
        if not self._pair_terms:
            raise SketchConfigError("at least one pair term is required")
        self._plan = boosting
        self._num_instances = int(num_instances)
        self._seed = seed

        needs_transform = use_endpoint_transform or any(t.transformed for t in self._pair_terms)
        self._transform = EndpointTransform(domain) if needs_transform else None
        self._sketch_domain = (self._transform.expanded_domain
                               if self._transform is not None else domain)

        self._combos = expand_pair_terms(self._pair_terms, domain.dimension)
        left_words = sorted({left for left, _ in self._combos}, key=str)
        right_words = sorted({right for _, right in self._combos}, key=str)
        self._left_bank = SketchBank(self._sketch_domain, left_words,
                                     num_instances, seed=seed)
        self._right_bank = self._left_bank.companion(right_words)
        self._left_count = 0
        self._right_count = 0
        # Lazily-built program terms: the banks are mutated in place by
        # updates/merges/restores, so the compiled term tuple stays valid
        # for the estimator's whole lifetime.
        self._compiled_terms: tuple[ProgramTerm, ...] | None = None

    # -- introspection --------------------------------------------------------

    @property
    def domain(self) -> Domain:
        """The original (untransformed) data domain."""
        return self._original_domain

    @property
    def dimension(self) -> int:
        return self._original_domain.dimension

    @property
    def num_instances(self) -> int:
        return self._num_instances

    @property
    def left_bank(self) -> SketchBank:
        return self._left_bank

    @property
    def right_bank(self) -> SketchBank:
        return self._right_bank

    @property
    def left_count(self) -> int:
        """Current cardinality of the left input."""
        return self._left_count

    @property
    def right_count(self) -> int:
        """Current cardinality of the right input."""
        return self._right_count

    @property
    def boosting_plan(self) -> BoostingPlan:
        if self._plan is not None:
            return self._plan
        return split_instances(self._num_instances)

    @property
    def uses_endpoint_transform(self) -> bool:
        return self._transform is not None

    def storage_words(self) -> float:
        """Words charged to each dataset under the accounting of DESIGN.md."""
        from repro.core import space

        counters = len(self._left_bank.words)
        return space.sketch_words(self.dimension, self._num_instances,
                                  counters_per_instance=counters)

    # -- coordinate preparation (overridable) -----------------------------------------

    def _prepare_left(self, boxes: BoxSet) -> tuple[BoxSet, Mapping[Letter, BoxSet] | None]:
        """Coordinates actually sketched for the left input."""
        if self._transform is None:
            return boxes, None
        return self._transform.transform_left(boxes), None

    def _prepare_right(self, boxes: BoxSet) -> tuple[BoxSet, Mapping[Letter, BoxSet] | None]:
        """Coordinates actually sketched for the right input."""
        if self._transform is None:
            return boxes, None
        return self._transform.transform_right(boxes), None

    # -- updates --------------------------------------------------------------------

    def insert_left(self, boxes: BoxSet) -> None:
        """Insert boxes into the left (R) input."""
        prepared, overrides = self._prepare_left(boxes)
        self._left_bank.insert(prepared, letter_boxes=overrides)
        self._left_count += len(boxes)

    def insert_right(self, boxes: BoxSet) -> None:
        """Insert boxes into the right (S) input."""
        prepared, overrides = self._prepare_right(boxes)
        self._right_bank.insert(prepared, letter_boxes=overrides)
        self._right_count += len(boxes)

    def delete_left(self, boxes: BoxSet) -> None:
        """Delete previously inserted boxes from the left input."""
        prepared, overrides = self._prepare_left(boxes)
        self._left_bank.insert(prepared, weight=-1.0, letter_boxes=overrides)
        self._left_count -= len(boxes)

    def delete_right(self, boxes: BoxSet) -> None:
        """Delete previously inserted boxes from the right input."""
        prepared, overrides = self._prepare_right(boxes)
        self._right_bank.insert(prepared, weight=-1.0, letter_boxes=overrides)
        self._right_count -= len(boxes)

    # -- composition and persistence ----------------------------------------------------

    def merge(self, other: "PairedSketchJoinEstimator") -> None:
        """Fold another estimator over a disjoint partition into this one.

        Sketches are linear, so merging the per-side banks of two estimators
        built from the same spec (domain, pair terms, instance count, seed)
        yields exactly the estimator that would have summarised the union of
        both partitions.  Incompatible estimators raise
        :class:`~repro.errors.MergeCompatibilityError`.
        """
        if type(other) is not type(self):
            raise MergeCompatibilityError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )
        if other._pair_terms != self._pair_terms:
            raise MergeCompatibilityError("cannot merge estimators with different pair terms")
        self._left_bank.check_merge_compatible(other._left_bank)
        self._right_bank.check_merge_compatible(other._right_bank)
        self._left_bank.merge(other._left_bank)
        self._right_bank.merge(other._right_bank)
        self._left_count += other._left_count
        self._right_count += other._right_count

    def state_dict(self, *, arrays: bool = False) -> dict:
        """A snapshot of both banks and the input counts.

        ``arrays=True`` keeps the bank counters as contiguous tensors (the
        binary-snapshot form); the default produces the v1 JSON form.  See
        :meth:`repro.core.atomic.SketchBank.state_dict`.
        """
        return {
            "left": self._left_bank.state_dict(arrays=arrays),
            "right": self._right_bank.state_dict(arrays=arrays),
            "left_count": self._left_count,
            "right_count": self._right_count,
        }

    def load_state_dict(self, state: Mapping, *, copy: bool = True) -> None:
        """Restore a snapshot captured by :meth:`state_dict`.

        The estimator must have been constructed with the same configuration
        (domain, pair terms, instance count and seed).  ``copy=False``
        adopts array-form counter tensors without copying (e.g. read-only
        memory-mapped snapshot views).
        """
        self._left_bank.load_state_dict(state["left"], copy=copy)
        self._right_bank.load_state_dict(state["right"], copy=copy)
        self._left_count = int(state["left_count"])
        self._right_count = int(state["right_count"])

    # -- lowering (estimation itself is inherited from the program layer) ---------------

    def _program_terms(self) -> tuple[ProgramTerm, ...]:
        """One term per (left word, right word) combination, in combo order."""
        if self._compiled_terms is None:
            self._compiled_terms = tuple(
                ProgramTerm(
                    coefficient,
                    counters=(CounterRef(self._left_bank, left_word),
                              CounterRef(self._right_bank, right_word)),
                )
                for (left_word, right_word), coefficient in self._combos.items()
            )
        return self._compiled_terms

    def _counts(self) -> tuple[int, int]:
        return self._left_count, self._right_count

    def _require_data(self) -> None:
        if self._left_count == 0 and self._right_count == 0 and \
                self._left_bank.num_updates == 0 and self._right_bank.num_updates == 0:
            raise EstimationError("estimate requested before any data was inserted")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(d={self.dimension}, instances={self._num_instances}, "
            f"|R|={self._left_count}, |S|={self._right_count})"
        )
