"""Containment joins (Appendix B.2).

The containment join asks how many pairs ``(r, s)`` with ``r`` from the
outer input and ``s`` from the inner input satisfy ``s`` contained in ``r``
(closed containment, i.e. ``l(r_i) <= l(s_i)`` and ``u(s_i) <= u(r_i)`` in
every dimension).

Following Appendix B.2, the d-dimensional containment problem is translated
into a 2d-dimensional point-in-hyper-rectangle problem: the outer rectangle
``r`` becomes the 2d-dimensional box ``prod_i (r(i) x r(i))`` and the inner
rectangle ``s`` becomes the 2d-dimensional point
``(l(s_1), u(s_1), ..., l(s_d), u(s_d))``.  Then ``s`` is contained in ``r``
iff the point lies inside the box, which is exactly the epsilon-join
counting primitive (Section 6.3): ``Z = X_outer * Y_inner`` with an all-I
word on the box side and an all-point word on the point side.
"""

from __future__ import annotations

import numpy as np

from repro.core.atomic import Letter, SketchBank
from repro.core.boosting import BoostingPlan
from repro.core.domain import Domain
from repro.core.program import CounterRef, ProgramTerm, QuerylessProgramEstimator
from repro.errors import EstimationError, MergeCompatibilityError, SketchConfigError
from repro.geometry.boxset import BoxSet


class ContainmentJoinEstimator(QuerylessProgramEstimator):
    """Estimates ``|{(r, s) : s contained in r}|`` for two hyper-rectangle sets.

    Lowers to a single-term :class:`~repro.core.program.SketchProgram`
    (``Z = X_outer * Y_inner`` over the doubled domain) executed on the
    shared program executor; the estimate surface is inherited from
    :class:`QuerylessProgramEstimator`.
    """

    def __init__(self, domain: Domain, num_instances: int, *, seed=0,
                 boosting: BoostingPlan | None = None) -> None:
        if num_instances < 1:
            raise SketchConfigError("at least one atomic-sketch instance is required")
        self._domain = domain
        self._plan = boosting
        self._num_instances = int(num_instances)
        # The doubled domain: dimension i of the data contributes dimensions
        # 2i and 2i+1, both over the same coordinate range.
        doubled_sizes = []
        doubled_levels = []
        for dyadic in domain.dyadics:
            doubled_sizes.extend([dyadic.requested_size, dyadic.requested_size])
            level = None if dyadic.max_level == dyadic.height else dyadic.max_level
            doubled_levels.extend([level, level])
        self._doubled = Domain(doubled_sizes, max_levels=doubled_levels)

        outer_word = (Letter.INTERVAL,) * self._doubled.dimension
        inner_word = (Letter.LOWER_POINT,) * self._doubled.dimension
        self._outer_word = outer_word
        self._inner_word = inner_word
        self._outer_bank = SketchBank(self._doubled, [outer_word], num_instances, seed=seed)
        self._inner_bank = self._outer_bank.companion([inner_word])
        self._outer_count = 0
        self._inner_count = 0

    # -- introspection ------------------------------------------------------------

    @property
    def domain(self) -> Domain:
        return self._domain

    @property
    def dimension(self) -> int:
        return self._domain.dimension

    @property
    def num_instances(self) -> int:
        return self._num_instances

    @property
    def outer_count(self) -> int:
        return self._outer_count

    @property
    def inner_count(self) -> int:
        return self._inner_count

    # -- the dimension-doubling transformation -----------------------------------------

    def _double_outer(self, boxes: BoxSet) -> BoxSet:
        """``r -> prod_i (r(i) x r(i))`` as a 2d-dimensional box set."""
        self._domain.validate_boxes(boxes, what="outer boxes")
        lows = np.repeat(boxes.lows, 2, axis=1)
        highs = np.repeat(boxes.highs, 2, axis=1)
        return BoxSet(lows, highs, validate=False)

    def _double_inner(self, boxes: BoxSet) -> BoxSet:
        """``s -> (l(s_1), u(s_1), ..., l(s_d), u(s_d))`` as degenerate boxes."""
        self._domain.validate_boxes(boxes, what="inner boxes")
        n, d = boxes.lows.shape
        coords = np.empty((n, 2 * d), dtype=np.int64)
        coords[:, 0::2] = boxes.lows
        coords[:, 1::2] = boxes.highs
        return BoxSet(coords, coords.copy(), validate=False)

    # -- updates --------------------------------------------------------------------------

    def insert_outer(self, boxes: BoxSet) -> None:
        """Insert containing-side rectangles."""
        self._outer_bank.insert(self._double_outer(boxes))
        self._outer_count += len(boxes)

    def insert_inner(self, boxes: BoxSet) -> None:
        """Insert contained-side rectangles."""
        self._inner_bank.insert(self._double_inner(boxes))
        self._inner_count += len(boxes)

    def delete_outer(self, boxes: BoxSet) -> None:
        self._outer_bank.insert(self._double_outer(boxes), weight=-1.0)
        self._outer_count -= len(boxes)

    def delete_inner(self, boxes: BoxSet) -> None:
        self._inner_bank.insert(self._double_inner(boxes), weight=-1.0)
        self._inner_count -= len(boxes)


    # -- composition and persistence ----------------------------------------------------

    def merge(self, other: "ContainmentJoinEstimator") -> None:
        """Fold another estimator over a disjoint partition into this one."""
        if type(other) is not type(self):
            raise MergeCompatibilityError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )
        self._outer_bank.check_merge_compatible(other._outer_bank)
        self._inner_bank.check_merge_compatible(other._inner_bank)
        self._outer_bank.merge(other._outer_bank)
        self._inner_bank.merge(other._inner_bank)
        self._outer_count += other._outer_count
        self._inner_count += other._inner_count

    def state_dict(self, *, arrays: bool = False) -> dict:
        """A snapshot of both banks and the input counts.

        ``arrays=True`` keeps the counters as contiguous tensors (the
        binary-snapshot form); the default is the v1 JSON form.
        """
        return {
            "outer": self._outer_bank.state_dict(arrays=arrays),
            "inner": self._inner_bank.state_dict(arrays=arrays),
            "outer_count": self._outer_count,
            "inner_count": self._inner_count,
        }

    def load_state_dict(self, state, *, copy: bool = True) -> None:
        """Restore a snapshot captured by :meth:`state_dict`."""
        self._outer_bank.load_state_dict(state["outer"], copy=copy)
        self._inner_bank.load_state_dict(state["inner"], copy=copy)
        self._outer_count = int(state["outer_count"])
        self._inner_count = int(state["inner_count"])

    # -- lowering (estimation itself is inherited from the program layer) ---------------

    def _program_terms(self) -> tuple[ProgramTerm, ...]:
        return (ProgramTerm(
            1.0,
            counters=(CounterRef(self._outer_bank, self._outer_word),
                      CounterRef(self._inner_bank, self._inner_word)),
        ),)

    def _counts(self) -> tuple[int, int]:
        return self._outer_count, self._inner_count

    def _require_data(self) -> None:
        if self._outer_count == 0 and self._inner_count == 0:
            raise EstimationError("estimate requested before any data was inserted")
