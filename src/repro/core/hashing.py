"""Four-wise independent {-1, +1} random variable families.

Section 2.2 of the paper requires, per atomic sketch and per dimension, a
family of four-wise independent random variables ``xi_i in {-1, +1}`` that
can be generated on the fly from a small seed.  We use the standard
construction based on degree-3 polynomials over a prime field:

    h(i) = a*i^3 + b*i^2 + c*i + d   (mod p),        p = 2^31 - 1
    xi_i = +1 if h(i) is even else -1

A random degree-3 polynomial over GF(p) is a 4-universal hash, so the
values ``h(i)`` of any four distinct ids are independent and uniform over
``[0, p)``.  Taking the parity of a uniform value over an odd-sized range
introduces a bias of ``1/p`` (about 5e-10) relative to a perfect coin,
which is negligible compared to every sampling error in this library; the
deviation from exact four-wise independence is of the same order.

The bank evaluates many independent families (one per atomic-sketch
instance) over arrays of ids at once, which is what makes sketch
construction array-at-a-time instead of per-variable.
"""

from __future__ import annotations

import zlib
from typing import Sequence

import numpy as np

from repro.errors import SketchConfigError


def stable_text_hash(parts: Sequence[str]) -> int:
    """A process-independent 32-bit hash of a tuple of strings.

    Unlike the built-in ``hash()``, which is salted per process
    (``PYTHONHASHSEED``), this value is stable across runs, machines and
    Python versions — the property sketch seeds need once they outlive the
    process via service snapshots, where a seed decides merge
    compatibility.
    """
    return zlib.crc32("::".join(parts).encode("utf-8"))


def stable_seed_offset(parts: Sequence[str], *, modulus: int = 100_000) -> int:
    """A deterministic per-name-tuple seed offset in ``[0, modulus)``.

    Used by the engine's synopsis managers to give every relation pair its
    own xi families while keeping the derivation reproducible: two processes
    (or a process and its restored snapshot) derive identical seeds for the
    same names, so their sketches stay merge-compatible.
    """
    if modulus < 1:
        raise SketchConfigError("seed modulus must be positive")
    return stable_text_hash(parts) % modulus

#: Prime modulus for the polynomial hash.  ``p = 2^31 - 1`` keeps every
#: intermediate product below 2^62, so the whole evaluation stays inside
#: uint64 arithmetic without overflow.
MERSENNE_PRIME = np.uint64((1 << 31) - 1)

#: Largest id (exclusive) that a family can be evaluated on.
MAX_UNIVERSE = int(MERSENNE_PRIME)

#: Number of polynomial coefficients per family (degree-3 polynomial).
COEFFICIENTS_PER_FAMILY = 4


def coefficients_to_state(coefficients: np.ndarray) -> list:
    """JSON form of a ``(num_families, 4)`` coefficient matrix.

    This is the canonical xi serialisation used by sketch snapshots: the
    coefficients *are* the family (evaluation is a pure function of them),
    so storing them makes a snapshot self-describing and lets a restore
    verify seed compatibility without re-deriving RNG state.
    """
    return np.asarray(coefficients, dtype=np.uint64).tolist()


def coefficients_from_state(state) -> np.ndarray:
    """Inverse of :func:`coefficients_to_state` (also accepts ndarrays).

    Accepts the JSON nested-list form, a ``(num_families, 4)`` array of any
    integer dtype (e.g. a read-only memory-mapped view from a binary
    snapshot), or a stack of such matrices; always returns ``uint64``.
    """
    try:
        coefficients = np.asarray(state, dtype=np.uint64)
    except (TypeError, ValueError, OverflowError) as exc:
        # e.g. negative or non-numeric values in a hand-edited snapshot.
        raise SketchConfigError(f"malformed xi coefficient state: {exc}") from exc
    if coefficients.ndim < 2 or coefficients.shape[-1] != COEFFICIENTS_PER_FAMILY:
        raise SketchConfigError(
            f"xi coefficient state must have {COEFFICIENTS_PER_FAMILY} "
            f"coefficients per family, got shape {coefficients.shape}"
        )
    return coefficients


def stack_xi_coefficients(banks: Sequence["FourWiseFamilyBank"]) -> np.ndarray:
    """One contiguous ``(dims, num_families, 4)`` tensor over per-dim banks.

    All banks of one sketch share ``num_families``, so the per-dimension
    coefficient matrices stack into a single array — the shape binary
    snapshots store (and memory-map back) in one piece.
    """
    if not banks:
        raise SketchConfigError("at least one xi bank is required")
    return np.ascontiguousarray(
        np.stack([bank.coefficients for bank in banks]), dtype=np.uint64)


class FourWiseFamilyBank:
    """``num_families`` independent four-wise independent sign families.

    Parameters
    ----------
    num_families:
        How many independent families (atomic-sketch instances) to create.
    universe_size:
        Ids passed to :meth:`signs` must be in ``[0, universe_size)``.
    seed:
        Seed (or :class:`numpy.random.Generator`) used to draw the
        polynomial coefficients.  Two banks created from the same seed and
        shape produce identical families, which is how the left and right
        join inputs share their xi families.
    """

    # ``__weakref__`` lets the program executor's letter-sum cache key on a
    # weak reference to the xi bank, so cached vectors never pin families.
    __slots__ = ("_coefficients", "_universe_size", "_table", "_ids_requested",
                 "__weakref__")

    #: Precompute a full sign table when it would use at most this many bytes.
    _TABLE_BYTE_LIMIT = 1 << 28

    def __init__(self, num_families: int, universe_size: int, seed) -> None:
        if num_families < 1:
            raise SketchConfigError("at least one family is required")
        if universe_size < 1:
            raise SketchConfigError("universe size must be positive")
        if universe_size > MAX_UNIVERSE:
            raise SketchConfigError(
                f"universe size {universe_size} exceeds the maximum of {MAX_UNIVERSE}"
            )
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        coeffs = rng.integers(
            0, int(MERSENNE_PRIME), size=(num_families, COEFFICIENTS_PER_FAMILY), dtype=np.int64
        )
        # A zero leading coefficient merely lowers the degree; the family is
        # still 4-universal because all four coefficients are random.
        self._coefficients = coeffs.astype(np.uint64)
        self._universe_size = int(universe_size)
        self._table: np.ndarray | None = None
        self._ids_requested = 0

    # -- introspection ---------------------------------------------------

    @property
    def num_families(self) -> int:
        return self._coefficients.shape[0]

    @property
    def universe_size(self) -> int:
        return self._universe_size

    @property
    def coefficients(self) -> np.ndarray:
        """The ``(num_families, 4)`` coefficient matrix (read-only view)."""
        view = self._coefficients.view()
        view.setflags(write=False)
        return view

    def seed_words(self) -> int:
        """Number of machine words needed to store the seeds of this bank."""
        return self.num_families * COEFFICIENTS_PER_FAMILY

    # -- (de)serialisation -------------------------------------------------

    @classmethod
    def from_coefficients(cls, coefficients, universe_size: int
                          ) -> "FourWiseFamilyBank":
        """Rebuild a bank from serialised coefficients (exact same families)."""
        coefficients = coefficients_from_state(coefficients)
        if coefficients.ndim != 2:
            raise SketchConfigError(
                f"a bank needs a (num_families, {COEFFICIENTS_PER_FAMILY}) "
                f"coefficient matrix, got shape {coefficients.shape}"
            )
        bank = cls(coefficients.shape[0], universe_size, seed=0)
        bank._coefficients = np.ascontiguousarray(coefficients)
        bank._table = None
        bank._ids_requested = 0
        return bank

    def coefficients_state(self) -> list:
        """The JSON-serialisable form of this bank's coefficients."""
        return coefficients_to_state(self._coefficients)

    def matches_coefficients(self, state) -> bool:
        """Whether serialised coefficients describe these exact families.

        ``state`` may be the JSON nested-list form, an ndarray (possibly a
        read-only memory-mapped snapshot view), or another bank's
        ``coefficients``.  Used by merge/restore compatibility checks, so
        sketch modules never have to compare raw coefficient arrays.
        """
        try:
            coefficients = coefficients_from_state(state)
        except SketchConfigError:
            return False
        return (coefficients.shape == self._coefficients.shape
                and np.array_equal(coefficients, self._coefficients))

    # -- evaluation --------------------------------------------------------

    def _hash(self, ids: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
        """Evaluate the degree-3 polynomials at ``ids`` (Horner's rule).

        ``ids`` has shape ``(m,)`` and ``coefficients`` ``(k, 4)``; the result
        has shape ``(k, m)`` with values in ``[0, p)``.  Every intermediate
        product stays below 2^62, so plain uint64 arithmetic is exact.
        """
        x = ids.astype(np.uint64)[None, :]
        a = coefficients[:, 0][:, None]
        b = coefficients[:, 1][:, None]
        c = coefficients[:, 2][:, None]
        d = coefficients[:, 3][:, None]
        h = (a * x) % MERSENNE_PRIME
        h = ((h + b) * x) % MERSENNE_PRIME
        h = ((h + c) * x) % MERSENNE_PRIME
        h = (h + d) % MERSENNE_PRIME
        return h

    def _build_table(self) -> np.ndarray | None:
        total_bytes = self.num_families * self._universe_size
        if total_bytes > self._TABLE_BYTE_LIMIT:
            return None
        ids = np.arange(self._universe_size, dtype=np.uint64)
        h = self._hash(ids, self._coefficients)
        return np.where(h & np.uint64(1), np.int8(-1), np.int8(1))

    def _check_ids(self, ids: np.ndarray) -> None:
        if ids.size and (ids.min() < 0 or ids.max() >= self._universe_size):
            raise SketchConfigError(
                f"ids must be within [0, {self._universe_size}), "
                f"got range [{ids.min()}, {ids.max()}]"
            )

    def resolve_table(self, request_size: int) -> np.ndarray | None:
        """Account a prospective request and return the sign table, if any.

        The full table is built lazily once the cumulative number of
        requested ids exceeds the universe size (amortised break-even);
        small workloads keep using direct polynomial evaluation.  Fused
        evaluation paths call this **once** per request and must not also
        go through :meth:`signs` for the same ids (that would account the
        request twice).  ``None`` means no table serves this bank (not yet
        warm, or the universe is too large to materialise).
        """
        self._ids_requested += int(request_size)
        if self._table is None and self._ids_requested >= self._universe_size:
            self._table = self._build_table()
        return self._table

    def signs(self, ids, *, families: slice | np.ndarray | None = None) -> np.ndarray:
        """Sign matrix ``xi[family, id]`` for the requested ids.

        Parameters
        ----------
        ids:
            Integer array of shape ``(m,)`` with values in ``[0, universe_size)``.
        families:
            Optional subset (slice or index array) of families to evaluate.

        Returns
        -------
        ``(k, m)`` array of ``int8`` values in ``{-1, +1}``.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim != 1:
            ids = ids.ravel()
        self._check_ids(ids)
        table = self.resolve_table(ids.size)
        if table is not None:
            if families is not None:
                table = table[families]
            return table[:, ids]
        coeffs = self._coefficients if families is None else self._coefficients[families]
        h = self._hash(ids.astype(np.uint64), coeffs)
        return np.where(h & np.uint64(1), np.int8(-1), np.int8(1))

    def signs_into(self, ids: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Gather all families' signs for ``ids`` into a caller-owned buffer.

        ``out`` must be an int8 array of shape ``(num_families, len(ids))``
        — typically a slice of a reusable workspace, which is the point:
        the hot letter-sum path calls this thousands of times per batch
        and must not allocate a fresh sign matrix every time.  Unlike
        :meth:`signs` this does **not** account toward the lazy table
        build; callers route the request through :meth:`resolve_table`
        first.  Returns ``out``.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim != 1:
            ids = ids.ravel()
        self._check_ids(ids)
        if self._table is not None:
            np.take(self._table, ids, axis=1, out=out)
        else:
            h = self._hash(ids.astype(np.uint64), self._coefficients)
            parity = (h & np.uint64(1)).astype(np.int8)
            # parity 0 -> +1, parity 1 -> -1: identical values to the
            # np.where() form used by signs().
            np.multiply(parity, np.int8(-2), out=parity)
            np.add(parity, np.int8(1), out=out)
        return out

    def signs_for_family(self, family: int, ids) -> np.ndarray:
        """Convenience wrapper: signs of a single family, shape ``(m,)``."""
        return self.signs(ids, families=np.array([family]))[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FourWiseFamilyBank(num_families={self.num_families}, "
            f"universe_size={self._universe_size})"
        )
