"""Dyadic decomposition of a finite integer domain (Section 3.1).

A domain ``N = {0, ..., n-1}`` with ``n = 2^h`` is partitioned, for every
level ``0 <= level <= h``, into ``2^(h-level)`` aligned intervals of length
``2^level``.  Level 0 intervals are the individual coordinates and the
single level-``h`` interval covers the whole domain.

Dyadic intervals are identified by *node ids* following the classic
segment-tree numbering: the root (whole domain) has id 0; the children of
node ``v`` are ``2v+1`` and ``2v+2``.  There are exactly ``2n - 1`` nodes.

Three operations from the paper are provided:

* :meth:`DyadicDomain.cover` — the dyadic cover ``D([a, b])`` of an interval
  (Lemma 2: at most ``2 log2 n`` intervals),
* :meth:`DyadicDomain.point_cover` — the dyadic point cover ``D([a])``
  (Lemma 3: exactly ``log2 n + 1`` intervals, one per level),
* the ``max_level`` restriction of Section 6.5, which disallows dyadic
  intervals longer than ``2^max_level``.  ``max_level = 0`` degenerates to
  the standard (non-dyadic) sketches of Equation (1).

Lemma 4 (a point lies in an interval iff the interval cover and the point
cover share exactly one dyadic interval) continues to hold under any
``max_level`` restriction, because the restricted cover is still a disjoint
partition of the interval and the restricted point cover still contains
every allowed dyadic interval covering the point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DomainError


def _bit_lengths(values: np.ndarray) -> np.ndarray:
    """Element-wise ``int.bit_length`` for non-negative int64 arrays.

    ``frexp`` returns the base-2 exponent of the float64 value, which equals
    the bit length exactly for every integer below 2^53 — far beyond the
    2^31 node-id bound the sketches can address.
    """
    return np.frexp(values.astype(np.float64))[1].astype(np.int64)


def next_power_of_two(value: int) -> int:
    """Smallest power of two that is >= ``value`` (and >= 1)."""
    if value <= 1:
        return 1
    return 1 << (int(value) - 1).bit_length()


@dataclass(frozen=True)
class DyadicInterval:
    """A dyadic interval: ``level`` and position ``index`` within the level."""

    level: int
    index: int

    @property
    def length(self) -> int:
        return 1 << self.level

    @property
    def lo(self) -> int:
        return self.index << self.level

    @property
    def hi(self) -> int:
        return ((self.index + 1) << self.level) - 1

    def contains_point(self, point: int) -> bool:
        return self.lo <= point <= self.hi


class DyadicDomain:
    """Dyadic structure over a padded domain of size ``2^height``.

    Parameters
    ----------
    size:
        Requested domain size; it is padded up to the next power of two
        (footnote 1 in the paper).
    max_level:
        Largest dyadic level that covers may use (Section 6.5).  ``None``
        (the default) allows all levels up to the root.
    """

    __slots__ = ("_requested_size", "_size", "_height", "_max_level")

    def __init__(self, size: int, *, max_level: int | None = None) -> None:
        if size < 1:
            raise DomainError(f"domain size must be positive, got {size}")
        self._requested_size = int(size)
        self._size = next_power_of_two(int(size))
        self._height = self._size.bit_length() - 1
        if max_level is None:
            max_level = self._height
        if not 0 <= max_level <= self._height:
            raise DomainError(
                f"max_level must be in [0, {self._height}], got {max_level}"
            )
        self._max_level = int(max_level)

    # -- basic properties ---------------------------------------------------

    @property
    def requested_size(self) -> int:
        """The size that was asked for (before power-of-two padding)."""
        return self._requested_size

    @property
    def size(self) -> int:
        """The padded domain size ``n = 2^height``."""
        return self._size

    @property
    def height(self) -> int:
        """``log2`` of the padded domain size."""
        return self._height

    @property
    def max_level(self) -> int:
        return self._max_level

    @property
    def num_nodes(self) -> int:
        """Total number of dyadic intervals over the padded domain."""
        return 2 * self._size - 1

    def with_max_level(self, max_level: int | None) -> "DyadicDomain":
        """A copy of this domain with a different level restriction."""
        return DyadicDomain(self._requested_size, max_level=max_level)

    # -- node id conversions --------------------------------------------------

    def node_id(self, level: int, index: int) -> int:
        """Node id of the dyadic interval at ``(level, index)``."""
        if not 0 <= level <= self._height:
            raise DomainError(f"level {level} outside [0, {self._height}]")
        num_at_level = self._size >> level
        if not 0 <= index < num_at_level:
            raise DomainError(f"index {index} outside [0, {num_at_level}) at level {level}")
        # Nodes at depth d = height - level start at id 2^d - 1.
        depth = self._height - level
        return (1 << depth) - 1 + index

    def interval_of(self, node: int) -> DyadicInterval:
        """The dyadic interval corresponding to a node id."""
        if not 0 <= node < self.num_nodes:
            raise DomainError(f"node id {node} outside [0, {self.num_nodes})")
        depth = (node + 1).bit_length() - 1
        level = self._height - depth
        index = node - ((1 << depth) - 1)
        return DyadicInterval(level, index)

    def leaf_id(self, coordinate: int) -> int:
        """Node id of the level-0 dyadic interval at ``coordinate``."""
        self._check_coordinate(coordinate)
        return self._size - 1 + coordinate

    # -- covers ---------------------------------------------------------------

    def _check_coordinate(self, coordinate: int) -> None:
        if not 0 <= coordinate < self._size:
            raise DomainError(
                f"coordinate {coordinate} outside padded domain [0, {self._size})"
            )

    def point_cover(self, coordinate: int) -> list[int]:
        """Node ids of all allowed dyadic intervals containing ``coordinate``.

        Without a level restriction this is the root-to-leaf path of length
        ``height + 1`` (Lemma 3); with ``max_level = m`` it is the lowest
        ``m + 1`` nodes of that path.
        """
        self._check_coordinate(coordinate)
        node = self._size - 1 + int(coordinate)
        cover = [node]
        for _ in range(self._max_level):
            node = (node - 1) >> 1
            cover.append(node)
        return cover

    def cover(self, lo: int, hi: int) -> list[int]:
        """Node ids of the canonical dyadic cover of ``[lo, hi]`` (Lemma 2).

        The cover is the unique minimal set of disjoint, allowed dyadic
        intervals whose union is ``[lo, hi]``.  Without a level restriction
        it has at most ``2 log2 n`` elements; with ``max_level = m`` an
        interval of length ``L`` needs at most ``L / 2^m + 2 m`` elements.
        """
        self._check_coordinate(lo)
        self._check_coordinate(hi)
        if lo > hi:
            raise DomainError(f"cover requested for empty interval [{lo}, {hi}]")
        cover: list[int] = []
        pos = int(lo)
        hi = int(hi)
        while pos <= hi:
            # Largest allowed level at which `pos` is aligned and the block fits.
            level = self._max_level
            remaining = hi - pos + 1
            max_fit = remaining.bit_length() - 1
            if max_fit < level:
                level = max_fit
            if pos:
                alignment = (pos & -pos).bit_length() - 1
                if alignment < level:
                    level = alignment
            cover.append(self.node_id(level, pos >> level))
            pos += 1 << level
        return cover

    def covers(self, lows: np.ndarray, highs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vector form of :meth:`cover` for parallel low/high arrays.

        Returns ``(ids, lengths)`` where ``ids`` is the concatenation of all
        covers (in :meth:`cover` emission order) and ``lengths[i]`` is the
        size of the cover of box ``i``.

        The greedy walk is batched by *step* instead of by box: iteration
        ``t`` advances every interval whose cover has more than ``t``
        blocks, each step one vectorised level computation over the still
        active intervals.  A cover has at most ``2 log2 n`` blocks, so the
        Python-level loop runs O(log n) times regardless of batch size —
        this is where the ingest hot path sheds its per-box Python cost.
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        if len(lows) == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        bad = ((lows < 0) | (lows >= self._size)
               | (highs < 0) | (highs >= self._size) | (lows > highs))
        if bad.any():
            first = int(np.argmax(bad))
            # Raise exactly what the scalar walk would have raised for the
            # first offending box (coordinate checks before emptiness).
            self.cover(int(lows[first]), int(highs[first]))
        max_level = np.int64(self._max_level)
        height = self._height
        one = np.int64(1)
        pos = lows.copy()
        lengths = np.zeros(len(lows), dtype=np.int64)
        active = np.arange(len(lows), dtype=np.int64)
        step_indices: list[np.ndarray] = []
        step_nodes: list[np.ndarray] = []
        while active.size:
            current = pos[active]
            # Largest allowed level at which `current` is aligned and the
            # block still fits into the remaining interval.
            level = np.minimum(
                _bit_lengths(highs[active] - current + 1) - 1, max_level)
            alignment = np.where(current != 0,
                                 _bit_lengths(current & -current) - 1,
                                 max_level)
            np.minimum(level, alignment, out=level)
            # node_id(level, index): depth-(height-level) nodes start at
            # 2^(height-level) - 1.
            step_nodes.append((one << (height - level)) - 1
                              + (current >> level))
            step_indices.append(active)
            lengths[active] += 1
            pos[active] = current + (one << level)
            active = active[pos[active] <= highs[active]]
        starts = np.zeros(len(lows), dtype=np.int64)
        np.cumsum(lengths[:-1], out=starts[1:])
        ids = np.empty(int(lengths.sum()), dtype=np.int64)
        # Box i is active in steps 0..lengths[i]-1 consecutively, so step
        # t's node lands at slot starts[i] + t — the scalar emission order.
        for step, (indices, nodes) in enumerate(zip(step_indices, step_nodes)):
            ids[starts[indices] + step] = nodes
        return ids, lengths

    def point_covers(self, coordinates: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vector form of :meth:`point_cover`; every cover has the same length."""
        coordinates = np.asarray(coordinates, dtype=np.int64)
        if coordinates.size and (coordinates.min() < 0 or coordinates.max() >= self._size):
            raise DomainError("coordinate outside padded domain")
        per_point = self._max_level + 1
        nodes = np.empty((len(coordinates), per_point), dtype=np.int64)
        current = self._size - 1 + coordinates
        nodes[:, 0] = current
        for step in range(1, per_point):
            current = (current - 1) >> 1
            nodes[:, step] = current
        lengths = np.full(len(coordinates), per_point, dtype=np.int64)
        return nodes.reshape(-1), lengths

    # -- debugging helpers -----------------------------------------------------

    def describe_cover(self, lo: int, hi: int) -> list[DyadicInterval]:
        """The cover of ``[lo, hi]`` as :class:`DyadicInterval` objects."""
        return [self.interval_of(node) for node in self.cover(lo, hi)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DyadicDomain(size={self._size}, height={self._height}, "
            f"max_level={self._max_level})"
        )
