"""A tenant-scoped view over one shared :class:`EstimationService`.

``TenantFacade`` is the embedding-API face of multi-tenancy: every
estimator name a tenant mentions is mapped through
:func:`~repro.tenancy.registry.namespaced` (``tenant_id/name``) before it
touches the shared store, and every name the facade reports is mapped
back.  Because the prefix is *always* applied — never parsed out of
caller input — a tenant cannot name, estimate against, list, or
unregister anything outside its own namespace, even with adversarial
names like ``"other/join"`` (which simply becomes
``"me/other/join"``).  The network server enforces the same mapping per
connection; this class is the in-process equivalent and the unit the
isolation tests pin.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ServiceError

from .registry import TENANT_SEP, namespaced, validate_tenant_id


class TenantFacade:
    """Namespace-scoped proxy for one tenant over a shared service."""

    def __init__(self, service: Any, tenant_id: str) -> None:
        validate_tenant_id(tenant_id)
        self._service = service
        self.tenant_id = tenant_id
        self._prefix = tenant_id + TENANT_SEP

    def _full(self, name: str) -> str:
        if not isinstance(name, str) or not name:
            raise ServiceError("estimator name must be a non-empty string")
        return namespaced(self.tenant_id, name)

    def _short(self, full_name: str) -> str:
        return full_name[len(self._prefix):]

    # -- registration --------------------------------------------------

    def register(self, name: str, spec=None, **kwargs):
        return self._service.register(self._full(name), spec, **kwargs)

    def unregister(self, name: str) -> None:
        self._service.unregister(self._full(name))

    # -- ingestion -----------------------------------------------------

    def ingest(self, name: str, boxes, *, side: str = "left",
               kind: str = "insert") -> int:
        return self._service.ingest(self._full(name), boxes,
                                    side=side, kind=kind)

    def insert(self, name: str, boxes, *, side: str = "left") -> int:
        return self.ingest(name, boxes, side=side, kind="insert")

    def delete(self, name: str, boxes, *, side: str = "left") -> int:
        return self.ingest(name, boxes, side=side, kind="delete")

    def flush(self, **kwargs):
        return self._service.flush(**kwargs)

    # -- query side ----------------------------------------------------

    def estimate(self, name: str, query=None):
        return self._service.estimate(self._full(name), query)

    def estimate_batch(self, name: str, queries, **kwargs):
        return self._service.estimate_batch(self._full(name), queries, **kwargs)

    def estimate_multi(self, requests, **kwargs):
        mapped = [(self._full(name), query) for name, query in requests]
        return self._service.estimate_multi(mapped, **kwargs)

    def merged_view(self, name: str):
        return self._service.merged_view(self._full(name))

    # -- introspection -------------------------------------------------

    def names(self) -> list[str]:
        return [self._short(full) for full in self._service.names()
                if full.startswith(self._prefix)]

    def __contains__(self, name: str) -> bool:
        return self._full(name) in self._service

    def spec(self, name: str):
        return self._service.spec(self._full(name))

    def describe(self) -> dict:
        """The shared service's summary filtered to this tenant's names."""
        full = self._service.describe()
        return {
            "tenant": self.tenant_id,
            "num_shards": full["num_shards"],
            "estimators": {self._short(name): spec
                           for name, spec in full["estimators"].items()
                           if name.startswith(self._prefix)},
            "cached_views": [self._short(name)
                             for name in full["cached_views"]
                             if name.startswith(self._prefix)],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TenantFacade({self.tenant_id!r}, names={self.names()})"
