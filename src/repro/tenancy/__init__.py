"""Multi-tenant serving: tenant registry, quotas, and scoped facades.

See :mod:`repro.tenancy.registry` for the persisted tenant store,
:mod:`repro.tenancy.quota` for deterministic token-bucket admission, and
:mod:`repro.tenancy.facade` for the namespace-scoped service proxy.  The
network-facing enforcement (auth handshake, per-connection scoping,
fair-share coalescing, metric labels) lives in :mod:`repro.server` and
:mod:`repro.cluster`, all built on these primitives.
"""

from repro.tenancy.facade import TenantFacade
from repro.tenancy.quota import TenantAdmission, TokenBucket
from repro.tenancy.registry import (
    TENANT_SEP,
    TenantQuota,
    TenantRecord,
    TenantRegistry,
    hash_token,
    namespaced,
    split_namespace,
    validate_tenant_id,
)

__all__ = [
    "TENANT_SEP",
    "TenantAdmission",
    "TenantFacade",
    "TenantQuota",
    "TenantRecord",
    "TenantRegistry",
    "TokenBucket",
    "hash_token",
    "namespaced",
    "split_namespace",
    "validate_tenant_id",
]
