"""Tenant registry: identities, hashed API tokens, quotas, namespaces.

A tenant is an isolation domain inside one :class:`EstimationService`:
its estimators live under a ``tenant_id/name`` namespace, its requests
are admitted against its own quota, and its traffic shows up under its
own metric labels.  The registry is the source of truth for all of that:

* :func:`hash_token` — tokens are never stored; only their SHA-256 hex
  digest is kept (and snapshotted / WAL-journaled).
* :class:`TenantQuota` — declarative limits: ingest boxes/sec (token
  bucket), estimates in flight, and a weighted-round-robin ``share``
  used by the server coalescer's fair-share drain.
* :class:`TenantRecord` — one tenant: id, token hash, quota, created
  timestamp, disabled flag.
* :class:`TenantRegistry` — thread-safe id- and token-indexed store with
  a plain-JSON ``to_state``/``from_state`` round trip so the binary v2
  snapshot and the WAL can persist it without special cases.

Namespacing helpers live here too (:func:`namespaced`,
:func:`split_namespace`); tenant ids may not contain ``/`` so the
mapping is unambiguous in both directions.
"""

from __future__ import annotations

import hashlib
import re
import threading
import time
from dataclasses import dataclass, field, replace

from repro.errors import AuthenticationError, ServiceError

TENANT_SEP = "/"
_TENANT_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


def hash_token(token: str) -> str:
    """SHA-256 hex digest of an API token (the only form ever stored)."""
    if not isinstance(token, str) or not token:
        raise ServiceError("API token must be a non-empty string")
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


def validate_tenant_id(tenant_id: str) -> str:
    """Check a tenant id (no ``/``, so namespacing stays reversible)."""
    if not isinstance(tenant_id, str) or not _TENANT_ID_RE.match(tenant_id):
        raise ServiceError(
            f"invalid tenant id {tenant_id!r}: must match "
            "[A-Za-z0-9][A-Za-z0-9_.-]* (no '/')")
    return tenant_id


def namespaced(tenant_id: str, name: str) -> str:
    """Map a tenant-visible estimator name into the shared flat store."""
    return f"{tenant_id}{TENANT_SEP}{name}"


def split_namespace(full_name: str) -> tuple[str | None, str]:
    """Inverse of :func:`namespaced`; ``(None, name)`` for global names."""
    tenant_id, sep, rest = full_name.partition(TENANT_SEP)
    if not sep:
        return None, full_name
    return tenant_id, rest


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits; ``None`` means unlimited.

    ``ingest_boxes_per_sec`` feeds a token bucket whose burst capacity is
    ``ingest_burst_boxes`` (defaults to one second of rate).  ``share``
    is the tenant's weight in the coalescer's round-robin drain — a
    tenant with share 3 gets up to 3 queued estimates dequeued per cycle
    for every 1 of a share-1 tenant.
    """

    ingest_boxes_per_sec: float | None = None
    ingest_burst_boxes: float | None = None
    max_estimates_in_flight: int | None = None
    share: int = 1

    def __post_init__(self) -> None:
        if self.ingest_boxes_per_sec is not None and self.ingest_boxes_per_sec <= 0:
            raise ServiceError("ingest_boxes_per_sec must be positive")
        if self.ingest_burst_boxes is not None and self.ingest_burst_boxes <= 0:
            raise ServiceError("ingest_burst_boxes must be positive")
        if (self.max_estimates_in_flight is not None
                and self.max_estimates_in_flight < 1):
            raise ServiceError("max_estimates_in_flight must be >= 1")
        if self.share < 1:
            raise ServiceError("share must be >= 1")

    def to_dict(self) -> dict:
        return {
            "ingest_boxes_per_sec": self.ingest_boxes_per_sec,
            "ingest_burst_boxes": self.ingest_burst_boxes,
            "max_estimates_in_flight": self.max_estimates_in_flight,
            "share": self.share,
        }

    @classmethod
    def from_dict(cls, data: dict | None) -> "TenantQuota":
        data = data or {}
        return cls(
            ingest_boxes_per_sec=data.get("ingest_boxes_per_sec"),
            ingest_burst_boxes=data.get("ingest_burst_boxes"),
            max_estimates_in_flight=data.get("max_estimates_in_flight"),
            share=int(data.get("share", 1)),
        )


@dataclass(frozen=True)
class TenantRecord:
    """One registered tenant (the unit the registry stores and journals)."""

    tenant_id: str
    token_hash: str
    quota: TenantQuota = field(default_factory=TenantQuota)
    created_at: float = 0.0
    disabled: bool = False

    def to_dict(self) -> dict:
        return {
            "tenant_id": self.tenant_id,
            "token_hash": self.token_hash,
            "quota": self.quota.to_dict(),
            "created_at": self.created_at,
            "disabled": self.disabled,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantRecord":
        return cls(
            tenant_id=validate_tenant_id(data["tenant_id"]),
            token_hash=str(data["token_hash"]),
            quota=TenantQuota.from_dict(data.get("quota")),
            created_at=float(data.get("created_at", 0.0)),
            disabled=bool(data.get("disabled", False)),
        )


class TenantRegistry:
    """Thread-safe tenant store indexed by id and by token hash."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._by_id: dict[str, TenantRecord] = {}
        self._by_token: dict[str, str] = {}

    # -- CRUD ----------------------------------------------------------

    def create(self, tenant_id: str, *, token: str,
               quota: TenantQuota | None = None,
               created_at: float | None = None) -> TenantRecord:
        validate_tenant_id(tenant_id)
        record = TenantRecord(
            tenant_id=tenant_id,
            token_hash=hash_token(token),
            quota=quota or TenantQuota(),
            created_at=time.time() if created_at is None else float(created_at),
        )
        with self._lock:
            if tenant_id in self._by_id:
                raise ServiceError(f"tenant {tenant_id!r} already exists")
            if record.token_hash in self._by_token:
                raise ServiceError("token already in use by another tenant")
            self._index(record)
        return record

    def upsert(self, record: TenantRecord) -> TenantRecord:
        """Install a record verbatim (WAL replay / snapshot restore path)."""
        with self._lock:
            owner = self._by_token.get(record.token_hash)
            if owner is not None and owner != record.tenant_id:
                raise ServiceError("token already in use by another tenant")
            self._unindex(record.tenant_id)
            self._index(record)
        return record

    def update(self, tenant_id: str, *, token: str | None = None,
               quota: TenantQuota | None = None,
               disabled: bool | None = None) -> TenantRecord:
        with self._lock:
            record = self.require(tenant_id)
            changes: dict = {}
            if token is not None:
                token_hash = hash_token(token)
                owner = self._by_token.get(token_hash)
                if owner is not None and owner != tenant_id:
                    raise ServiceError("token already in use by another tenant")
                changes["token_hash"] = token_hash
            if quota is not None:
                changes["quota"] = quota
            if disabled is not None:
                changes["disabled"] = bool(disabled)
            record = replace(record, **changes)
            self._unindex(tenant_id)
            self._index(record)
        return record

    def remove(self, tenant_id: str) -> TenantRecord:
        with self._lock:
            record = self.require(tenant_id)
            self._unindex(tenant_id)
        return record

    def _index(self, record: TenantRecord) -> None:
        self._by_id[record.tenant_id] = record
        self._by_token[record.token_hash] = record.tenant_id

    def _unindex(self, tenant_id: str) -> None:
        record = self._by_id.pop(tenant_id, None)
        if record is not None:
            self._by_token.pop(record.token_hash, None)

    # -- lookup --------------------------------------------------------

    def get(self, tenant_id: str) -> TenantRecord | None:
        with self._lock:
            return self._by_id.get(tenant_id)

    def require(self, tenant_id: str) -> TenantRecord:
        record = self.get(tenant_id)
        if record is None:
            raise ServiceError(f"unknown tenant {tenant_id!r}")
        return record

    def authenticate(self, token: str) -> TenantRecord:
        """Token -> active tenant, or :class:`AuthenticationError`."""
        token_hash = hash_token(token)
        with self._lock:
            tenant_id = self._by_token.get(token_hash)
            record = self._by_id.get(tenant_id) if tenant_id else None
        if record is None:
            raise AuthenticationError("unknown API token")
        if record.disabled:
            raise AuthenticationError(f"tenant {record.tenant_id!r} is disabled")
        return record

    def ids(self) -> list[str]:
        with self._lock:
            return sorted(self._by_id)

    def __contains__(self, tenant_id: str) -> bool:
        return self.get(tenant_id) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_id)

    # -- persistence ---------------------------------------------------

    def to_state(self) -> dict:
        """Plain-JSON form embedded in snapshots (v1 and binary v2)."""
        with self._lock:
            records = [self._by_id[tid].to_dict() for tid in sorted(self._by_id)]
        return {"version": 1, "records": records}

    @classmethod
    def from_state(cls, state: dict | None) -> "TenantRegistry":
        registry = cls()
        for data in (state or {}).get("records", ()):
            registry.upsert(TenantRecord.from_dict(data))
        return registry

    def describe(self) -> dict:
        """Summary block for ``service.describe()`` / the ``stats`` verb."""
        with self._lock:
            records = dict(self._by_id)
        return {
            "tenants": len(records),
            "disabled": sum(1 for r in records.values() if r.disabled),
            "ids": sorted(records),
        }
