"""Deterministic token-bucket quotas and per-tenant admission state.

The bucket is pure arithmetic over an explicit clock: every decision is
a function of ``(state, n, now)``, never of wall time read internally.
That makes admission decisions replayable in tests (the hypothesis suite
drives interleavings with a simulated clock) and keeps the server's
event loop free of hidden time syscalls beyond the one ``loop.time()``
it already takes per request.

Debt model: a request for ``n`` tokens is admitted when the bucket holds
at least ``min(n, capacity)`` tokens and then *charges the full* ``n``,
allowing the level to go negative.  This admits single batches larger
than the burst capacity (a 10k-box ingest against a 2k-box bucket) while
still conserving the long-run rate — the debt must refill, at ``rate``,
before anything else is admitted.  Over any window the total volume
admitted is bounded by ``capacity + rate * elapsed + max_batch``.
"""

from __future__ import annotations

from repro.errors import QuotaExceededError, ServiceError

from .registry import TenantQuota


class TokenBucket:
    """A token bucket with an explicit clock and batch-debt admission."""

    __slots__ = ("rate", "capacity", "tokens", "updated")

    def __init__(self, rate: float, capacity: float | None = None,
                 *, now: float = 0.0) -> None:
        if rate <= 0:
            raise ServiceError("token bucket rate must be positive")
        self.rate = float(rate)
        self.capacity = float(capacity if capacity is not None else rate)
        if self.capacity <= 0:
            raise ServiceError("token bucket capacity must be positive")
        self.tokens = self.capacity
        self.updated = float(now)

    def _refill(self, now: float) -> None:
        # A clock that goes backwards (monotonic clocks don't, simulated
        # ones might) must never mint tokens.
        elapsed = max(0.0, float(now) - self.updated)
        self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)
        self.updated = float(now)

    def try_acquire(self, n: float, now: float) -> float:
        """Admit ``n`` tokens at time ``now``.

        Returns ``0.0`` on admission, else the retry-after hint in
        seconds (how long until the bucket could admit this request).
        """
        if n <= 0:
            return 0.0
        self._refill(now)
        needed = min(float(n), self.capacity)
        if self.tokens >= needed:
            self.tokens -= float(n)
            return 0.0
        return (needed - self.tokens) / self.rate

    def level(self, now: float) -> float:
        """Current token level (may be negative while paying off debt)."""
        self._refill(now)
        return self.tokens


class TenantAdmission:
    """Runtime admission state for one tenant on one server.

    Owned by the server's event loop (no locking): an ingest token
    bucket derived from the tenant's quota plus an estimates-in-flight
    counter.  Rejections raise :class:`QuotaExceededError` with the
    bucket's retry-after hint.
    """

    __slots__ = ("tenant_id", "quota", "ingest_bucket", "estimates_in_flight",
                 "ingest_rejections", "estimate_rejections")

    def __init__(self, tenant_id: str, quota: TenantQuota,
                 *, now: float = 0.0) -> None:
        self.tenant_id = tenant_id
        self.quota = quota
        if quota.ingest_boxes_per_sec is not None:
            capacity = quota.ingest_burst_boxes
            self.ingest_bucket = TokenBucket(quota.ingest_boxes_per_sec,
                                             capacity, now=now)
        else:
            self.ingest_bucket = None
        self.estimates_in_flight = 0
        self.ingest_rejections = 0
        self.estimate_rejections = 0

    def admit_ingest(self, num_boxes: int, now: float) -> None:
        if self.ingest_bucket is None:
            return
        retry_after = self.ingest_bucket.try_acquire(num_boxes, now)
        if retry_after > 0.0:
            self.ingest_rejections += 1
            raise QuotaExceededError(
                f"tenant {self.tenant_id!r} ingest quota exceeded "
                f"({self.quota.ingest_boxes_per_sec:g} boxes/sec)",
                retry_after=retry_after)

    def acquire_estimate(self) -> None:
        limit = self.quota.max_estimates_in_flight
        if limit is not None and self.estimates_in_flight >= limit:
            self.estimate_rejections += 1
            raise QuotaExceededError(
                f"tenant {self.tenant_id!r} estimate quota exceeded "
                f"({limit} in flight)",
                retry_after=0.0)
        self.estimates_in_flight += 1

    def release_estimate(self) -> None:
        self.estimates_in_flight = max(0, self.estimates_in_flight - 1)

    def describe(self, now: float) -> dict:
        return {
            "estimates_in_flight": self.estimates_in_flight,
            "ingest_tokens": (None if self.ingest_bucket is None
                              else self.ingest_bucket.level(now)),
            "ingest_rejections": self.ingest_rejections,
            "estimate_rejections": self.estimate_rejections,
        }
