"""Physical operators of the mini spatial query engine.

Every operator executes exactly (no approximation) and reports execution
statistics — most importantly the number of elementary comparisons it
performed, which is the unit the cost model predicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.relation import SpatialRelation
from repro.errors import EngineError
from repro.exact.rectangle_join import plane_sweep_join_count
from repro.geometry.boxset import BoxSet
from repro.geometry.rectangle import Rect
from repro.index.grid import GridIndex
from repro.index.rtree import RTree


@dataclass
class OperatorResult:
    """Execution outcome: result cardinality plus basic statistics."""

    cardinality: int
    comparisons: int
    operator: str
    pairs: list[tuple[int, int]] = field(default_factory=list)


class _JoinOperator:
    """Common plumbing of the binary join operators."""

    name = "join"

    def __init__(self, left: SpatialRelation, right: SpatialRelation,
                 *, closed: bool = False) -> None:
        if left.dimension != right.dimension:
            raise EngineError("join inputs have different dimensionality")
        self._left = left
        self._right = right
        self._closed = closed

    def execute(self) -> OperatorResult:  # pragma: no cover - overridden
        raise NotImplementedError


class NestedLoopJoin(_JoinOperator):
    """Block nested-loop join (chunked all-pairs evaluation)."""

    name = "nested_loop"

    def execute(self, *, collect_pairs: bool = False, chunk_size: int = 256) -> OperatorResult:
        left = self._left.boxes()
        right = self._right.boxes()
        if len(left) == 0 or len(right) == 0:
            return OperatorResult(0, 0, self.name)
        comparisons = len(left) * len(right)
        cardinality = 0
        pairs: list[tuple[int, int]] = []
        for start in range(0, len(left), chunk_size):
            stop = min(start + chunk_size, len(left))
            l_lo = left.lows[start:stop, None, :]
            l_hi = left.highs[start:stop, None, :]
            if self._closed:
                per_dim = (l_lo <= right.highs[None, :, :]) & (right.lows[None, :, :] <= l_hi)
            else:
                per_dim = (l_lo < right.highs[None, :, :]) & (right.lows[None, :, :] < l_hi)
                proper = np.all(left.lows[start:stop] < left.highs[start:stop], axis=1)
                per_dim &= proper[:, None, None]
                proper_right = np.all(right.lows < right.highs, axis=1)
                per_dim &= proper_right[None, :, None]
            hits = np.all(per_dim, axis=2)
            cardinality += int(np.count_nonzero(hits))
            if collect_pairs:
                for i, j in zip(*np.nonzero(hits)):
                    pairs.append((start + int(i), int(j)))
        return OperatorResult(cardinality, comparisons, self.name, pairs)


class PlaneSweepJoin(_JoinOperator):
    """Plane-sweep join (two-dimensional data only)."""

    name = "plane_sweep"

    def execute(self) -> OperatorResult:
        left = self._left.boxes()
        right = self._right.boxes()
        if left.dimension != 2:
            raise EngineError("the plane-sweep join handles two-dimensional data only")
        if len(left) == 0 or len(right) == 0:
            return OperatorResult(0, 0, self.name)
        cardinality = plane_sweep_join_count(left, right, closed=self._closed)
        total = len(left) + len(right)
        comparisons = int(total * max(1, np.log2(max(total, 2))))
        return OperatorResult(cardinality, comparisons, self.name)


class IndexNestedLoopJoin(_JoinOperator):
    """Grid-index nested-loop join: index the right input, probe with the left."""

    name = "index_nested_loop"

    def __init__(self, left: SpatialRelation, right: SpatialRelation, *,
                 closed: bool = False, cells_per_dim: int = 32) -> None:
        super().__init__(left, right, closed=closed)
        self._cells_per_dim = cells_per_dim

    def execute(self) -> OperatorResult:
        left = self._left.boxes()
        right = self._right.boxes()
        if len(left) == 0 or len(right) == 0:
            return OperatorResult(0, 0, self.name)
        index = GridIndex(right, cells_per_dim=self._cells_per_dim)
        cardinality = 0
        comparisons = len(right)  # build cost proxy
        for i in range(len(left)):
            candidates = index.candidates(left[i])
            comparisons += int(candidates.size) + 1
            matches = index.query(left[i], closed=self._closed)
            cardinality += int(matches.size)
        return OperatorResult(cardinality, comparisons, self.name)


class RTreeJoin(_JoinOperator):
    """Dual R-tree join: bulk-load both inputs and traverse the trees together."""

    name = "rtree_join"

    def execute(self) -> OperatorResult:
        left = self._left.boxes()
        right = self._right.boxes()
        if len(left) == 0 or len(right) == 0:
            return OperatorResult(0, 0, self.name)
        left_tree = RTree(left)
        right_tree = RTree(right)
        cardinality = left_tree.join_count(right_tree, closed=self._closed)
        total = len(left) + len(right)
        comparisons = int(total * max(1, np.log2(max(total, 2)))) + 4 * cardinality
        return OperatorResult(cardinality, comparisons, self.name)


class RangeScan:
    """Selection of the objects overlapping a query rectangle."""

    name = "range_scan"

    def __init__(self, relation: SpatialRelation, query: Rect, *, closed: bool = True) -> None:
        self._relation = relation
        self._query = query
        self._closed = closed

    def execute(self) -> OperatorResult:
        data = self._relation.boxes()
        if len(data) == 0:
            return OperatorResult(0, 0, self.name)
        q = BoxSet.from_rects([self._query])
        if self._closed:
            mask = np.all((data.lows <= q.highs[0]) & (q.lows[0] <= data.highs), axis=1)
        else:
            mask = np.all((data.lows < q.highs[0]) & (q.lows[0] < data.highs), axis=1)
        return OperatorResult(int(np.count_nonzero(mask)), len(data), self.name)


JOIN_OPERATORS = {
    NestedLoopJoin.name: NestedLoopJoin,
    PlaneSweepJoin.name: PlaneSweepJoin,
    IndexNestedLoopJoin.name: IndexNestedLoopJoin,
    RTreeJoin.name: RTreeJoin,
}
