"""A catalog of named spatial relations sharing one domain."""

from __future__ import annotations

from typing import Iterator

from repro.core.domain import Domain
from repro.engine.relation import SpatialRelation
from repro.errors import EngineError
from repro.geometry.boxset import BoxSet


class Catalog:
    """Creates and looks up :class:`SpatialRelation` objects."""

    def __init__(self, domain: Domain) -> None:
        self._domain = domain
        self._relations: dict[str, SpatialRelation] = {}

    @property
    def domain(self) -> Domain:
        return self._domain

    def create(self, name: str, *, boxes: BoxSet | None = None) -> SpatialRelation:
        """Create a new relation; fails if the name is taken."""
        if name in self._relations:
            raise EngineError(f"relation {name!r} already exists")
        relation = SpatialRelation(name, self._domain, boxes=boxes)
        self._relations[name] = relation
        return relation

    def drop(self, name: str) -> None:
        if name not in self._relations:
            raise EngineError(f"relation {name!r} does not exist")
        del self._relations[name]

    def get(self, name: str) -> SpatialRelation:
        try:
            return self._relations[name]
        except KeyError as exc:
            raise EngineError(f"relation {name!r} does not exist") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[SpatialRelation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> list[str]:
        return sorted(self._relations)

    def service_synopses(self, service=None, *, num_instances: int = 256,
                         seed: int = 0, max_level: int | None = None,
                         num_shards: int = 4):
        """Synopses for this catalog's relations backed by a sketch service.

        The returned :class:`~repro.engine.service_bridge.ServiceSynopses`
        exposes the same ``estimated_join_cardinality`` interface as
        :class:`~repro.engine.synopses.SynopsisManager`, but maintains its
        sketches inside a (possibly shared, possibly remote-restorable)
        :class:`~repro.service.service.EstimationService`.
        """
        from repro.engine.service_bridge import ServiceSynopses

        return ServiceSynopses(self._domain, service=service,
                               num_instances=num_instances, seed=seed,
                               max_level=max_level, num_shards=num_shards)
