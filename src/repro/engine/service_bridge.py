"""Source the engine's synopses from a running sketch service.

:class:`ServiceSynopses` is a drop-in replacement for
:class:`~repro.engine.synopses.SynopsisManager` that keeps its sketches
inside an :class:`~repro.service.service.EstimationService` instead of as
in-process estimator objects.  Relations of a :class:`~repro.engine.catalog.Catalog`
are wired to the service through the same listener protocol the classic
manager uses, so inserts and deletes flow through the service's batched,
sharded ingestion path — and the optimizer consumes exactly the interface
it already knows (``estimated_join_cardinality``).

This is the shape argued for by the federated-grid and probabilistic-
summary lines of related work: compact linear summaries maintained near
the data (the service shards), combined at query time (merged views).
"""

from __future__ import annotations

from typing import Sequence


from repro.core.domain import Domain
from repro.core.hashing import stable_seed_offset as pair_seed_offset
from repro.engine.relation import SpatialRelation
from repro.errors import EngineError
from repro.geometry.boxset import BoxSet
from repro.geometry.rectangle import Rect


class _ServicePairListener:
    """Routes relation mutations into the two sides of a service estimator."""

    def __init__(self, service, name: str, left: SpatialRelation,
                 right: SpatialRelation) -> None:
        self._service = service
        self._name = name
        self._left = left
        self._right = right

    def on_insert(self, relation: SpatialRelation, boxes: BoxSet) -> None:
        if relation is self._left:
            self._service.ingest(self._name, boxes, side="left", kind="insert")
        if relation is self._right:
            self._service.ingest(self._name, boxes, side="right", kind="insert")

    def on_delete(self, relation: SpatialRelation, boxes: BoxSet) -> None:
        if relation is self._left:
            self._service.ingest(self._name, boxes, side="left", kind="delete")
        if relation is self._right:
            self._service.ingest(self._name, boxes, side="right", kind="delete")


class _ServiceSingleListener:
    """Routes relation mutations into a single-input service estimator."""

    def __init__(self, service, name: str, relation: SpatialRelation) -> None:
        self._service = service
        self._name = name
        self._relation = relation

    def on_insert(self, relation: SpatialRelation, boxes: BoxSet) -> None:
        if relation is self._relation:
            self._service.ingest(self._name, boxes, side="data", kind="insert")

    def on_delete(self, relation: SpatialRelation, boxes: BoxSet) -> None:
        if relation is self._relation:
            self._service.ingest(self._name, boxes, side="data", kind="delete")


class ServiceSynopses:
    """Service-backed synopses with the :class:`SynopsisManager` interface.

    Parameters
    ----------
    domain:
        The engine's data space (possibly level-restricted via ``max_level``).
    service:
        An :class:`~repro.service.service.EstimationService` to use; a
        private 4-shard service is created when omitted.
    num_instances, seed:
        Sketch sizing, matching :class:`SynopsisManager`'s parameters.
    """

    def __init__(self, domain: Domain, *, service=None, num_instances: int = 256,
                 seed: int = 0, max_level: int | None = None,
                 num_shards: int = 4) -> None:
        from repro.service.service import EstimationService

        self._domain = domain if max_level is None else domain.with_max_level(max_level)
        if service is None:
            service = EstimationService(num_shards=num_shards)
        self._service = service
        self._num_instances = int(num_instances)
        self._seed = int(seed)
        self._join_names: dict[tuple[str, str], str] = {}
        self._range_names: dict[str, str] = {}

    @classmethod
    def from_snapshot(cls, path, domain: Domain, *, num_instances: int = 256,
                      seed: int = 0, max_level: int | None = None,
                      **service_kwargs) -> "ServiceSynopses":
        """Boot synopses from a service snapshot file (binary v2 or JSON v1).

        The snapshot format is auto-detected; binary snapshots restore by
        memory-mapping the counter tensors, so a warm optimizer comes up in
        milliseconds even for large sketch inventories.  Estimators already
        present in the snapshot are adopted as-is (see
        :meth:`join_sketch_name`); pairs first probed after the restore are
        registered fresh with the deterministic per-pair seeds, exactly as
        the snapshotting process derived them.
        """
        from repro.service.service import EstimationService

        service = EstimationService.load(path, **service_kwargs)
        return cls(domain, service=service, num_instances=num_instances,
                   seed=seed, max_level=max_level)

    @property
    def service(self):
        return self._service

    @property
    def domain(self) -> Domain:
        return self._domain

    # -- join sketches ------------------------------------------------------------

    def join_sketch_name(self, left: SpatialRelation, right: SpatialRelation) -> str:
        """Service estimator name for an ordered relation pair (lazily created)."""
        if left.name == right.name:
            raise EngineError("a join sketch needs two distinct relations")
        key = (left.name, right.name)
        if key not in self._join_names:
            name = f"join::{left.name}::{right.name}"
            if name not in self._service:
                # pair_seed_offset is a deterministic (process-independent)
                # hash: snapshots taken in one process stay merge-compatible
                # with sketches built for the same pair in another.
                pair_seed = self._seed + pair_seed_offset(key)
                self._service.register(name, family="hyperrect",
                                       domain=self._domain,
                                       num_instances=self._num_instances,
                                       seed=pair_seed)
                if len(left):
                    self._service.ingest(name, left.boxes(), side="left")
                if len(right):
                    self._service.ingest(name, right.boxes(), side="right")
            # An already-registered name (snapshot-restored service, or a
            # service shared with an earlier ServiceSynopses) is adopted
            # as-is: it already summarises the relations' contents, so no
            # backfill — only this instance's listeners are attached.
            listener = _ServicePairListener(self._service, name, left, right)
            left.add_listener(listener)
            right.add_listener(listener)
            self._join_names[key] = name
        return self._join_names[key]

    def join_sketch(self, left: SpatialRelation, right: SpatialRelation):
        """The merged (all-shard) estimator for a pair — a read-only snapshot."""
        return self._service.merged_view(self.join_sketch_name(left, right))

    def estimated_join_cardinality(self, left: SpatialRelation,
                                   right: SpatialRelation) -> float:
        """The interface the optimizer consumes."""
        if len(left) == 0 or len(right) == 0:
            return 0.0
        name = self.join_sketch_name(left, right)
        return max(0.0, self._service.estimate(name).estimate)

    def estimated_join_cardinalities(
            self, pairs: Sequence[tuple[SpatialRelation, SpatialRelation]]
    ) -> list[float]:
        """Batched probe across many relation pairs (one executor dispatch).

        Mirrors :meth:`SynopsisManager.estimated_join_cardinalities`: the
        merged shard view of every live pair (served from the service's
        LRU cache) lowers to one sketch program and the whole probe runs as
        a single :class:`~repro.core.program.ProgramExecutor` batch.
        Adopted (snapshot-restored) names may carry different instance
        counts than this bridge's default; the executor's reduction
        grouping handles the mix, boosting each ``(instances, plan)`` group
        with one :func:`~repro.core.boosting.median_of_means_batch` call.
        Bit-identical to per-pair :meth:`estimated_join_cardinality` calls.
        """
        from repro.core.program import default_executor

        results: list[float] = [0.0] * len(pairs)
        live = [index for index, (left, right) in enumerate(pairs)
                if len(left) and len(right)]
        if not live:
            return results
        programs = [
            self._service.merged_view(self.join_sketch_name(*pairs[index])).lower()
            for index in live
        ]
        outcomes = default_executor().run(programs)
        for position, index in enumerate(live):
            results[index] = max(0.0, outcomes[position].estimate)
        self._service.record_estimates(len(live))
        return results

    # -- range sketches -----------------------------------------------------------

    def range_sketch_name(self, relation: SpatialRelation) -> str:
        if relation.name not in self._range_names:
            name = f"range::{relation.name}"
            if name not in self._service:
                self._service.register(name, family="range", domain=self._domain,
                                       num_instances=self._num_instances,
                                       seed=self._seed + pair_seed_offset(
                                           (relation.name,)))
                if len(relation):
                    self._service.ingest(name, relation.boxes(), side="data")
            relation.add_listener(_ServiceSingleListener(self._service, name, relation))
            self._range_names[relation.name] = name
        return self._range_names[relation.name]

    def range_sketch(self, relation: SpatialRelation):
        return self._service.merged_view(self.range_sketch_name(relation))

    def estimated_range_cardinality(self, relation: SpatialRelation,
                                    query: Rect | BoxSet) -> float:
        if len(relation) == 0:
            return 0.0
        name = self.range_sketch_name(relation)
        return max(0.0, self._service.estimate(name, query).estimate)

    def estimated_range_cardinalities(self, relation: SpatialRelation,
                                      queries: Sequence[Rect | BoxSet]
                                      ) -> list[float]:
        """Batched range probes through the service's vectorised batch path."""
        if len(relation) == 0:
            return [0.0] * len(queries)
        name = self.range_sketch_name(relation)
        return [max(0.0, result.estimate)
                for result in self._service.estimate_batch(name, queries)]
