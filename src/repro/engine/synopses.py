"""Per-relation-pair synopses maintained under inserts and deletes.

The :class:`SynopsisManager` is the glue between the engine and the
estimation techniques of :mod:`repro.core` / :mod:`repro.histograms`:

* ``join_sketch(left, right)`` lazily creates a
  :class:`~repro.core.join_hyperrect.SpatialJoinEstimator` for a relation
  pair, back-fills it with the relations' current contents and from then on
  keeps it up to date by listening to relation mutations.
* ``range_sketch(relation)`` does the same with a
  :class:`~repro.core.range_query.RangeQueryEstimator`.
* ``histogram(relation, kind, level)`` maintains a GH or EH baseline.

Estimated selectivities are what the optimizer consumes.
"""

from __future__ import annotations

from typing import Literal, Sequence


from repro.core.boosting import split_instances
from repro.core.domain import Domain
from repro.core.hashing import stable_seed_offset
from repro.core.join_hyperrect import SpatialJoinEstimator
from repro.core.range_query import RangeQueryEstimator
from repro.engine.relation import SpatialRelation
from repro.errors import EngineError
from repro.geometry.boxset import BoxSet
from repro.histograms.euler import EulerHistogram
from repro.histograms.geometric import GeometricHistogram


def pair_seed_offset(names: tuple[str, ...]) -> int:
    """Deterministic per-name-tuple seed offset (see :func:`stable_seed_offset`).

    Kept as an engine-level alias of the reusable
    :func:`repro.core.hashing.stable_seed_offset` helper, which is where the
    process-independent hashing now lives.
    """
    return stable_seed_offset(names)


class _JoinSketchListener:
    """Routes relation mutations into the left/right side of a join sketch."""

    def __init__(self, estimator: SpatialJoinEstimator, left: SpatialRelation,
                 right: SpatialRelation) -> None:
        self._estimator = estimator
        self._left = left
        self._right = right

    def on_insert(self, relation: SpatialRelation, boxes: BoxSet) -> None:
        if relation is self._left:
            self._estimator.insert_left(boxes)
        if relation is self._right:
            self._estimator.insert_right(boxes)

    def on_delete(self, relation: SpatialRelation, boxes: BoxSet) -> None:
        if relation is self._left:
            self._estimator.delete_left(boxes)
        if relation is self._right:
            self._estimator.delete_right(boxes)


class _SingleRelationListener:
    """Routes relation mutations into a single-input synopsis."""

    def __init__(self, synopsis, relation: SpatialRelation) -> None:
        self._synopsis = synopsis
        self._relation = relation

    def on_insert(self, relation: SpatialRelation, boxes: BoxSet) -> None:
        if relation is self._relation:
            self._synopsis.insert(boxes)

    def on_delete(self, relation: SpatialRelation, boxes: BoxSet) -> None:
        if relation is self._relation:
            self._synopsis.delete(boxes)


class SynopsisManager:
    """Creates and maintains synopses for relations of one catalog/domain."""

    def __init__(self, domain: Domain, *, num_instances: int = 256, seed: int = 0,
                 max_level: int | None = None) -> None:
        self._domain = domain if max_level is None else domain.with_max_level(max_level)
        self._num_instances = int(num_instances)
        self._seed = int(seed)
        self._join_sketches: dict[tuple[str, str], SpatialJoinEstimator] = {}
        self._range_sketches: dict[str, RangeQueryEstimator] = {}
        self._histograms: dict[tuple[str, str, int], object] = {}

    # -- join sketches -----------------------------------------------------------------

    def join_sketch(self, left: SpatialRelation, right: SpatialRelation
                    ) -> SpatialJoinEstimator:
        """The (lazily created) join sketch for an ordered relation pair."""
        if left.name == right.name:
            raise EngineError("a join sketch needs two distinct relations")
        key = (left.name, right.name)
        if key not in self._join_sketches:
            pair_seed = self._seed + pair_seed_offset(key)
            estimator = SpatialJoinEstimator(self._domain, self._num_instances,
                                             seed=pair_seed)
            if len(left):
                estimator.insert_left(left.boxes())
            if len(right):
                estimator.insert_right(right.boxes())
            listener = _JoinSketchListener(estimator, left, right)
            left.add_listener(listener)
            right.add_listener(listener)
            self._join_sketches[key] = estimator
        return self._join_sketches[key]

    def estimated_join_cardinality(self, left: SpatialRelation,
                                   right: SpatialRelation) -> float:
        """Convenience wrapper around ``join_sketch(...).estimate()``."""
        if len(left) == 0 or len(right) == 0:
            return 0.0
        return max(0.0, self.join_sketch(left, right).estimate().estimate)

    def estimated_join_cardinalities(
            self, pairs: Sequence[tuple[SpatialRelation, SpatialRelation]]
    ) -> list[float]:
        """Batched join-cardinality probe for many relation pairs at once.

        Every live pair sketch *lowers* to one
        :class:`~repro.core.program.SketchProgram` and the whole probe runs
        as a single :class:`~repro.core.program.ProgramExecutor` batch: the
        executor stacks the per-instance Z vectors and boosts them with one
        :func:`~repro.core.boosting.median_of_means_batch` reduction — this
        is what lets the optimizer cost a plan space with one batched probe
        instead of O(pairs) scalar estimate calls.  Results are
        bit-identical to per-pair :meth:`estimated_join_cardinality` calls.
        """
        from repro.core.program import default_executor

        results: list[float] = [0.0] * len(pairs)
        live: list[int] = [
            index for index, (left, right) in enumerate(pairs)
            if len(left) and len(right)
        ]
        if not live:
            return results
        plan = split_instances(self._num_instances)
        programs = [self.join_sketch(*pairs[index]).lower(plan=plan)
                    for index in live]
        outcomes = default_executor().run(programs)
        for position, index in enumerate(live):
            results[index] = max(0.0, outcomes[position].estimate)
        return results

    # -- range sketches ------------------------------------------------------------------

    def range_sketch(self, relation: SpatialRelation) -> RangeQueryEstimator:
        if relation.name not in self._range_sketches:
            estimator = RangeQueryEstimator(self._domain, self._num_instances,
                                            seed=self._seed + len(self._range_sketches))
            if len(relation):
                estimator.insert(relation.boxes())
            relation.add_listener(_SingleRelationListener(estimator, relation))
            self._range_sketches[relation.name] = estimator
        return self._range_sketches[relation.name]

    # -- histogram baselines -----------------------------------------------------------------

    def histogram(self, relation: SpatialRelation,
                  kind: Literal["geometric", "euler"] = "geometric", *,
                  level: int = 5):
        """A maintained GH or EH summary of the relation."""
        key = (relation.name, kind, level)
        if key not in self._histograms:
            if kind == "geometric":
                summary = GeometricHistogram(self._domain, level)
            elif kind == "euler":
                summary = EulerHistogram(self._domain, level)
            else:
                raise EngineError(f"unknown histogram kind {kind!r}")
            if len(relation):
                summary.insert(relation.boxes())
            relation.add_listener(_SingleRelationListener(summary, relation))
            self._histograms[key] = summary
        return self._histograms[key]
