"""A simple cost model for the engine's physical operators.

Costs are expressed in abstract "comparison" units so that plans can be
ranked without timing noise; the operators also report the number of
comparisons they actually performed, which lets tests check that the model
tracks reality reasonably well.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the cost formulas."""

    sweep_constant: float = 8.0
    index_probe_constant: float = 2.0
    index_build_constant: float = 4.0
    output_constant: float = 1.0

    def nested_loop_join(self, left_size: int, right_size: int) -> float:
        """All-pairs comparisons."""
        return float(left_size) * float(right_size)

    def plane_sweep_join(self, left_size: int, right_size: int,
                         estimated_output: float) -> float:
        """Sorting plus sweep plus output cost."""
        total = left_size + right_size
        if total == 0:
            return 0.0
        return (self.sweep_constant * total * max(1.0, math.log2(max(total, 2)))
                + self.output_constant * max(0.0, estimated_output))

    def index_nested_loop_join(self, probe_size: int, indexed_size: int,
                               estimated_output: float) -> float:
        """Per-probe logarithmic descent plus output cost (index assumed built)."""
        if indexed_size == 0 or probe_size == 0:
            return 0.0
        probe_cost = self.index_probe_constant * probe_size \
            * max(1.0, math.log2(max(indexed_size, 2)))
        return probe_cost + self.output_constant * max(0.0, estimated_output)

    def rtree_join(self, left_size: int, right_size: int, estimated_output: float) -> float:
        """Dual-tree join: build both trees plus output-sensitive traversal."""
        build = self.index_build_constant * (left_size + right_size) \
            * max(1.0, math.log2(max(left_size + right_size, 2)))
        return build + self.output_constant * max(0.0, estimated_output) * 4.0

    def range_scan(self, relation_size: int) -> float:
        return float(relation_size)
