"""A small spatial query engine.

This package provides the SDBMS context that motivates the paper: spatial
relations with streaming maintenance, physical join/selection operators
with a cost model, per-relation synopses (sketches and histograms) that are
kept up to date under inserts and deletes, and an optimizer that uses the
estimated selectivities to pick join algorithms and join orders.

The engine is deliberately small — it exists to demonstrate and benchmark
how sketch-based selectivity estimates drive plan choices — but every part
of it is real: operators execute exactly, costs are measured in comparisons
performed, and the optimizer's decisions can be checked against exhaustive
enumeration.
"""

from repro.engine.relation import SpatialRelation
from repro.engine.catalog import Catalog
from repro.engine.synopses import SynopsisManager
from repro.engine.service_bridge import ServiceSynopses
from repro.engine.operators import (
    IndexNestedLoopJoin,
    NestedLoopJoin,
    PlaneSweepJoin,
    RangeScan,
    RTreeJoin,
)
from repro.engine.cost import CostModel
from repro.engine.optimizer import JoinPlan, Optimizer
from repro.engine.query import JoinQuery, RangeQuery

__all__ = [
    "SpatialRelation",
    "Catalog",
    "SynopsisManager",
    "ServiceSynopses",
    "NestedLoopJoin",
    "PlaneSweepJoin",
    "IndexNestedLoopJoin",
    "RTreeJoin",
    "RangeScan",
    "CostModel",
    "Optimizer",
    "JoinPlan",
    "JoinQuery",
    "RangeQuery",
]
