"""A selectivity-driven optimizer for (multi-way) spatial overlap joins.

The optimizer demonstrates the paper's motivation: spatial query plans are
expensive, and picking a good one requires accurate join-selectivity
estimates.  It uses the sketch-based estimates provided by the
:class:`~repro.engine.synopses.SynopsisManager` to

* choose a physical operator for every binary join (nested loop, plane
  sweep, grid-index nested loop or R-tree join) based on the cost model, and
* pick a join *order* for multi-way joins by enumerating (small queries) or
  greedily constructing (larger queries) left-deep orders and costing them
  with estimated intermediate cardinalities.

Multi-way semantics: the result of joining relations ``R1 .. Rk`` is the set
of object combinations that pairwise overlap.  For axis-aligned boxes,
pairwise overlap implies a common intersection region (Helly property per
dimension), so execution extends partial results by probing the next
relation with the running intersection box.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.engine.catalog import Catalog
from repro.engine.cost import CostModel
from repro.engine.operators import (
    IndexNestedLoopJoin,
    NestedLoopJoin,
    PlaneSweepJoin,
    RTreeJoin,
)
from repro.engine.query import JoinQuery, PlannedJoin
from repro.engine.relation import SpatialRelation
from repro.engine.synopses import SynopsisManager
from repro.errors import EngineError
from repro.geometry.boxset import BoxSet
from repro.index.grid import GridIndex


@dataclass
class JoinPlan:
    """A left-deep join order with one operator choice per step."""

    order: tuple[str, ...]
    steps: list[PlannedJoin] = field(default_factory=list)
    estimated_cost: float = 0.0
    estimated_cardinality: float = 0.0


@dataclass
class PlanExecution:
    """Result of executing a plan."""

    plan: JoinPlan
    cardinality: int
    comparisons: int


def _clamped_selectivity(cardinality: float, left: SpatialRelation,
                         right: SpatialRelation) -> float:
    """Cardinality as a [0, 1] selectivity; 0 for empty inputs.

    The single definition shared by the public per-pair API and the batched
    planning cache, so the two can never drift apart.
    """
    if len(left) == 0 or len(right) == 0:
        return 0.0
    return float(min(1.0, max(0.0, cardinality / (len(left) * len(right)))))


class _PairSelectivityCache:
    """Lazily batch-filled cache of ordered-pair join selectivities.

    Planning revisits the same relation pairs across candidate orders; the
    cache probes each *missing* pair group through the synopses' batched
    ``estimated_join_cardinalities`` API — one median-of-means reduction per
    ``ensure`` call instead of one scalar estimate per lookup — while never
    touching pairs the caller does not ask about (the greedy path for large
    queries inspects only a fraction of all orientations).  Synopsis
    providers without a batch API fall back to per-pair probes.
    """

    def __init__(self, synopses) -> None:
        self._synopses = synopses
        self.values: dict[tuple[str, str], float] = {}

    def ensure(self, pairs) -> None:
        """Batch-probe every not-yet-cached ordered pair in ``pairs``."""
        missing: list[tuple[SpatialRelation, SpatialRelation]] = []
        seen: set[tuple[str, str]] = set()
        for left, right in pairs:
            key = (left.name, right.name)
            if key not in self.values and key not in seen:
                missing.append((left, right))
                seen.add(key)
        if not missing:
            return
        batch_probe = getattr(self._synopses, "estimated_join_cardinalities", None)
        if batch_probe is not None:
            cardinalities = batch_probe(missing)
        else:
            cardinalities = [
                self._synopses.estimated_join_cardinality(left, right)
                if len(left) and len(right) else 0.0
                for left, right in missing
            ]
        for (left, right), cardinality in zip(missing, cardinalities):
            self.values[(left.name, right.name)] = _clamped_selectivity(
                cardinality, left, right)

    def get(self, left: SpatialRelation, right: SpatialRelation) -> float:
        """The cached selectivity, probing (scalar) when not yet ensured."""
        key = (left.name, right.name)
        if key not in self.values:
            self.ensure([(left, right)])
        return self.values[key]


class Optimizer:
    """Plans and executes spatial join queries using sketch-based estimates."""

    #: Exhaustively enumerate join orders up to this many relations.
    _ENUMERATION_LIMIT = 5

    def __init__(self, catalog: Catalog, synopses: SynopsisManager,
                 cost_model: CostModel | None = None) -> None:
        self._catalog = catalog
        self._synopses = synopses
        self._cost = cost_model or CostModel()

    # -- selectivity estimates -----------------------------------------------------------

    def estimated_pair_selectivity(self, left: SpatialRelation,
                                   right: SpatialRelation) -> float:
        """Estimated join selectivity of a relation pair (clamped to [0, 1])."""
        if len(left) == 0 or len(right) == 0:
            return 0.0
        cardinality = self._synopses.estimated_join_cardinality(left, right)
        return _clamped_selectivity(cardinality, left, right)

    # -- operator choice ------------------------------------------------------------------

    def choose_operator(self, probe_size: float, indexed_size: float,
                        estimated_output: float, *, dimension: int) -> tuple[str, float]:
        """The cheapest physical operator and its estimated cost."""
        candidates: dict[str, float] = {
            NestedLoopJoin.name: self._cost.nested_loop_join(int(probe_size),
                                                             int(indexed_size)),
            IndexNestedLoopJoin.name: self._cost.index_nested_loop_join(
                int(probe_size), int(indexed_size), estimated_output),
            RTreeJoin.name: self._cost.rtree_join(int(probe_size), int(indexed_size),
                                                  estimated_output),
        }
        if dimension == 2:
            candidates[PlaneSweepJoin.name] = self._cost.plane_sweep_join(
                int(probe_size), int(indexed_size), estimated_output)
        best = min(candidates, key=candidates.get)
        return best, candidates[best]

    # -- planning -----------------------------------------------------------------------------

    def plan_join(self, query: JoinQuery) -> JoinPlan:
        """The cheapest left-deep plan for the query under estimated costs.

        Pair selectivities are fetched through batched cardinality probes
        (:class:`_PairSelectivityCache`): exhaustive enumeration pulls all
        ordered pairs in one probe, the greedy path one probe per greedy
        round — never one scalar estimate call per (order, step) visit.
        """
        relations = [self._catalog.get(name) for name in query.relations]
        cache = _PairSelectivityCache(self._synopses)
        if len(relations) > self._ENUMERATION_LIMIT:
            orders = [tuple(r.name for r in self._greedy_order(relations, cache))]
        else:
            cache.ensure((left, right) for left in relations
                         for right in relations if left.name != right.name)
            orders = [tuple(r.name for r in perm)
                      for perm in itertools.permutations(relations)]
        best_plan: JoinPlan | None = None
        for order in orders:
            plan = self._cost_order(order, cache)
            if best_plan is None or plan.estimated_cost < best_plan.estimated_cost:
                best_plan = plan
        assert best_plan is not None
        return best_plan

    def _greedy_order(self, relations: list[SpatialRelation],
                      cache: _PairSelectivityCache) -> list[SpatialRelation]:
        """Greedy order: start from the most selective pair, then smallest blow-up."""
        cache.ensure(itertools.combinations(relations, 2))
        best_pair = None
        best_value = None
        for left, right in itertools.combinations(relations, 2):
            value = cache.get(left, right) * len(left) * len(right)
            if best_value is None or value < best_value:
                best_value = value
                best_pair = (left, right)
        assert best_pair is not None
        order = list(best_pair)
        remaining = [r for r in relations if r not in order]
        while remaining:
            cache.ensure((placed, candidate)
                         for candidate in remaining for placed in order)

            def blow_up(candidate: SpatialRelation) -> float:
                selectivity = 1.0
                for placed in order:
                    selectivity *= cache.get(placed, candidate)
                return selectivity * len(candidate)

            next_relation = min(remaining, key=blow_up)
            order.append(next_relation)
            remaining.remove(next_relation)
        return order

    def _cost_order(self, order: tuple[str, ...],
                    cache: _PairSelectivityCache | None = None) -> JoinPlan:
        if cache is None:
            cache = _PairSelectivityCache(self._synopses)
        plan = JoinPlan(order=order)
        relations = [self._catalog.get(name) for name in order]
        cache.ensure((relations[earlier], relations[later])
                     for later in range(1, len(relations))
                     for earlier in range(later))
        intermediate_cardinality = float(len(relations[0]))
        for step_index in range(1, len(relations)):
            next_relation = relations[step_index]
            selectivity = 1.0
            for placed in relations[:step_index]:
                selectivity *= cache.get(placed, next_relation)
            estimated_output = intermediate_cardinality * len(next_relation) * selectivity
            operator, cost = self.choose_operator(
                intermediate_cardinality, len(next_relation), estimated_output,
                dimension=next_relation.dimension,
            )
            plan.steps.append(PlannedJoin(
                left=relations[step_index - 1].name if step_index == 1 else "<intermediate>",
                right=next_relation.name,
                operator=operator,
                estimated_cardinality=estimated_output,
                estimated_cost=cost,
            ))
            plan.estimated_cost += cost
            intermediate_cardinality = max(estimated_output, 0.0)
        plan.estimated_cardinality = intermediate_cardinality
        return plan

    # -- execution --------------------------------------------------------------------------------

    def execute_plan(self, plan: JoinPlan, *, closed: bool = False) -> PlanExecution:
        """Execute a left-deep plan exactly and report its true cost."""
        relations = [self._catalog.get(name) for name in plan.order]
        if any(len(r) == 0 for r in relations):
            return PlanExecution(plan=plan, cardinality=0, comparisons=0)

        first = relations[0].boxes()
        # Partial results are represented by their running intersection boxes.
        current_lows = first.lows.copy()
        current_highs = first.highs.copy()
        comparisons = 0

        for step_index in range(1, len(relations)):
            next_boxes = relations[step_index].boxes()
            index = GridIndex(next_boxes, cells_per_dim=32)
            comparisons += len(next_boxes)
            new_lows: list[np.ndarray] = []
            new_highs: list[np.ndarray] = []
            for row in range(current_lows.shape[0]):
                probe = BoxSet(current_lows[row][None, :], current_highs[row][None, :],
                               validate=False)
                matches = index.query(probe, closed=closed)
                comparisons += int(index.candidates(probe).size) + 1
                for match in matches:
                    lo = np.maximum(current_lows[row], next_boxes.lows[match])
                    hi = np.minimum(current_highs[row], next_boxes.highs[match])
                    new_lows.append(lo)
                    new_highs.append(hi)
            if not new_lows:
                return PlanExecution(plan=plan, cardinality=0, comparisons=comparisons)
            current_lows = np.array(new_lows, dtype=np.int64)
            current_highs = np.array(new_highs, dtype=np.int64)

        return PlanExecution(plan=plan, cardinality=current_lows.shape[0],
                             comparisons=comparisons)

    def plan_and_execute(self, query: JoinQuery) -> PlanExecution:
        """Convenience wrapper: plan the query and execute the chosen plan."""
        plan = self.plan_join(query)
        return self.execute_plan(plan, closed=query.closed)

    # -- binary joins ------------------------------------------------------------------------------

    def execute_binary_join(self, left_name: str, right_name: str, *,
                            operator: str | None = None, closed: bool = False):
        """Execute a binary join with the chosen (or given) operator."""
        left = self._catalog.get(left_name)
        right = self._catalog.get(right_name)
        if operator is None:
            estimated = self._synopses.estimated_join_cardinality(left, right)
            operator, _ = self.choose_operator(len(left), len(right), estimated,
                                               dimension=left.dimension)
        operators = {
            NestedLoopJoin.name: NestedLoopJoin,
            PlaneSweepJoin.name: PlaneSweepJoin,
            IndexNestedLoopJoin.name: IndexNestedLoopJoin,
            RTreeJoin.name: RTreeJoin,
        }
        if operator not in operators:
            raise EngineError(f"unknown join operator {operator!r}")
        return operators[operator](left, right, closed=closed).execute()
