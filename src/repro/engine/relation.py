"""Spatial relations: named, mutable collections of hyper-rectangles."""

from __future__ import annotations

import numpy as np

from repro.core.domain import Domain
from repro.errors import EngineError
from repro.geometry.boxset import BoxSet


class SpatialRelation:
    """A named spatial relation over a fixed domain.

    The relation stores its objects in NumPy arrays and supports appending
    and deleting batches; every mutation is also reported to the listeners
    registered by the :class:`~repro.engine.synopses.SynopsisManager`, so
    synopses stay consistent with the data without rescanning it.
    """

    def __init__(self, name: str, domain: Domain, *, boxes: BoxSet | None = None) -> None:
        if not name:
            raise EngineError("a relation needs a non-empty name")
        self._name = name
        self._domain = domain
        self._lows = np.zeros((0, domain.dimension), dtype=np.int64)
        self._highs = np.zeros((0, domain.dimension), dtype=np.int64)
        self._listeners: list = []
        if boxes is not None and len(boxes):
            self.insert(boxes)

    # -- properties --------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def domain(self) -> Domain:
        return self._domain

    @property
    def dimension(self) -> int:
        return self._domain.dimension

    def __len__(self) -> int:
        return self._lows.shape[0]

    @property
    def cardinality(self) -> int:
        return len(self)

    def boxes(self) -> BoxSet:
        """A snapshot of the current contents."""
        if len(self) == 0:
            return BoxSet.empty(self.dimension)
        return BoxSet(self._lows.copy(), self._highs.copy(), validate=False)

    # -- listeners (synopsis maintenance) ----------------------------------------------

    def add_listener(self, listener) -> None:
        """Register an object with ``on_insert(relation, boxes)`` / ``on_delete``."""
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        self._listeners.remove(listener)

    # -- mutations -----------------------------------------------------------------------

    def insert(self, boxes: BoxSet) -> None:
        """Append a batch of objects."""
        self._domain.validate_boxes(boxes, what=f"objects inserted into {self._name}")
        self._lows = np.vstack([self._lows, boxes.lows])
        self._highs = np.vstack([self._highs, boxes.highs])
        for listener in self._listeners:
            listener.on_insert(self, boxes)

    def delete(self, boxes: BoxSet) -> int:
        """Delete objects equal to the given boxes (one occurrence each).

        Returns the number of objects actually removed; asking to delete an
        object that is not present raises :class:`~repro.errors.EngineError`.
        """
        self._domain.validate_boxes(boxes, what=f"objects deleted from {self._name}")
        removed_rows: list[int] = []
        available = np.ones(len(self), dtype=bool)
        for index in range(len(boxes)):
            target_lo = boxes.lows[index]
            target_hi = boxes.highs[index]
            matches = np.where(
                available
                & np.all(self._lows == target_lo, axis=1)
                & np.all(self._highs == target_hi, axis=1)
            )[0]
            if matches.size == 0:
                raise EngineError(
                    f"object {target_lo.tolist()}..{target_hi.tolist()} is not present in "
                    f"relation {self._name}"
                )
            available[matches[0]] = False
            removed_rows.append(int(matches[0]))
        keep = np.ones(len(self), dtype=bool)
        keep[removed_rows] = False
        self._lows = self._lows[keep]
        self._highs = self._highs[keep]
        for listener in self._listeners:
            listener.on_delete(self, boxes)
        return len(removed_rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpatialRelation(name={self._name!r}, n={len(self)}, d={self.dimension})"
