"""Logical query descriptions consumed by the optimizer."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.rectangle import Rect


@dataclass(frozen=True)
class JoinQuery:
    """A (possibly multi-way) spatial overlap join over named relations.

    The join graph is implicit: every pair of adjacent relations in the
    chosen join order is joined with the overlap predicate.  ``closed``
    selects extended-overlap semantics.
    """

    relations: tuple[str, ...]
    closed: bool = False

    def __post_init__(self) -> None:
        if len(self.relations) < 2:
            raise ValueError("a join query needs at least two relations")
        if len(set(self.relations)) != len(self.relations):
            raise ValueError("a relation may appear only once in a join query")


@dataclass(frozen=True)
class RangeQuery:
    """A selection of the objects of one relation overlapping a query window."""

    relation: str
    window: Rect
    closed: bool = True


@dataclass
class PlannedJoin:
    """One binary join step of a physical plan."""

    left: str
    right: str
    operator: str
    estimated_cardinality: float
    estimated_cost: float


@dataclass
class ExecutionReport:
    """Outcome of executing a plan: per-step results plus totals."""

    steps: list = field(default_factory=list)
    total_comparisons: int = 0
    final_cardinality: int = 0
