"""Synchronous client for the network sketch server.

:class:`ServiceClient` keeps **one TCP connection open** across calls
(connection reuse — no reconnect or snapshot restore per request) and
mirrors the :class:`~repro.service.service.EstimationService` verbs:

::

    with ServiceClient("127.0.0.1", 7007) as client:
        client.register("join", family="rectangle", sizes=(1024, 1024))
        client.ingest("join", [[0, 0, 10, 10]], side="left")
        result = client.estimate("join")
        many = client.estimate_many("ranges", query_rows)   # pipelined

Because the server answers in request order, :meth:`estimate_many`
*pipelines*: it writes every request before reading any reply, so the
server's coalescer sees the whole burst at once and answers it through a
handful of batched engine calls.

Failures come back as typed exceptions: :class:`~repro.errors.OverloadedError`
when the server sheds load (retryable), :class:`~repro.errors.ServerError`
for other request failures, :class:`~repro.errors.ProtocolError` when the
connection breaks mid-frame.

A **dropped connection** (server restart, idle timeout, router failover) is
healed transparently for idempotent verbs: :meth:`ServiceClient.request`
reconnects once and resends.  Non-idempotent verbs (``ingest``,
``register``) are never retried — a resend could double-apply updates
whose first copy did land — and surface
:class:`~repro.errors.ConnectionLostError` instead.

``ServiceClient(wire="binary")`` upgrades the connection to the binary
frame format (:mod:`repro.server.wire`) via the ``hello`` handshake: box
batches then travel as raw little-endian int64 tensors and snapshot/WAL
payloads as raw bytes instead of base64.  ``wire="auto"`` upgrades when
the server offers binary and silently stays on NDJSON otherwise.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import ClientTimeoutError, ConnectionLostError, ProtocolError
from repro.geometry.boxset import BoxSet
from repro.server import protocol, wire as wire_format

DEFAULT_PORT = 7007

#: Verbs safe to resend after a reconnect: re-running them cannot change
#: service state beyond what the (possibly applied) first copy did.
IDEMPOTENT_OPS = frozenset({"ping", "estimate", "stats", "metrics",
                            "snapshot", "reload", "flush", "cluster_status"})

#: Failures that mean "the connection is gone" rather than "the request
#: is bad" — the only ones a reconnect can heal.
_RETRYABLE_ERRORS = (ConnectionLostError, ConnectionResetError,
                     BrokenPipeError)


@dataclass(frozen=True)
class RemoteEstimate:
    """Client-side projection of an :class:`EstimateResult`.

    ``estimate`` round-trips the server's IEEE double exactly (JSON floats
    are serialised via ``repr``), so it is bit-identical to the value a
    local :meth:`EstimationService.estimate` call would produce.
    """

    estimate: float
    selectivity: float
    left_count: int
    right_count: int

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RemoteEstimate":
        return cls(estimate=float(payload["estimate"]),
                   selectivity=float(payload["selectivity"]),
                   left_count=int(payload["left_count"]),
                   right_count=int(payload["right_count"]))

    def __float__(self) -> float:
        return float(self.estimate)


def _query_row(query) -> list[int] | None:
    """One wire query row from ``None``, a row sequence, or a 1-box BoxSet."""
    if query is None:
        return None
    if isinstance(query, BoxSet):
        rows = protocol.boxes_to_rows(query)
        if len(rows) != 1:
            raise ProtocolError("a query must be exactly one rectangle")
        return rows[0]
    return [int(c) for c in query]


class ServiceClient:
    """A persistent, pipelining connection to one sketch server."""

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT, *,
                 timeout: float | None = 60.0,
                 connect_timeout: float | None = None,
                 read_timeout: float | None = None,
                 wire: str = "ndjson", token: str | None = None) -> None:
        if wire not in ("ndjson", "binary", "auto"):
            raise ProtocolError(
                f"wire must be 'ndjson', 'binary' or 'auto', got {wire!r}")
        self.host = host
        self.port = port
        # ``timeout`` is the legacy single knob: it seeds both phases;
        # ``connect_timeout`` / ``read_timeout`` override per phase.  A
        # blown deadline surfaces as the typed ClientTimeoutError and is
        # never healed by the reconnect-and-resend path — the server may
        # still be processing the first copy.
        self.timeout = timeout
        self.connect_timeout = (connect_timeout if connect_timeout is not None
                                else timeout)
        self.read_timeout = (read_timeout if read_timeout is not None
                             else timeout)
        self.wire = wire  # the *preference*; see self.wire_format
        self.token = token
        self.reconnects = 0
        self._connect()

    @property
    def wire_format(self) -> str:
        """The format this connection actually negotiated."""
        return self._wire

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout)
        except socket.timeout as exc:
            raise ClientTimeoutError(
                f"connect to {self.host}:{self.port} timed out after "
                f"{self.connect_timeout:g}s") from exc
        self._sock.settimeout(self.read_timeout)
        self._reader = self._sock.makefile("rb")
        self._wire = wire_format.WIRE_NDJSON
        try:
            if self.wire != "ndjson":
                self._negotiate()
            if self.token is not None:
                # Re-binding on every (re)connect keeps the tenant scope
                # intact across the transparent reconnect path.
                protocol.raise_for_response(
                    self._round_trip({"op": "auth", "token": self.token}))
        except BaseException:
            self.close()
            raise

    def _negotiate(self) -> None:
        # The handshake itself always travels as NDJSON; only frames after
        # a successful hello switch format.
        reply = self._round_trip(
            wire_format.hello_payload(wire_format.WIRE_BINARY))
        if reply.get("ok"):
            self._wire = wire_format.WIRE_BINARY
        elif self.wire == "binary":
            # Explicit binary request against a server that refuses it
            # (disabled, or predates the handshake): surface the typed
            # error instead of silently downgrading.
            protocol.raise_for_response(reply)

    def _reconnect(self) -> None:
        self.close()
        self._connect()
        self.reconnects += 1

    # -- framing ------------------------------------------------------------------

    def _read_response(self) -> dict:
        if self._wire == wire_format.WIRE_BINARY:
            return wire_format.read_binary_frame_sync(self._reader)
        line = self._reader.readline(protocol.MAX_LINE_BYTES + 1)
        if not line:
            raise ConnectionLostError("server closed the connection")
        if len(line) > protocol.MAX_LINE_BYTES:
            raise ProtocolError("response line exceeds the frame limit")
        return protocol.decode(line)

    def _round_trip(self, payload: Mapping[str, Any]) -> dict:
        self._sock.sendall(wire_format.encode_frame(payload, self._wire))
        return self._read_response()

    def request(self, payload: Mapping[str, Any]) -> dict:
        """One request/response round trip; raises typed errors on failure.

        If the connection drops mid-request and the verb is idempotent
        (:data:`IDEMPOTENT_OPS`), the client reconnects **once** and
        resends; non-idempotent verbs surface the failure so callers can
        decide whether a resend risks double-applying.
        """
        deadline = (time.monotonic() + self.read_timeout
                    if self.read_timeout is not None else None)
        try:
            response = self._round_trip(payload)
        except socket.timeout as exc:
            # A timed-out request is NOT retried even for idempotent verbs:
            # the deadline is the caller's latency budget, and a resend
            # would silently double it.
            raise ClientTimeoutError(
                f"request {payload.get('op')!r} exceeded the "
                f"{self.read_timeout:g}s read deadline") from exc
        except _RETRYABLE_ERRORS:
            if payload.get("op") not in IDEMPOTENT_OPS:
                raise
            if deadline is not None and time.monotonic() >= deadline:
                raise ClientTimeoutError(
                    f"request {payload.get('op')!r} exceeded the "
                    f"{self.read_timeout:g}s deadline before its retry")
            self._reconnect()
            try:
                response = self._round_trip(payload)
            except socket.timeout as exc:
                raise ClientTimeoutError(
                    f"request {payload.get('op')!r} exceeded the "
                    f"{self.read_timeout:g}s read deadline") from exc
        return protocol.raise_for_response(response)

    def request_many(self, payloads: Sequence[Mapping[str, Any]]
                     ) -> list[dict]:
        """Pipelined round trip: write all requests, then read all replies.

        Raw responses are returned (not raised on), so one ``overloaded``
        reply in a burst does not lose the replies behind it; use
        :func:`repro.server.protocol.raise_for_response` per entry.
        """
        if not payloads:
            return []
        try:
            self._sock.sendall(b"".join(
                wire_format.encode_frame(p, self._wire) for p in payloads))
            return [self._read_response() for _ in payloads]
        except socket.timeout as exc:
            raise ClientTimeoutError(
                f"pipelined batch of {len(payloads)} requests exceeded the "
                f"{self.read_timeout:g}s read deadline") from exc

    # -- verbs --------------------------------------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def auth(self, token: str) -> dict:
        """Bind this connection to the tenant (or admin role) of ``token``.

        The token is remembered so transparent reconnects re-authenticate.
        """
        reply = self.request({"op": "auth", "token": token})
        self.token = token
        return reply

    def tenant(self, action: str, tenant: str | None = None,
               **fields: Any) -> dict:
        """Tenant-registry administration (``create``/``list``/``describe``/
        ``update``/``disable``/``enable``/``remove``).

        Requires an admin-authenticated connection, except ``describe``
        of the connection's own tenant.
        """
        payload: dict[str, Any] = {"op": "tenant", "action": action}
        if tenant is not None:
            payload["tenant"] = tenant
        payload.update(fields)
        return self.request(payload)

    def register(self, name: str, *, family: str, sizes: Sequence[int],
                 instances: int = 256, seed: int = 0,
                 **options: Any) -> dict:
        return self.request({"op": "register", "name": name, "family": family,
                             "sizes": list(sizes), "instances": instances,
                             "seed": seed, "options": options})

    def unregister(self, name: str) -> dict:
        return self.request({"op": "unregister", "name": name})

    def ingest(self, name: str, boxes, *, side: str = "left",
               kind: str = "insert") -> dict:
        """Stream a batch of boxes (a :class:`BoxSet` or row lists)."""
        rows: Any
        if isinstance(boxes, BoxSet):
            rows = np.hstack([boxes.lows, boxes.highs])
            if self._wire != wire_format.WIRE_BINARY:
                rows = rows.tolist()
        else:
            rows = list(boxes)
            if self._wire == wire_format.WIRE_BINARY:
                # Ship well-formed batches as a raw int64 tensor; anything
                # ragged or non-numeric stays JSON so the server's decoder
                # reports it as bad_request exactly as over NDJSON.
                try:
                    rows = np.asarray(rows, dtype=np.int64)
                except (TypeError, ValueError):
                    pass
        return self.request({"op": "ingest", "name": name, "boxes": rows,
                             "side": side, "kind": kind})

    def estimate(self, name: str, query=None) -> RemoteEstimate:
        response = self.request({"op": "estimate", "name": name,
                                 "query": _query_row(query)})
        return RemoteEstimate.from_payload(response)

    def estimate_many(self, name: str, queries) -> list[RemoteEstimate]:
        """Batch helper: pipeline one request per query in a single write.

        The server coalesces the burst into batched engine calls; replies
        come back in query order.
        """
        requests = [{"op": "estimate", "name": name, "query": _query_row(q)}
                    for q in _iter_queries(queries)]
        responses = self.request_many(requests)
        return [RemoteEstimate.from_payload(protocol.raise_for_response(r))
                for r in responses]

    def flush(self) -> dict:
        return self.request({"op": "flush"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def metrics(self) -> str:
        """The server's plain-text metrics exposition."""
        return str(self.request({"op": "metrics"})["text"])

    def snapshot(self, path: str | None = None, *,
                 format: str = "auto") -> dict:
        payload: dict[str, Any] = {"op": "snapshot", "format": format}
        if path is not None:
            payload["path"] = str(path)
        return self.request(payload)

    def reload(self, path: str | None = None) -> dict:
        """Hot-swap the server's service from a snapshot file."""
        payload: dict[str, Any] = {"op": "reload"}
        if path is not None:
            payload["path"] = str(path)
        return self.request(payload)

    def checkpoint(self, path: str | None = None, *,
                   format: str = "auto") -> dict:
        """Snapshot + WAL truncation on a durably-serving server."""
        payload: dict[str, Any] = {"op": "snapshot", "checkpoint": True,
                                   "format": format}
        if path is not None:
            payload["path"] = str(path)
        return self.request(payload)

    def wal_describe(self) -> dict:
        """The server's WAL summary (``None`` when serving without one)."""
        return self.request({"op": "wal"})

    def wal_fetch(self, since: int = 0) -> dict:
        """Fetch the framed log tail after ``since`` (log shipping).

        The reply's ``data`` field holds the record bytes — base64 on an
        NDJSON connection, raw ``bytes`` on a binary one; ``truncated``
        means a checkpoint dropped part of the requested range and the
        caller must bootstrap from a snapshot instead.
        """
        return self.request({"op": "wal", "fetch": True, "since": int(since)})

    def wal_apply(self, data: str | bytes) -> dict:
        """Replay a fetched tail (``data`` as returned by :meth:`wal_fetch`)
        into this server — the follower half of log shipping."""
        return self.request({"op": "wal", "apply": data})

    def cluster_status(self) -> dict:
        """Fleet topology of a cluster router (see :mod:`repro.cluster`)."""
        return self.request({"op": "cluster_status"})

    # -- lifecycle ----------------------------------------------------------------

    def quit(self) -> None:
        try:
            self.request({"op": "quit"})
        except (ProtocolError, OSError):
            pass

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServiceClient({self.host!r}, {self.port})"


def _iter_queries(queries) -> list:
    """Normalise an estimate_many batch into a list of per-query values."""
    if queries is None:
        raise ProtocolError("estimate_many needs a query list or a count")
    if isinstance(queries, int):
        return [None] * queries
    if isinstance(queries, BoxSet):
        return [row for row in protocol.boxes_to_rows(queries)]
    return list(queries)
