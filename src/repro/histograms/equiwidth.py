"""A plain equi-width count histogram.

This is the simplest fixed-partitioning summary the paper mentions in the
introduction ("histograms that use a fixed partitioning of the space
(e.g., equi-width): these can be constructed in a single pass and can be
maintained incrementally, but they cannot adapt to skewed or changing data
distributions").  It stores only a per-cell count of object centres plus
the global average extents and serves as a floor baseline in the ablation
benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.core.domain import Domain
from repro.geometry.boxset import BoxSet
from repro.histograms.base import GridHistogram


class EquiWidthHistogram(GridHistogram):
    """Count-only grid histogram with global average object extents."""

    def __init__(self, domain: Domain, level: int) -> None:
        super().__init__(domain, level)
        cells = self._cells_per_dim
        self._centre_count = np.zeros((cells, cells), dtype=np.float64)
        self._total_width = 0.0
        self._total_height = 0.0

    def insert(self, boxes: BoxSet, *, weight: float = 1.0) -> None:
        self._check(boxes)
        centres = (boxes.lows + boxes.highs) / 2.0
        cols = np.clip((centres[:, 0] / self._cell_extent[0]).astype(np.int64),
                       0, self._cells_per_dim - 1)
        rows = np.clip((centres[:, 1] / self._cell_extent[1]).astype(np.int64),
                       0, self._cells_per_dim - 1)
        np.add.at(self._centre_count, (cols, rows), weight)
        widths = boxes.highs[:, 0] - boxes.lows[:, 0] + 1.0
        heights = boxes.highs[:, 1] - boxes.lows[:, 1] + 1.0
        self._total_width += weight * float(widths.sum())
        self._total_height += weight * float(heights.sum())
        self._count += int(np.sign(weight)) * len(boxes)

    def delete(self, boxes: BoxSet) -> None:
        self.insert(boxes, weight=-1.0)

    def estimate_join(self, other: "EquiWidthHistogram") -> float:
        """Per-cell count products scaled by a global overlap probability."""
        self._compatible(other)
        if self.count == 0 or other.count == 0:
            return 0.0
        mean_w = self._total_width / self.count + other._total_width / other.count
        mean_h = self._total_height / self.count + other._total_height / other.count
        probability_x = min(1.0, mean_w / self._cell_extent[0])
        probability_y = min(1.0, mean_h / self._cell_extent[1])
        pair_counts = float((self._centre_count * other._centre_count).sum())
        return max(0.0, pair_counts * probability_x * probability_y)

    def estimate_join_selectivity(self, other: "EquiWidthHistogram") -> float:
        if self.count == 0 or other.count == 0:
            return 0.0
        return self.estimate_join(other) / (self.count * other.count)

    def storage_words(self) -> float:
        """One count per cell plus two global accumulators."""
        return float(self._cells_per_dim ** 2 + 2)
