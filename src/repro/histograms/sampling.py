"""Sampling-based join selectivity estimation (Section 8 related work).

A classic alternative to histograms and sketches: keep a uniform reservoir
sample of each input and estimate the join selectivity as the selectivity
of the sample join, scaled to the full cardinalities.  The paper points out
its main weakness — samples are difficult to maintain under deletions —
which this implementation exhibits faithfully: deleting an object that is
in the sample shrinks the sample (it cannot be replaced without access to
the full dataset).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SketchConfigError
from repro.exact.rectangle_join import brute_force_join_count
from repro.geometry.boxset import BoxSet
from repro.histograms.base import SelectivityEstimator


class ReservoirSampleEstimator(SelectivityEstimator):
    """Uniform reservoir sample of a stream of hyper-rectangles."""

    def __init__(self, sample_size: int, dimension: int = 2, *, seed: int = 0) -> None:
        if sample_size < 1:
            raise SketchConfigError("the sample size must be positive")
        self._sample_size = int(sample_size)
        self._dimension = int(dimension)
        self._rng = np.random.default_rng(seed)
        self._sample_lows: list[np.ndarray] = []
        self._sample_highs: list[np.ndarray] = []
        self._seen = 0
        self._count = 0

    # -- maintenance --------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def sample(self) -> BoxSet:
        if not self._sample_lows:
            return BoxSet.empty(self._dimension)
        return BoxSet(np.array(self._sample_lows), np.array(self._sample_highs),
                      validate=False)

    def insert(self, boxes: BoxSet) -> None:
        for index in range(len(boxes)):
            self._seen += 1
            self._count += 1
            lo = boxes.lows[index].copy()
            hi = boxes.highs[index].copy()
            if len(self._sample_lows) < self._sample_size:
                self._sample_lows.append(lo)
                self._sample_highs.append(hi)
            else:
                slot = int(self._rng.integers(0, self._seen))
                if slot < self._sample_size:
                    self._sample_lows[slot] = lo
                    self._sample_highs[slot] = hi

    def delete(self, boxes: BoxSet) -> None:
        """Best-effort deletion: sampled copies are dropped, others only decrement.

        This mirrors the maintenance weakness discussed in Section 8 — the
        sample degrades because evicted slots cannot be refilled.
        """
        for index in range(len(boxes)):
            self._count -= 1
            target_lo = boxes.lows[index]
            target_hi = boxes.highs[index]
            for slot in range(len(self._sample_lows)):
                if (np.array_equal(self._sample_lows[slot], target_lo)
                        and np.array_equal(self._sample_highs[slot], target_hi)):
                    del self._sample_lows[slot]
                    del self._sample_highs[slot]
                    break

    # -- estimation ------------------------------------------------------------------

    def estimate_join(self, other: "ReservoirSampleEstimator") -> float:
        """Join size of the samples scaled to the full cardinalities."""
        if not isinstance(other, ReservoirSampleEstimator):
            raise SketchConfigError("can only join against another sample estimator")
        mine = self.sample
        theirs = other.sample
        if len(mine) == 0 or len(theirs) == 0 or self._count == 0 or other._count == 0:
            return 0.0
        sample_join = brute_force_join_count(mine, theirs)
        scale = (self._count / len(mine)) * (other._count / len(theirs))
        return sample_join * scale

    def estimate_join_selectivity(self, other: "ReservoirSampleEstimator") -> float:
        if self._count == 0 or other._count == 0:
            return 0.0
        return self.estimate_join(other) / (self._count * other._count)

    def storage_words(self) -> float:
        """``2 d`` coordinates per sampled object."""
        return float(2 * self._dimension * self._sample_size)
