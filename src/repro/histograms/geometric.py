"""Geometric Histograms (GH) for spatial-join selectivity [An et al., ICDE 2001].

A GH of level L partitions the space into a ``2^L x 2^L`` grid; every cell
stores four statistics about the objects intersecting it, each computed on
the geometry *clipped to the cell*:

* the number of object corner points falling in the cell,
* the sum of the clipped object areas,
* the sum of the clipped vertical edge lengths,
* the sum of the clipped horizontal edge lengths.

The join estimate rests on the same geometric identity the paper's counting
procedure uses (Section 4.2.1): two overlapping rectangles in general
position always produce exactly four "incidences" — corners of one inside
the other plus crossings between perpendicular edges.  Under a per-cell
uniformity assumption the expected number of incidences inside a cell is

    [ C_R * A_S + C_S * A_R + V_R * H_S + V_S * H_R ] / cell_area

so summing over all cells and dividing by four estimates the join size.
The histogram is a sum of per-object contributions, hence it supports
inserts and deletes incrementally, like the sketches.
"""

from __future__ import annotations

import numpy as np

from repro.core.domain import Domain
from repro.geometry.boxset import BoxSet
from repro.histograms.base import GridHistogram


class GeometricHistogram(GridHistogram):
    """The GH baseline used in Section 7 (referred to as "GH" in the figures)."""

    def __init__(self, domain: Domain, level: int) -> None:
        super().__init__(domain, level)
        cells = self._cells_per_dim
        self._corners = np.zeros((cells, cells), dtype=np.float64)
        self._areas = np.zeros((cells, cells), dtype=np.float64)
        self._vertical = np.zeros((cells, cells), dtype=np.float64)
        self._horizontal = np.zeros((cells, cells), dtype=np.float64)

    # -- maintenance -------------------------------------------------------------

    def insert(self, boxes: BoxSet, *, weight: float = 1.0) -> None:
        """Add (or, with ``weight=-1``, remove) the objects' contributions."""
        self._check(boxes)
        lows = boxes.lows.astype(np.float64)
        # The closed integer box [lo, hi] covers the real extent [lo, hi + 1).
        highs = boxes.highs.astype(np.float64) + 1.0
        first, last = self._cell_range(boxes.lows, boxes.highs)
        for index in range(len(boxes)):
            self._insert_one(lows[index], highs[index], first[index], last[index], weight)
        self._count += int(np.sign(weight)) * len(boxes)

    def delete(self, boxes: BoxSet) -> None:
        self.insert(boxes, weight=-1.0)

    def _insert_one(self, lo: np.ndarray, hi: np.ndarray, first: np.ndarray,
                    last: np.ndarray, weight: float) -> None:
        for i in range(int(first[0]), int(last[0]) + 1):
            x_lo, x_hi, _, _ = self._cell_bounds(i, 0)
            clip_w = min(hi[0], x_hi) - max(lo[0], x_lo)
            if clip_w <= 0:
                continue
            corner_x = x_lo <= lo[0] < x_hi, x_lo <= hi[0] <= x_hi
            for j in range(int(first[1]), int(last[1]) + 1):
                _, _, y_lo, y_hi = self._cell_bounds(0, j)
                clip_h = min(hi[1], y_hi) - max(lo[1], y_lo)
                if clip_h <= 0:
                    continue
                corner_y = y_lo <= lo[1] < y_hi, y_lo <= hi[1] <= y_hi
                corners = (int(corner_x[0]) + int(corner_x[1])) * \
                          (int(corner_y[0]) + int(corner_y[1]))
                self._corners[i, j] += weight * corners
                self._areas[i, j] += weight * clip_w * clip_h
                # Vertical edges of the object run at x = lo and x = hi; each
                # contributes its clipped length if that x lies in the cell.
                vertical = clip_h * (int(corner_x[0]) + int(corner_x[1]))
                horizontal = clip_w * (int(corner_y[0]) + int(corner_y[1]))
                self._vertical[i, j] += weight * vertical
                self._horizontal[i, j] += weight * horizontal

    # -- estimation ------------------------------------------------------------------

    def estimate_join(self, other: "GeometricHistogram") -> float:
        """Estimated ``|R join_o S|`` between the two summarised datasets."""
        self._compatible(other)
        cell_area = float(self._cell_extent[0] * self._cell_extent[1])
        incidences = (
            self._corners * other._areas
            + other._corners * self._areas
            + self._vertical * other._horizontal
            + other._vertical * self._horizontal
        ) / cell_area
        return float(max(0.0, incidences.sum() / 4.0))

    def estimate_join_selectivity(self, other: "GeometricHistogram") -> float:
        if self.count == 0 or other.count == 0:
            return 0.0
        return self.estimate_join(other) / (self.count * other.count)

    # -- accounting -------------------------------------------------------------------

    def storage_words(self) -> float:
        """``4^(L+1)`` words: four statistics per grid cell (Section 7)."""
        return float(4 ** (self._level + 1))
