"""Generalized Euler Histograms (EH) [Sun et al., ICDE 2002 / EDBT 2002].

An Euler histogram allocates buckets not only for the cells of a uniform
grid but also for the interior grid *edges* and *vertices*.  Every object
contributes +1 to each grid element its interior intersects, so by the
Euler characteristic an aligned region query can be answered exactly:

    #objects intersecting the region = sum(cells) - sum(edges) + sum(vertices).

The *generalized* Euler histogram additionally stores, per cell (and here
also per edge), statistics of the clipped geometry — average clipped width
and height — which feed a per-bucket probabilistic model for spatial-join
estimation.  This reimplementation estimates, for every grid element, the
expected number of join pairs whose intersection region meets the element
(assuming objects clipped to a bucket are uniformly distributed within it)
and combines the per-element estimates with Euler-characteristic signs:

    |R join S|  ~=  sum(cell estimates) - sum(edge estimates) + sum(vertex estimates).

If the per-element estimates were exact, the total would be exact, because
the intersection region of an overlapping pair has Euler characteristic 1
over the grid subdivision.  The per-bucket uniformity assumptions are what
make EH accurate at coarse grids but increasingly unpredictable as the grid
is refined (the behaviour Figures 9-11 of the paper highlight).
"""

from __future__ import annotations

import numpy as np

from repro.core.domain import Domain
from repro.geometry.boxset import BoxSet
from repro.histograms.base import GridHistogram


class EulerHistogram(GridHistogram):
    """The EH baseline used in Section 7 (referred to as "EH" in the figures)."""

    def __init__(self, domain: Domain, level: int) -> None:
        super().__init__(domain, level)
        cells = self._cells_per_dim
        # Per-cell statistics.
        self._cell_count = np.zeros((cells, cells), dtype=np.float64)
        self._cell_width = np.zeros((cells, cells), dtype=np.float64)
        self._cell_height = np.zeros((cells, cells), dtype=np.float64)
        # Interior vertical boundaries: between columns i and i+1, per row.
        self._vedge_count = np.zeros((max(cells - 1, 1), cells), dtype=np.float64)
        self._vedge_length = np.zeros((max(cells - 1, 1), cells), dtype=np.float64)
        # Interior horizontal boundaries: between rows j and j+1, per column.
        self._hedge_count = np.zeros((cells, max(cells - 1, 1)), dtype=np.float64)
        self._hedge_length = np.zeros((cells, max(cells - 1, 1)), dtype=np.float64)
        # Interior vertices.
        self._vertex_count = np.zeros((max(cells - 1, 1), max(cells - 1, 1)), dtype=np.float64)

    # -- maintenance --------------------------------------------------------------

    def insert(self, boxes: BoxSet, *, weight: float = 1.0) -> None:
        """Add (or remove, with ``weight=-1``) the objects' contributions."""
        self._check(boxes)
        lows = boxes.lows.astype(np.float64)
        highs = boxes.highs.astype(np.float64) + 1.0
        first, last = self._cell_range(boxes.lows, boxes.highs)
        for index in range(len(boxes)):
            self._insert_one(lows[index], highs[index], first[index], last[index], weight)
        self._count += int(np.sign(weight)) * len(boxes)

    def delete(self, boxes: BoxSet) -> None:
        self.insert(boxes, weight=-1.0)

    def _insert_one(self, lo: np.ndarray, hi: np.ndarray, first: np.ndarray,
                    last: np.ndarray, weight: float) -> None:
        cw, ch = float(self._cell_extent[0]), float(self._cell_extent[1])
        i0, i1 = int(first[0]), int(last[0])
        j0, j1 = int(first[1]), int(last[1])

        clip_ws = []
        for i in range(i0, i1 + 1):
            clip_ws.append(min(hi[0], (i + 1) * cw) - max(lo[0], i * cw))
        clip_hs = []
        for j in range(j0, j1 + 1):
            clip_hs.append(min(hi[1], (j + 1) * ch) - max(lo[1], j * ch))

        for oi, i in enumerate(range(i0, i1 + 1)):
            for oj, j in enumerate(range(j0, j1 + 1)):
                if clip_ws[oi] <= 0 or clip_hs[oj] <= 0:
                    continue
                self._cell_count[i, j] += weight
                self._cell_width[i, j] += weight * clip_ws[oi]
                self._cell_height[i, j] += weight * clip_hs[oj]

        # Vertical interior boundaries strictly crossed by the object.
        for i in range(i0, i1):
            boundary = (i + 1) * cw
            if not lo[0] < boundary < hi[0]:
                continue
            for oj, j in enumerate(range(j0, j1 + 1)):
                if clip_hs[oj] <= 0:
                    continue
                self._vedge_count[i, j] += weight
                self._vedge_length[i, j] += weight * clip_hs[oj]

        # Horizontal interior boundaries strictly crossed by the object.
        for j in range(j0, j1):
            boundary = (j + 1) * ch
            if not lo[1] < boundary < hi[1]:
                continue
            for oi, i in enumerate(range(i0, i1 + 1)):
                if clip_ws[oi] <= 0:
                    continue
                self._hedge_count[i, j] += weight
                self._hedge_length[i, j] += weight * clip_ws[oi]

        # Interior vertices covered by the object's interior.
        for i in range(i0, i1):
            x_boundary = (i + 1) * cw
            if not lo[0] < x_boundary < hi[0]:
                continue
            for j in range(j0, j1):
                y_boundary = (j + 1) * ch
                if lo[1] < y_boundary < hi[1]:
                    self._vertex_count[i, j] += weight

    # -- region queries (the classic Euler histogram use) ---------------------------------

    def estimate_region_count(self, cell_lo: tuple[int, int], cell_hi: tuple[int, int]) -> float:
        """Number of objects intersecting an aligned block of grid cells.

        For grid-aligned regions the Euler formula is exact: the count equals
        the alternating sum of cell, interior-edge and interior-vertex buckets
        inside the region.
        """
        i0, j0 = cell_lo
        i1, j1 = cell_hi
        cells = self._cell_count[i0:i1 + 1, j0:j1 + 1].sum()
        vedges = self._vedge_count[i0:i1, j0:j1 + 1].sum() if i1 > i0 else 0.0
        hedges = self._hedge_count[i0:i1 + 1, j0:j1].sum() if j1 > j0 else 0.0
        vertices = self._vertex_count[i0:i1, j0:j1].sum() if (i1 > i0 and j1 > j0) else 0.0
        return float(cells - vedges - hedges + vertices)

    # -- join estimation ---------------------------------------------------------------------

    @staticmethod
    def _pair_factor(count_a: np.ndarray, sum_a: np.ndarray, count_b: np.ndarray,
                     sum_b: np.ndarray, extent: float) -> np.ndarray:
        """Per-bucket ``n_a * n_b * min(1, (mean_a + mean_b) / extent)``."""
        with np.errstate(invalid="ignore", divide="ignore"):
            mean_a = np.where(count_a > 0, sum_a / np.maximum(count_a, 1e-12), 0.0)
            mean_b = np.where(count_b > 0, sum_b / np.maximum(count_b, 1e-12), 0.0)
        probability = np.minimum(1.0, (mean_a + mean_b) / extent)
        return count_a * count_b * probability

    def estimate_join(self, other: "EulerHistogram") -> float:
        """Estimated ``|R join_o S|`` between the two summarised datasets."""
        self._compatible(other)
        cw, ch = float(self._cell_extent[0]), float(self._cell_extent[1])

        cell_terms = (
            self._cell_count * other._cell_count
            * np.minimum(1.0, self._safe_mean(self._cell_width, self._cell_count)
                         / cw + self._safe_mean(other._cell_width, other._cell_count) / cw)
            * np.minimum(1.0, self._safe_mean(self._cell_height, self._cell_count)
                         / ch + self._safe_mean(other._cell_height, other._cell_count) / ch)
        )
        vedge_terms = self._pair_factor(self._vedge_count, self._vedge_length,
                                        other._vedge_count, other._vedge_length, ch)
        hedge_terms = self._pair_factor(self._hedge_count, self._hedge_length,
                                        other._hedge_count, other._hedge_length, cw)
        vertex_terms = self._vertex_count * other._vertex_count

        estimate = (cell_terms.sum() - vedge_terms.sum() - hedge_terms.sum()
                    + vertex_terms.sum())
        return float(max(0.0, estimate))

    @staticmethod
    def _safe_mean(total: np.ndarray, count: np.ndarray) -> np.ndarray:
        return np.where(count > 0, total / np.maximum(count, 1e-12), 0.0)

    def estimate_join_selectivity(self, other: "EulerHistogram") -> float:
        if self.count == 0 or other.count == 0:
            return 0.0
        return self.estimate_join(other) / (self.count * other.count)

    # -- accounting ------------------------------------------------------------------------------

    def storage_words(self) -> float:
        """``9 * 2^(2L) - 6 * 2^L + 1`` words, the figure quoted in Section 7."""
        cells = self._cells_per_dim
        return float(9 * cells * cells - 6 * cells + 1)
