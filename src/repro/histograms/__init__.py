"""Baseline selectivity estimators the paper compares against (Section 7).

* :class:`~repro.histograms.geometric.GeometricHistogram` — the Geometric
  Histogram (GH) of An et al. [5]: a uniform grid whose cells store corner
  counts, clipped areas and clipped edge lengths.
* :class:`~repro.histograms.euler.EulerHistogram` — the generalized Euler
  Histogram (EH) of Sun et al. [25, 26]: buckets for grid cells, edges and
  vertices plus per-cell clipped-geometry statistics and a probabilistic
  per-bucket estimation model.
* :class:`~repro.histograms.equiwidth.EquiWidthHistogram` — a plain
  count-only grid histogram (the simplest fixed-partitioning baseline).
* :class:`~repro.histograms.sampling.ReservoirSampleEstimator` — a
  sampling-based estimator (Section 8 related work) with the known
  maintenance weaknesses under deletions.
"""

from repro.histograms.base import GridHistogram, SelectivityEstimator
from repro.histograms.geometric import GeometricHistogram
from repro.histograms.euler import EulerHistogram
from repro.histograms.equiwidth import EquiWidthHistogram
from repro.histograms.sampling import ReservoirSampleEstimator

__all__ = [
    "SelectivityEstimator",
    "GridHistogram",
    "GeometricHistogram",
    "EulerHistogram",
    "EquiWidthHistogram",
    "ReservoirSampleEstimator",
]
