"""Common infrastructure for the grid-histogram baselines."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.domain import Domain
from repro.errors import DimensionalityError, SketchConfigError
from repro.geometry.boxset import BoxSet


class SelectivityEstimator(ABC):
    """Minimal interface shared by all baseline estimators.

    ``insert`` summarises additional data; ``estimate_join`` produces the
    estimated join cardinality against another summary of the same type.
    """

    @abstractmethod
    def insert(self, boxes: BoxSet) -> None:
        """Summarise additional objects."""

    @abstractmethod
    def estimate_join(self, other: "SelectivityEstimator") -> float:
        """Estimated join cardinality between the two summarised datasets."""

    @abstractmethod
    def storage_words(self) -> float:
        """Memory footprint in words under the paper's accounting."""


class GridHistogram(SelectivityEstimator):
    """Shared machinery for histograms over a uniform 2-d grid of level L.

    A grid of level L partitions each dimension into ``2^L`` equi-width
    cells (Section 7).  Subclasses store per-cell (and possibly per-edge /
    per-vertex) statistics.
    """

    def __init__(self, domain: Domain, level: int) -> None:
        if domain.dimension != 2:
            raise DimensionalityError("the grid histograms are two-dimensional")
        if level < 0:
            raise SketchConfigError("the grid level must be non-negative")
        self._domain = domain
        self._level = int(level)
        self._cells_per_dim = 2 ** self._level
        sizes = np.asarray(domain.requested_sizes, dtype=np.float64)
        self._cell_extent = sizes / self._cells_per_dim
        self._count = 0

    # -- shared accessors -------------------------------------------------------

    @property
    def domain(self) -> Domain:
        return self._domain

    @property
    def level(self) -> int:
        return self._level

    @property
    def cells_per_dim(self) -> int:
        return self._cells_per_dim

    @property
    def cell_extent(self) -> np.ndarray:
        """Width and height of a grid cell (in domain coordinates)."""
        return self._cell_extent.copy()

    @property
    def count(self) -> int:
        """Number of objects summarised so far."""
        return self._count

    # -- shared geometry helpers ----------------------------------------------------

    def _check(self, boxes: BoxSet) -> None:
        if boxes.dimension != 2:
            raise DimensionalityError("expected two-dimensional boxes")
        if not self._domain.contains(boxes):
            raise DimensionalityError("boxes fall outside the histogram domain")

    def _cell_range(self, lows: np.ndarray, highs: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray]:
        """First and last grid cell index intersected by each box, per dimension."""
        first = np.floor(lows / self._cell_extent).astype(np.int64)
        last = np.floor(highs / self._cell_extent).astype(np.int64)
        first = np.clip(first, 0, self._cells_per_dim - 1)
        last = np.clip(last, 0, self._cells_per_dim - 1)
        return first, last

    def _cell_bounds(self, i: int, j: int) -> tuple[float, float, float, float]:
        """``(x_lo, x_hi, y_lo, y_hi)`` of cell ``(i, j)`` in domain coordinates."""
        x_lo = i * self._cell_extent[0]
        y_lo = j * self._cell_extent[1]
        return x_lo, x_lo + self._cell_extent[0], y_lo, y_lo + self._cell_extent[1]

    def _compatible(self, other: "GridHistogram") -> None:
        if type(other) is not type(self):
            raise SketchConfigError(
                f"cannot join a {type(self).__name__} with a {type(other).__name__}"
            )
        if other.level != self.level or other.cells_per_dim != self.cells_per_dim:
            raise SketchConfigError("histograms must use the same grid level")
        if other.domain.requested_sizes != self.domain.requested_sizes:
            raise SketchConfigError("histograms must be built over the same domain")
