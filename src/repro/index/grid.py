"""A uniform grid index over a BoxSet.

Each grid cell keeps the ids of the boxes intersecting it.  The index
supports box-overlap candidate retrieval and an index-nested-loop join.
It is intentionally simple — the R-tree is the more capable index — but a
grid matches the fixed partitioning used by the histogram baselines and is
very cheap to build.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

import numpy as np

from repro.errors import DimensionalityError, SketchConfigError
from repro.geometry.boxset import BoxSet
from repro.geometry.rectangle import Rect


class GridIndex:
    """Uniform grid over the bounding box of the indexed data."""

    def __init__(self, boxes: BoxSet, *, cells_per_dim: int = 32) -> None:
        if cells_per_dim < 1:
            raise SketchConfigError("cells_per_dim must be positive")
        if len(boxes) == 0:
            raise SketchConfigError("cannot index an empty BoxSet")
        self._boxes = boxes
        self._cells_per_dim = int(cells_per_dim)
        lows = boxes.lows.min(axis=0).astype(np.float64)
        highs = boxes.highs.max(axis=0).astype(np.float64) + 1.0
        self._origin = lows
        self._extent = np.maximum(highs - lows, 1.0) / self._cells_per_dim
        self._cells: dict[tuple[int, ...], list[int]] = defaultdict(list)
        first, last = self._cell_span(boxes.lows, boxes.highs)
        for index in range(len(boxes)):
            for cell in self._cells_between(first[index], last[index]):
                self._cells[cell].append(index)

    # -- geometry helpers --------------------------------------------------------------

    @property
    def boxes(self) -> BoxSet:
        return self._boxes

    @property
    def cells_per_dim(self) -> int:
        return self._cells_per_dim

    @property
    def num_occupied_cells(self) -> int:
        return len(self._cells)

    def _cell_span(self, lows: np.ndarray, highs: np.ndarray
                   ) -> tuple[np.ndarray, np.ndarray]:
        first = np.floor((lows - self._origin) / self._extent).astype(np.int64)
        last = np.floor((highs - self._origin) / self._extent).astype(np.int64)
        first = np.clip(first, 0, self._cells_per_dim - 1)
        last = np.clip(last, 0, self._cells_per_dim - 1)
        return first, last

    @staticmethod
    def _cells_between(first: np.ndarray, last: np.ndarray) -> Iterable[tuple[int, ...]]:
        ranges = [range(int(lo), int(hi) + 1) for lo, hi in zip(first, last)]
        cells: list[tuple[int, ...]] = [()]
        for axis_range in ranges:
            cells = [cell + (value,) for cell in cells for value in axis_range]
        return cells

    # -- queries -------------------------------------------------------------------------

    def candidates(self, query: Rect | BoxSet) -> np.ndarray:
        """Ids of indexed boxes whose grid cells intersect the query box."""
        if isinstance(query, Rect):
            query = BoxSet.from_rects([query])
        if query.dimension != self._boxes.dimension:
            raise DimensionalityError("query dimensionality does not match the index")
        first, last = self._cell_span(query.lows, query.highs)
        found: set[int] = set()
        for cell in self._cells_between(first[0], last[0]):
            found.update(self._cells.get(cell, ()))
        return np.fromiter(sorted(found), dtype=np.int64, count=len(found))

    def query(self, query: Rect | BoxSet, *, closed: bool = False) -> np.ndarray:
        """Ids of indexed boxes actually overlapping the query box."""
        if isinstance(query, Rect):
            query = BoxSet.from_rects([query])
        ids = self.candidates(query)
        if ids.size == 0:
            return ids
        lows = self._boxes.lows[ids]
        highs = self._boxes.highs[ids]
        q_lo, q_hi = query.lows[0], query.highs[0]
        if closed:
            mask = np.all((lows <= q_hi) & (q_lo <= highs), axis=1)
        else:
            mask = np.all((lows < q_hi) & (q_lo < highs), axis=1)
        return ids[mask]

    def join_count(self, probe: BoxSet, *, closed: bool = False) -> int:
        """Index-nested-loop join count: number of (probe, indexed) overlapping pairs."""
        if probe.dimension != self._boxes.dimension:
            raise DimensionalityError("probe dimensionality does not match the index")
        total = 0
        for index in range(len(probe)):
            total += int(self.query(probe[index], closed=closed).size)
        return total
