"""A small R-tree.

Features:

* STR (Sort-Tile-Recursive) bulk loading,
* insertion with quadratic-split node overflow handling,
* box-overlap range queries,
* a dual-tree spatial join (count or pair enumeration).

This is the index substrate the mini query engine's index-nested-loop and
tree-join operators use; the cost model of Section 8's related work
(R-tree based join processing) is exercised by the engine benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import DimensionalityError, SketchConfigError
from repro.geometry.boxset import BoxSet
from repro.geometry.rectangle import Rect


@dataclass(eq=False)
class RTreeNode:
    """A node of the R-tree; leaves store object ids, internal nodes store children.

    ``eq=False`` keeps identity comparison: nodes are mutable tree elements and
    are removed from their parents by identity, never by value.
    """

    lows: np.ndarray
    highs: np.ndarray
    is_leaf: bool
    entries: list = field(default_factory=list)   # ids (leaf) or RTreeNode (internal)

    def mbr_area(self) -> float:
        return float(np.prod(self.highs - self.lows + 1))

    def overlaps(self, q_lo: np.ndarray, q_hi: np.ndarray, *, closed: bool) -> bool:
        if closed:
            return bool(np.all(self.lows <= q_hi) and np.all(q_lo <= self.highs))
        return bool(np.all(self.lows < q_hi) and np.all(q_lo < self.highs))

    def extend(self, lo: np.ndarray, hi: np.ndarray) -> None:
        self.lows = np.minimum(self.lows, lo)
        self.highs = np.maximum(self.highs, hi)


class RTree:
    """An R-tree over a BoxSet (ids refer to rows of the original BoxSet)."""

    def __init__(self, boxes: BoxSet | None = None, *, dimension: int | None = None,
                 max_entries: int = 16) -> None:
        if max_entries < 4:
            raise SketchConfigError("max_entries must be at least 4")
        if boxes is None and dimension is None:
            raise SketchConfigError("either an initial BoxSet or a dimension is required")
        self._max_entries = int(max_entries)
        self._min_entries = max(2, self._max_entries // 3)
        if boxes is not None and len(boxes) > 0:
            self._dimension = boxes.dimension
            self._lows = boxes.lows.copy()
            self._highs = boxes.highs.copy()
            self._root = self._bulk_load(np.arange(len(boxes)))
        else:
            self._dimension = int(dimension if dimension is not None else boxes.dimension)
            self._lows = np.zeros((0, self._dimension), dtype=np.int64)
            self._highs = np.zeros((0, self._dimension), dtype=np.int64)
            self._root = RTreeNode(
                lows=np.full(self._dimension, np.iinfo(np.int64).max // 2, dtype=np.int64),
                highs=np.full(self._dimension, np.iinfo(np.int64).min // 2, dtype=np.int64),
                is_leaf=True,
            )

    # -- properties ------------------------------------------------------------------

    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def size(self) -> int:
        return self._lows.shape[0]

    def __len__(self) -> int:
        return self.size

    @property
    def height(self) -> int:
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.entries[0]
            height += 1
        return height

    def box(self, object_id: int) -> Rect:
        return Rect.from_bounds(self._lows[object_id], self._highs[object_id])

    # -- STR bulk loading ------------------------------------------------------------------

    def _leaf_for(self, ids: np.ndarray) -> RTreeNode:
        return RTreeNode(
            lows=self._lows[ids].min(axis=0),
            highs=self._highs[ids].max(axis=0),
            is_leaf=True,
            entries=[int(i) for i in ids],
        )

    def _parent_for(self, children: list[RTreeNode]) -> RTreeNode:
        lows = np.min([child.lows for child in children], axis=0)
        highs = np.max([child.highs for child in children], axis=0)
        return RTreeNode(lows=lows, highs=highs, is_leaf=False, entries=list(children))

    def _bulk_load(self, ids: np.ndarray) -> RTreeNode:
        """Sort-Tile-Recursive packing of the given object ids."""
        centres = (self._lows[ids] + self._highs[ids]) / 2.0
        leaves = [self._leaf_for(chunk) for chunk in
                  self._str_partition(ids, centres, self._max_entries)]
        level: list[RTreeNode] = leaves
        while len(level) > 1:
            centres = np.array([(node.lows + node.highs) / 2.0 for node in level])
            order_ids = np.arange(len(level))
            groups = self._str_partition(order_ids, centres, self._max_entries)
            level = [self._parent_for([level[int(i)] for i in group]) for group in groups]
        return level[0]

    def _str_partition(self, ids: np.ndarray, centres: np.ndarray,
                       capacity: int) -> list[np.ndarray]:
        """Partition ids into groups of at most ``capacity`` using STR tiling."""
        count = len(ids)
        if count <= capacity:
            return [ids]
        num_leaves = int(np.ceil(count / capacity))
        num_slices = int(np.ceil(np.sqrt(num_leaves)))
        slice_size = int(np.ceil(count / num_slices))
        order_x = np.argsort(centres[:, 0], kind="stable")
        groups: list[np.ndarray] = []
        for start in range(0, count, slice_size):
            stop = min(start + slice_size, count)
            slice_ids = order_x[start:stop]
            other_axis = 1 if centres.shape[1] > 1 else 0
            order_y = slice_ids[np.argsort(centres[slice_ids, other_axis], kind="stable")]
            for leaf_start in range(0, len(order_y), capacity):
                leaf_stop = min(leaf_start + capacity, len(order_y))
                groups.append(ids[order_y[leaf_start:leaf_stop]])
        return groups

    # -- insertion --------------------------------------------------------------------------

    def insert(self, box: Rect | BoxSet) -> int:
        """Insert a single box; returns the id assigned to it."""
        if isinstance(box, Rect):
            box = BoxSet.from_rects([box])
        if len(box) != 1:
            raise SketchConfigError("insert expects exactly one box")
        if box.dimension != self._dimension:
            raise DimensionalityError("box dimensionality does not match the tree")
        object_id = self.size
        self._lows = np.vstack([self._lows, box.lows])
        self._highs = np.vstack([self._highs, box.highs])
        lo, hi = self._lows[object_id], self._highs[object_id]
        split = self._insert_into(self._root, object_id, lo, hi)
        if split is not None:
            left, right = split
            self._root = self._parent_for([left, right])
        return object_id

    def _insert_into(self, node: RTreeNode, object_id: int, lo: np.ndarray,
                     hi: np.ndarray) -> tuple[RTreeNode, RTreeNode] | None:
        node.extend(lo, hi)
        if node.is_leaf:
            node.entries.append(object_id)
            if len(node.entries) > self._max_entries:
                return self._split(node)
            return None
        child = self._choose_child(node, lo, hi)
        split = self._insert_into(child, object_id, lo, hi)
        if split is not None:
            left, right = split
            node.entries.remove(child)
            node.entries.extend([left, right])
            if len(node.entries) > self._max_entries:
                return self._split(node)
        return None

    def _choose_child(self, node: RTreeNode, lo: np.ndarray, hi: np.ndarray) -> RTreeNode:
        """Least-enlargement child selection."""
        best = None
        best_enlargement = None
        for child in node.entries:
            new_lo = np.minimum(child.lows, lo)
            new_hi = np.maximum(child.highs, hi)
            enlargement = float(np.prod(new_hi - new_lo + 1)) - child.mbr_area()
            if best_enlargement is None or enlargement < best_enlargement:
                best = child
                best_enlargement = enlargement
        assert best is not None
        return best

    def _entry_bounds(self, node: RTreeNode, entry) -> tuple[np.ndarray, np.ndarray]:
        if node.is_leaf:
            return self._lows[entry], self._highs[entry]
        return entry.lows, entry.highs

    def _split(self, node: RTreeNode) -> tuple[RTreeNode, RTreeNode]:
        """Quadratic split of an overflowing node."""
        entries = list(node.entries)
        bounds = [self._entry_bounds(node, entry) for entry in entries]

        # Pick the pair of seeds with the largest dead space.
        worst = (-1.0, 0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                lo = np.minimum(bounds[i][0], bounds[j][0])
                hi = np.maximum(bounds[i][1], bounds[j][1])
                waste = float(np.prod(hi - lo + 1)) \
                    - float(np.prod(bounds[i][1] - bounds[i][0] + 1)) \
                    - float(np.prod(bounds[j][1] - bounds[j][0] + 1))
                if waste > worst[0]:
                    worst = (waste, i, j)
        seed_a, seed_b = worst[1], worst[2]

        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        box_a = [bounds[seed_a][0].copy(), bounds[seed_a][1].copy()]
        box_b = [bounds[seed_b][0].copy(), bounds[seed_b][1].copy()]
        remaining = [k for k in range(len(entries)) if k not in (seed_a, seed_b)]
        for k in remaining:
            lo, hi = bounds[k]
            if len(group_a) + (len(remaining)) <= self._min_entries:
                target, target_box = group_a, box_a
            elif len(group_b) + (len(remaining)) <= self._min_entries:
                target, target_box = group_b, box_b
            else:
                grow_a = float(np.prod(np.maximum(box_a[1], hi) - np.minimum(box_a[0], lo) + 1))
                grow_b = float(np.prod(np.maximum(box_b[1], hi) - np.minimum(box_b[0], lo) + 1))
                if grow_a <= grow_b:
                    target, target_box = group_a, box_a
                else:
                    target, target_box = group_b, box_b
            target.append(entries[k])
            target_box[0] = np.minimum(target_box[0], lo)
            target_box[1] = np.maximum(target_box[1], hi)

        def build(group, box) -> RTreeNode:
            return RTreeNode(lows=box[0], highs=box[1], is_leaf=node.is_leaf,
                             entries=group)

        return build(group_a, box_a), build(group_b, box_b)

    # -- queries ---------------------------------------------------------------------------------

    def query(self, query: Rect | BoxSet, *, closed: bool = False) -> list[int]:
        """Ids of indexed boxes overlapping the query box."""
        if isinstance(query, Rect):
            query = BoxSet.from_rects([query])
        if query.dimension != self._dimension:
            raise DimensionalityError("query dimensionality does not match the tree")
        q_lo, q_hi = query.lows[0], query.highs[0]
        results: list[int] = []
        if self.size == 0:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.overlaps(q_lo, q_hi, closed=closed):
                continue
            if node.is_leaf:
                for object_id in node.entries:
                    lo, hi = self._lows[object_id], self._highs[object_id]
                    if closed:
                        hit = bool(np.all(lo <= q_hi) and np.all(q_lo <= hi))
                    else:
                        hit = bool(np.all(lo < q_hi) and np.all(q_lo < hi))
                    if hit:
                        results.append(object_id)
            else:
                stack.extend(node.entries)
        return results

    def join(self, other: "RTree", *, closed: bool = False) -> Iterator[tuple[int, int]]:
        """Dual-tree spatial join: yields overlapping (self_id, other_id) pairs."""
        if other.dimension != self._dimension:
            raise DimensionalityError("trees have different dimensionality")
        if self.size == 0 or other.size == 0:
            return
        stack = [(self._root, other._root)]
        while stack:
            left, right = stack.pop()
            if not _nodes_overlap(left, right, closed=closed):
                continue
            if left.is_leaf and right.is_leaf:
                for a in left.entries:
                    a_lo, a_hi = self._lows[a], self._highs[a]
                    for b in right.entries:
                        b_lo, b_hi = other._lows[b], other._highs[b]
                        if closed:
                            hit = bool(np.all(a_lo <= b_hi) and np.all(b_lo <= a_hi))
                        else:
                            hit = bool(np.all(a_lo < b_hi) and np.all(b_lo < a_hi))
                        if hit:
                            yield (a, b)
            elif left.is_leaf:
                stack.extend((left, child) for child in right.entries)
            elif right.is_leaf:
                stack.extend((child, right) for child in left.entries)
            else:
                stack.extend((lc, rc) for lc in left.entries for rc in right.entries)

    def join_count(self, other: "RTree", *, closed: bool = False) -> int:
        """Number of overlapping pairs between the two trees."""
        return sum(1 for _ in self.join(other, closed=closed))


def _nodes_overlap(left: RTreeNode, right: RTreeNode, *, closed: bool) -> bool:
    if closed:
        return bool(np.all(left.lows <= right.highs) and np.all(right.lows <= left.highs))
    return bool(np.all(left.lows < right.highs) and np.all(right.lows < left.highs))
