"""Spatial index substrates.

These indexes back the exact operators of the mini query engine and provide
alternative exact join strategies:

* :class:`~repro.index.grid.GridIndex` — a uniform grid (cell -> object ids),
* :class:`~repro.index.rtree.RTree` — an R-tree with STR bulk loading and
  quadratic-split insertion.
"""

from repro.index.grid import GridIndex
from repro.index.rtree import RTree, RTreeNode

__all__ = ["GridIndex", "RTree", "RTreeNode"]
