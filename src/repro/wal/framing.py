"""On-disk framing of write-ahead log records.

A WAL segment file is the magic line :data:`WAL_MAGIC` followed by a run
of records.  Each record is::

    <Q seqno> <I payload_len> <payload bytes> <I crc32(header + payload)>

— length-prefixed and CRC-checked, with a strictly monotonic sequence
number, in the style of the binary snapshot container (JSON header + raw
tensor bytes; see :mod:`repro.service.snapshot`).  The trailing CRC covers
the header *and* the payload, so a torn write (crash mid-append), a
truncated file, or any bit flip in the tail is detected and the reader
stops at the last intact record: recovery keeps exactly the durable prefix
of the stream.

Payloads are self-describing: a length-prefixed JSON header (event type,
estimator name, update routing, tensor dtype/shape) followed by the raw
update-row tensor exactly as ingested — replaying never re-encodes boxes,
so the replayed counters are bit-identical to the never-crashed service.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Iterator, Mapping

import numpy as np

from repro.errors import SnapshotError

#: First bytes of every WAL segment file.
WAL_MAGIC = b"REPROWAL1\n"

#: Record header: little-endian uint64 seqno + uint32 payload length.
_RECORD_HEADER = struct.Struct("<QI")
#: Trailing checksum: crc32 over header + payload.
_RECORD_CRC = struct.Struct("<I")
#: Payload prefix: uint32 length of the JSON event header.
_PAYLOAD_HEADER = struct.Struct("<I")

#: Sanity bound on one record's payload (a 16 MiB ingest line fits well).
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

#: Event types a record may carry.
RECORD_TYPES = ("update", "register", "unregister", "tenant")

#: Actions a ``tenant`` record may carry.
TENANT_ACTIONS = ("create", "update", "remove")


class WalFormatError(SnapshotError):
    """A WAL segment is malformed beyond a recoverable torn tail."""


# -- record framing --------------------------------------------------------------


def encode_record(seqno: int, payload: bytes) -> bytes:
    """One framed record: header + payload + trailing CRC."""
    if seqno < 1:
        raise WalFormatError("WAL sequence numbers start at 1")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise WalFormatError(
            f"WAL payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte record bound")
    header = _RECORD_HEADER.pack(seqno, len(payload))
    crc = zlib.crc32(payload, zlib.crc32(header))
    return header + payload + _RECORD_CRC.pack(crc)


def iter_buffer_records(buffer: bytes, *, offset: int = 0
                        ) -> Iterator[tuple[int, bytes, int]]:
    """Yield ``(seqno, payload, end_offset)`` for every intact record.

    Iteration stops silently at the first torn, truncated or
    CRC-corrupted record — the caller sees exactly the durable prefix.
    The last yielded ``end_offset`` is the byte position up to which the
    buffer is known-good (where a writer may safely resume appending).
    """
    view = memoryview(buffer)
    total = len(view)
    while True:
        if offset + _RECORD_HEADER.size > total:
            return
        seqno, length = _RECORD_HEADER.unpack_from(view, offset)
        end = offset + _RECORD_HEADER.size + length + _RECORD_CRC.size
        if length > MAX_PAYLOAD_BYTES or end > total:
            return
        payload = bytes(view[offset + _RECORD_HEADER.size:end - _RECORD_CRC.size])
        (stored_crc,) = _RECORD_CRC.unpack_from(view, end - _RECORD_CRC.size)
        computed = zlib.crc32(
            payload, zlib.crc32(bytes(view[offset:offset + _RECORD_HEADER.size])))
        if stored_crc != computed:
            return
        yield seqno, payload, end
        offset = end


# -- payload encoding ------------------------------------------------------------


def _pack_payload(header: Mapping[str, Any], raw: bytes = b"") -> bytes:
    encoded = json.dumps(dict(header), separators=(",", ":")).encode("utf-8")
    return _PAYLOAD_HEADER.pack(len(encoded)) + encoded + raw


def encode_update(name: str, side: str, kind: str, rows: np.ndarray) -> bytes:
    """An ``update`` payload: JSON event header + the raw int64 row tensor.

    ``rows`` is the ``(count, 2 * dim)`` concatenation of box lows and
    highs — the exact wire/row form that ingest decodes, so replay feeds
    byte-identical coordinates back through the same code path.
    """
    array = np.ascontiguousarray(rows, dtype=np.int64)
    if array.ndim != 2:
        raise WalFormatError("update rows must be a (count, 2*dim) tensor")
    return _pack_payload({
        "type": "update",
        "name": str(name),
        "side": str(side),
        "kind": str(kind),
        "shape": list(array.shape),
    }, array.tobytes())


def encode_register(name: str, spec_dict: Mapping[str, Any]) -> bytes:
    """A ``register`` payload: the estimator spec as its JSON dict."""
    return _pack_payload({"type": "register", "name": str(name),
                          "spec": dict(spec_dict)})


def encode_unregister(name: str) -> bytes:
    return _pack_payload({"type": "unregister", "name": str(name)})


def encode_tenant(action: str, tenant_id: str,
                  record: Mapping[str, Any] | None = None) -> bytes:
    """A ``tenant`` payload: registry mutation (create/update/remove).

    ``record`` is the full :class:`~repro.tenancy.registry.TenantRecord`
    dict for create/update (tokens are already hashed there — plaintext
    tokens never reach the log); ``remove`` carries just the id.  The
    tenant id doubles as the event's ``name`` so replay tooling that
    groups records by name keeps working.
    """
    if action not in TENANT_ACTIONS:
        raise WalFormatError(
            f"tenant action must be one of {TENANT_ACTIONS}, got {action!r}")
    if action != "remove" and record is None:
        raise WalFormatError(f"tenant {action!r} record requires the "
                             "tenant record dict")
    header: dict[str, Any] = {"type": "tenant", "action": str(action),
                              "name": str(tenant_id)}
    if record is not None:
        header["record"] = dict(record)
    return _pack_payload(header)


def decode_payload(payload: bytes) -> dict:
    """The event dict of one record payload.

    ``update`` events come back with a ``rows`` int64 ndarray rebuilt from
    the raw tensor bytes; ``register`` events carry their ``spec`` dict.
    """
    if len(payload) < _PAYLOAD_HEADER.size:
        raise WalFormatError("WAL payload too short for its header")
    (header_len,) = _PAYLOAD_HEADER.unpack_from(payload)
    body_start = _PAYLOAD_HEADER.size + header_len
    if body_start > len(payload):
        raise WalFormatError("WAL payload header overruns the record")
    try:
        event = json.loads(payload[_PAYLOAD_HEADER.size:body_start]
                           .decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WalFormatError(f"corrupt WAL event header: {exc}") from exc
    if not isinstance(event, dict) or event.get("type") not in RECORD_TYPES:
        raise WalFormatError(f"unknown WAL event in record: {event!r}")
    if event["type"] == "update":
        try:
            shape = tuple(int(extent) for extent in event["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WalFormatError(f"malformed update record: {exc}") from exc
        expected = int(np.prod(shape, dtype=np.int64)) * 8
        raw = payload[body_start:]
        if len(raw) != expected or any(extent < 0 for extent in shape):
            raise WalFormatError(
                f"update tensor bytes ({len(raw)}) do not match the "
                f"declared shape {shape}")
        event["rows"] = np.frombuffer(raw, dtype=np.int64).reshape(shape)
    return event
