"""Snapshot + replay recovery and the checkpoint lifecycle.

Recovery is ``load snapshot + replay tail``: restore the newest snapshot
(whose header records the WAL sequence number it covers), then re-apply
every durable log record *after* that position through the normal ingest
path.  Because sketch counters are linear in the update stream and
integer-valued in float64, the replayed counter tensors are bit-identical
to the never-crashed service — independent of replay batching or order.

The checkpoint is the inverse half: :func:`checkpoint_service` snapshots
the service (embedding the covered sequence number) and then truncates the
log through it, keeping recovery cost proportional to the tail written
since the last checkpoint.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.geometry.boxset import BoxSet
from repro.wal.framing import WalFormatError, decode_payload
from repro.wal.reader import list_segments, read_wal_records, scan_segment
from repro.wal.writer import WalWriter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.service import EstimationService


#: Well-known snapshot filename inside a WAL directory: the recovery base
#: used when no explicit snapshot path is configured (checkpoints and
#: cluster bootstraps write it; recovery looks for it).
CHECKPOINT_BASENAME = "checkpoint.sketch"


def default_checkpoint_path(wal_dir) -> str:
    """The in-directory recovery-base path for a WAL directory."""
    return os.path.join(os.fspath(wal_dir), CHECKPOINT_BASENAME)


@dataclass(frozen=True)
class RecoveryReport:
    """What one :func:`recover_service` call reconstructed."""

    snapshot_path: str | None
    base_seqno: int
    last_seqno: int
    replayed_records: int
    replayed_boxes: int
    truncated_bytes: int

    def as_dict(self) -> dict:
        return {
            "snapshot_path": self.snapshot_path,
            "base_seqno": self.base_seqno,
            "last_seqno": self.last_seqno,
            "replayed_records": self.replayed_records,
            "replayed_boxes": self.replayed_boxes,
            "truncated_bytes": self.truncated_bytes,
        }


def _rows_to_boxes(rows: np.ndarray) -> BoxSet:
    """Rebuild the ingested BoxSet from a logged ``(count, 2*dim)`` tensor."""
    if rows.ndim != 2 or rows.shape[1] % 2:
        raise WalFormatError(
            f"update tensor of shape {rows.shape} is not (count, 2*dim)")
    dim = rows.shape[1] // 2
    return BoxSet(np.ascontiguousarray(rows[:, :dim]),
                  np.ascontiguousarray(rows[:, dim:]), validate=False)


def apply_wal_record(service: "EstimationService", event: dict) -> int:
    """Apply one decoded record event; returns the update rows it carried.

    Registration replay is idempotent: a ``register`` for a name the
    service already knows (it came from the snapshot, or the record is
    being re-shipped to a follower) is skipped, and an ``unregister`` for
    an unknown name is a no-op.  Updates go through the normal ingest path
    so a service with its own WAL attached (a catching-up follower) logs
    the shipped rows into its *own* durability stream.
    """
    from repro.service.specs import EstimatorSpec

    record_type = event["type"]
    name = event["name"]
    if record_type == "tenant":
        from repro.tenancy import TenantRecord

        if event["action"] == "remove":
            registry = service.tenants
            if registry is not None and name in registry:
                service.tenant_remove(name)
        else:
            # create and update both replay as an upsert: idempotent, and a
            # re-shipped create over an existing tenant converges instead of
            # failing the whole recovery.
            service.tenant_upsert(TenantRecord.from_dict(event["record"]))
        return 0
    if record_type == "register":
        if name not in service:
            service.register(name, EstimatorSpec.from_dict(event["spec"]))
        return 0
    if record_type == "unregister":
        if name in service:
            service.unregister(name)
        return 0
    rows = event["rows"]
    if name not in service:
        # The estimator was unregistered after this update was logged; the
        # later unregister record supersedes it.
        return 0
    service.ingest(name, _rows_to_boxes(rows),
                   side=event["side"], kind=event["kind"])
    return int(len(rows))


def replay_records(service: "EstimationService",
                   records: Iterable[tuple[int, bytes]]) -> tuple[int, int, int]:
    """Re-apply ``(seqno, payload)`` records; returns
    ``(records, boxes, last_seqno)``."""
    replayed = 0
    boxes = 0
    last_seqno = 0
    for seqno, payload in records:
        boxes += apply_wal_record(service, decode_payload(payload))
        replayed += 1
        last_seqno = seqno
    if replayed:
        service.flush()
    return replayed, boxes, last_seqno


def recover_service(wal_dir, snapshot_path=None, *, sync: str = "flush",
                    attach: bool = True, flush_threshold: int | None = 8192,
                    cache_size: int = 16, max_workers: int | None = None,
                    num_shards: int = 4,
                    checkpoint_path=None,
                    checkpoint_boxes: int | None = None,
                    ) -> tuple["EstimationService", RecoveryReport]:
    """Rebuild a service as ``load snapshot + replay tail``.

    The snapshot (when present) names the WAL position it covers in its
    ``wal_seqno`` header field; only records *after* that position are
    replayed, so a torn tail left by a crash costs exactly the writes that
    were never acknowledged as durable.  With ``attach=True`` (default) a
    :class:`WalWriter` resumes on the directory — truncating the torn
    tail — and is attached to the recovered service, so it keeps logging
    where the crashed process stopped.
    """
    from repro.service.service import EstimationService
    from repro.service.snapshot import read_snapshot_state, restore_service

    service_kwargs = dict(flush_threshold=flush_threshold,
                          cache_size=cache_size, max_workers=max_workers)
    base_seqno = 0
    resolved_path: str | None = None
    if snapshot_path is None:
        # No explicit base: a checkpoint inside the directory (written by
        # auto-checkpointing or a cluster bootstrap) is the recovery base.
        snapshot_path = default_checkpoint_path(wal_dir)
    if snapshot_path is not None and os.path.exists(os.fspath(snapshot_path)):
        resolved_path = os.fspath(snapshot_path)
        state = read_snapshot_state(resolved_path)
        service = restore_service(state, **service_kwargs)
        base_seqno = int(state.get("wal_seqno", 0))
    else:
        service = EstimationService(num_shards=num_shards, **service_kwargs)

    truncated_bytes = sum(scan_segment(path).truncated_bytes
                          for path in list_segments(wal_dir))
    records = read_wal_records(wal_dir, since=base_seqno)
    replayed, boxes, last_seqno = replay_records(service, records)
    if attach:
        writer = WalWriter(wal_dir, sync=sync)
        service.attach_wal(writer, checkpoint_path=checkpoint_path,
                           checkpoint_boxes=checkpoint_boxes)
    report = RecoveryReport(
        snapshot_path=resolved_path,
        base_seqno=base_seqno,
        last_seqno=max(last_seqno, base_seqno),
        replayed_records=replayed,
        replayed_boxes=boxes,
        truncated_bytes=truncated_bytes,
    )
    return service, report


def checkpoint_service(service: "EstimationService", path, *,
                       format: str = "auto") -> dict:
    """Snapshot the service and truncate its WAL through the covered seqno.

    Thin functional wrapper over :meth:`EstimationService.checkpoint`.
    """
    return service.checkpoint(path, format=format)
