"""Write-ahead logging and snapshot+replay recovery.

The durability layer of the sketch service.  The source paper's turnstile
stream model (inserts *and* deletes as signed updates) makes replay-based
recovery exact by construction: sketch counters are linear in the update
stream and integer-valued in float64, so re-applying a log of raw update
rows to a snapshot reproduces the counter tensors **bit-identically**,
independent of replay batching or order.

* :mod:`repro.wal.framing` — the on-disk record format: length-prefixed,
  CRC-checked records with monotonic sequence numbers, each carrying one
  batched update (raw int64 box tensor) or a registration event,
* :mod:`repro.wal.writer` — the append-only segmented writer with
  configurable sync modes (``none`` / ``flush`` / ``fsync``),
* :mod:`repro.wal.reader` — segment scanning with torn/corrupt tail
  detection (CRC) and tail fetches for cluster log shipping,
* :mod:`repro.wal.recovery` — ``load snapshot + replay tail`` service
  recovery and the checkpoint (snapshot + log truncation) helper.
"""

from repro.wal.framing import (
    WAL_MAGIC,
    decode_payload,
    encode_record,
    encode_register,
    encode_unregister,
    encode_update,
    iter_buffer_records,
)
from repro.wal.reader import (
    SegmentScan,
    WalTail,
    read_wal_records,
    scan_segment,
    wal_records_since,
)
from repro.wal.recovery import (
    RecoveryReport,
    apply_wal_record,
    checkpoint_service,
    recover_service,
    replay_records,
)
from repro.wal.writer import SYNC_MODES, WalWriter

__all__ = [
    "WAL_MAGIC",
    "SYNC_MODES",
    "SegmentScan",
    "RecoveryReport",
    "WalTail",
    "WalWriter",
    "apply_wal_record",
    "checkpoint_service",
    "decode_payload",
    "encode_record",
    "encode_register",
    "encode_unregister",
    "encode_update",
    "iter_buffer_records",
    "read_wal_records",
    "recover_service",
    "replay_records",
    "scan_segment",
    "wal_records_since",
]
