"""Scanning WAL segments: durable-prefix reads and tail fetches.

Readers are deliberately forgiving about the *tail* of a log — a torn
final record is what a crash mid-append leaves behind, and the CRC framing
turns it into a clean truncation point — and strict about everything else
(a file without the WAL magic is an error, not an empty log).

:func:`wal_records_since` is the log-shipping primitive: the raw,
still-framed bytes of every record after a sequence number, exactly what
the ``wal`` server verb ships to a catching-up cluster follower.  When the
requested position has already been checkpoint-truncated away the tail is
flagged ``truncated`` so the caller falls back to snapshot bootstrap.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.wal.framing import (
    WAL_MAGIC,
    WalFormatError,
    encode_record,
    iter_buffer_records,
)

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


def segment_path(directory, start_seqno: int) -> str:
    """The canonical path of the segment starting at ``start_seqno``."""
    return os.path.join(os.fspath(directory),
                        f"{_SEGMENT_PREFIX}{start_seqno:020d}{_SEGMENT_SUFFIX}")


def segment_start(path) -> int:
    """The first sequence number a segment file may contain (from its name)."""
    stem = os.path.basename(os.fspath(path))
    return int(stem[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])


def list_segments(directory) -> list[str]:
    """Every segment file of a WAL directory, in sequence order."""
    directory = os.fspath(directory)
    if not os.path.isdir(directory):
        return []
    names = [name for name in os.listdir(directory)
             if name.startswith(_SEGMENT_PREFIX)
             and name.endswith(_SEGMENT_SUFFIX)]
    return [os.path.join(directory, name) for name in sorted(names)]


@dataclass(frozen=True)
class SegmentScan:
    """What one segment file actually holds.

    ``records`` is the durable prefix as ``(seqno, payload)`` pairs;
    ``valid_bytes`` is where that prefix ends in the file and
    ``truncated_bytes`` how many torn/corrupt bytes follow it (0 for a
    cleanly-closed segment).
    """

    path: str
    records: tuple[tuple[int, bytes], ...]
    valid_bytes: int
    truncated_bytes: int

    @property
    def truncated(self) -> bool:
        return self.truncated_bytes > 0


def scan_segment(path) -> SegmentScan:
    """Read one segment's durable prefix, stopping at any torn tail."""
    path = os.fspath(path)
    with open(path, "rb") as handle:
        buffer = handle.read()
    if not buffer.startswith(WAL_MAGIC):
        raise WalFormatError(f"{path} is not a WAL segment (bad magic bytes)")
    records: list[tuple[int, bytes]] = []
    valid = len(WAL_MAGIC)
    for seqno, payload, end in iter_buffer_records(buffer,
                                                   offset=len(WAL_MAGIC)):
        records.append((seqno, payload))
        valid = end
    return SegmentScan(path=path, records=tuple(records), valid_bytes=valid,
                       truncated_bytes=len(buffer) - valid)


def read_wal_records(directory, *, since: int = 0
                     ) -> list[tuple[int, bytes]]:
    """All durable ``(seqno, payload)`` records after ``since``, in order."""
    records: list[tuple[int, bytes]] = []
    for path in list_segments(directory):
        for seqno, payload in scan_segment(path).records:
            if seqno > since:
                records.append((seqno, payload))
    records.sort(key=lambda record: record[0])
    return records


@dataclass(frozen=True)
class WalTail:
    """A shippable log tail (the reply of ``wal fetch``).

    ``data`` holds re-framed record bytes (magic-less — a pure record
    run); ``truncated`` means the requested position predates the oldest
    retained record, i.e. a checkpoint already dropped part of the
    requested range and the follower must bootstrap from a snapshot.
    """

    since: int
    first_seqno: int
    last_seqno: int
    count: int
    data: bytes
    truncated: bool

    @property
    def nbytes(self) -> int:
        return len(self.data)


def wal_records_since(directory, since: int) -> WalTail:
    """The framed tail after ``since``, with truncation detection.

    The oldest *retained* record tells whether the request is servable:
    if its sequence number is greater than ``since + 1`` the records in
    between were checkpoint-truncated and the tail alone cannot catch a
    follower up.
    """
    segments = list_segments(directory)
    all_records = read_wal_records(directory, since=0)
    oldest = all_records[0][0] if all_records else None
    tail = [(seqno, payload) for seqno, payload in all_records
            if seqno > since]
    # The oldest segment's *name* is the authoritative floor: a checkpoint
    # that emptied the log leaves a record-less segment whose start seqno
    # still records what was dropped.
    floor = segment_start(segments[0]) if segments else 1
    truncated = floor > since + 1 or (oldest is not None and oldest > since + 1)
    data = b"".join(encode_record(seqno, payload) for seqno, payload in tail)
    return WalTail(
        since=int(since),
        first_seqno=tail[0][0] if tail else 0,
        last_seqno=tail[-1][0] if tail else int(since),
        count=len(tail),
        data=data,
        truncated=truncated,
    )


def records_from_tail_bytes(data: bytes) -> list[tuple[int, bytes]]:
    """Decode a shipped :attr:`WalTail.data` blob back into records.

    Unlike segment scanning, a shipped tail must be *wholly* intact — it
    travelled over a checksummed transport, so a short or corrupt record
    is an error, not a truncation.
    """
    records: list[tuple[int, bytes]] = []
    consumed = 0
    for seqno, payload, end in iter_buffer_records(data):
        records.append((seqno, payload))
        consumed = end
    if consumed != len(data):
        raise WalFormatError(
            f"shipped WAL tail is corrupt: {len(data) - consumed} trailing "
            f"bytes do not frame a record")
    return records
