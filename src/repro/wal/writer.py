"""The append-only, segmented write-ahead log writer.

A WAL lives in a directory of segment files named by the first sequence
number they may contain (``wal-00000000000000000001.log`` ...).  The
writer appends framed records (:mod:`repro.wal.framing`) with strictly
monotonic sequence numbers and supports three durability modes:

* ``none``   — userspace-buffered appends; fastest, a crash may lose the
  buffered tail (the CRC framing turns that into a clean truncation),
* ``flush``  — flush to the OS page cache per append: survives ``kill -9``
  of the process (the default for servers),
* ``fsync``  — ``os.fsync`` per append: survives power loss.

Opening an existing directory resumes after the last intact record — a
torn tail from a crashed writer is truncated away (it was never
acknowledged as durable) — and :meth:`WalWriter.truncate_through` is the
checkpoint half: after a snapshot covering everything up to sequence
number *s*, segments whose records are all ``<= s`` are deleted and a
fresh segment is rolled, keeping recovery cost proportional to the tail
written since the last checkpoint.
"""

from __future__ import annotations

import os
import threading
from typing import IO

import numpy as np

from repro.errors import SnapshotError
from repro.wal.framing import (
    WAL_MAGIC,
    encode_record,
    encode_register,
    encode_tenant,
    encode_unregister,
    encode_update,
)
from repro.wal.reader import (
    list_segments,
    scan_segment,
    segment_path,
    segment_start,
)

SYNC_MODES = ("none", "flush", "fsync")


class WalWriter:
    """Append framed records to the newest segment of a WAL directory.

    Thread-safe: concurrent producers (the service lock is *not* held
    around WAL appends) are serialised on an internal lock, which is also
    what makes sequence numbers strictly monotonic.
    """

    def __init__(self, directory, *, sync: str = "flush") -> None:
        if sync not in SYNC_MODES:
            raise SnapshotError(
                f"WAL sync mode must be one of {SYNC_MODES}, got {sync!r}")
        self.directory = os.fspath(directory)
        self.sync = sync
        self._lock = threading.Lock()
        self._handle: IO[bytes] | None = None
        self._appended_boxes = 0
        os.makedirs(self.directory, exist_ok=True)
        self._last_seqno = self._resume()

    # -- introspection ------------------------------------------------------------

    @property
    def last_seqno(self) -> int:
        """Sequence number of the newest appended record (0 when empty)."""
        return self._last_seqno

    @property
    def appended_boxes(self) -> int:
        """Update rows appended since construction or the last checkpoint."""
        return self._appended_boxes

    def describe(self) -> dict:
        """A JSON-friendly summary (surfaces in server stats/metrics)."""
        segments = list_segments(self.directory)
        return {
            "directory": self.directory,
            "sync": self.sync,
            "last_seqno": self._last_seqno,
            "segments": len(segments),
            "bytes": sum(os.path.getsize(path) for path in segments),
        }

    # -- lifecycle ----------------------------------------------------------------

    def _resume(self) -> int:
        """Open the newest segment for appending, truncating any torn tail."""
        segments = list_segments(self.directory)
        if not segments:
            self._open_segment(1)
            return 0
        last_seqno = 0
        for path in segments[:-1]:
            scan = scan_segment(path)
            if scan.records:
                last_seqno = scan.records[-1][0]
        tail = scan_segment(segments[-1])
        if tail.records:
            last_seqno = tail.records[-1][0]
        if tail.truncated_bytes:
            # The torn bytes were never durable; cut them so the next
            # append extends a fully-valid record run.
            with open(segments[-1], "r+b") as handle:
                handle.truncate(tail.valid_bytes)
        self._handle = open(segments[-1], "ab")
        return last_seqno

    def _open_segment(self, start_seqno: int) -> None:
        if self._handle is not None:
            self._handle.close()
        path = segment_path(self.directory, start_seqno)
        self._handle = open(path, "ab")
        if self._handle.tell() == 0:
            self._handle.write(WAL_MAGIC)
            self._handle.flush()

    def flush(self) -> None:
        """Push userspace-buffered appends to the OS, whatever the sync mode.

        Readers of the segment files (``wal fetch`` log shipping, the
        inspect CLI) see only what reached the OS; under ``sync="none"``
        that lags the acknowledged appends until this is called.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- appending ----------------------------------------------------------------

    def _append(self, payload_for_seqno) -> int:
        with self._lock:
            if self._handle is None:
                raise SnapshotError("WAL writer is closed")
            seqno = self._last_seqno + 1
            self._handle.write(encode_record(seqno, payload_for_seqno(seqno)))
            if self.sync != "none":
                self._handle.flush()
                if self.sync == "fsync":
                    os.fsync(self._handle.fileno())
            self._last_seqno = seqno
            return seqno

    def append_update(self, name: str, side: str, kind: str,
                      rows: np.ndarray) -> int:
        """Log one batched update; returns its sequence number."""
        seqno = self._append(lambda _: encode_update(name, side, kind, rows))
        with self._lock:
            self._appended_boxes += int(len(rows))
        return seqno

    def append_register(self, name: str, spec_dict: dict) -> int:
        return self._append(lambda _: encode_register(name, spec_dict))

    def append_unregister(self, name: str) -> int:
        return self._append(lambda _: encode_unregister(name))

    def append_tenant(self, action: str, tenant_id: str,
                      record: dict | None = None) -> int:
        """Log one tenant-registry mutation (create/update/remove)."""
        return self._append(lambda _: encode_tenant(action, tenant_id, record))

    # -- checkpoint truncation ----------------------------------------------------

    def truncate_through(self, seqno: int) -> int:
        """Drop every record with sequence number ``<= seqno``.

        The checkpoint half: called after a snapshot that captures all
        state through ``seqno``.  The current segment is rolled first, so
        whole segment files can be unlinked; returns the number of
        segments removed.  Appends issued after the snapshot was taken are
        always in segments newer than ``seqno`` and survive.
        """
        with self._lock:
            if self._handle is None:
                raise SnapshotError("WAL writer is closed")
            if seqno < self._last_seqno:
                # A concurrent append slipped in after the snapshot was
                # captured; keep the whole current segment (it holds
                # records beyond the checkpoint).
                self._handle.flush()
                removed = self._remove_segments_before(seqno + 1)
            else:
                self._handle.flush()
                self._open_segment(seqno + 1)
                removed = self._remove_segments_before(seqno + 1)
            self._appended_boxes = 0
            return removed

    def _remove_segments_before(self, start_seqno: int) -> int:
        """Unlink closed segments whose records all precede ``start_seqno``."""
        segments = list_segments(self.directory)
        removed = 0
        for index, path in enumerate(segments):
            if path == segments[-1]:
                break  # never unlink the live segment
            next_start = segment_start(segments[index + 1])
            if next_start <= start_seqno:
                os.unlink(path)
                removed += 1
        return removed
