"""Tests for adaptive maxLevel selection (Section 6.5) and EstimateResult."""

import numpy as np
import pytest

from repro.core.adaptive import candidate_levels, choose_max_level, level_profile
from repro.core.domain import Domain
from repro.core.result import EstimateResult
from repro.errors import SketchConfigError
from repro.geometry.boxset import BoxSet

from tests.conftest import random_boxes


class TestChooseMaxLevel:
    def test_candidate_levels(self):
        domain = Domain(256)
        assert candidate_levels(domain) == list(range(9))

    def test_short_intervals_prefer_low_levels(self, rng):
        domain = Domain(1024)
        sample = random_boxes(rng, 150, 1024, 1, max_extent=4)
        level = choose_max_level(sample, domain)
        assert level <= 4

    def test_long_intervals_prefer_higher_levels(self, rng):
        domain = Domain(1024)
        lows = rng.integers(0, 200, size=(100, 1))
        highs = lows + rng.integers(400, 800, size=(100, 1))
        sample = BoxSet(lows, np.minimum(highs, 1023))
        short_level = choose_max_level(random_boxes(rng, 100, 1024, 1, max_extent=4), domain)
        long_level = choose_max_level(sample, domain)
        assert long_level > short_level

    def test_chosen_level_minimises_self_join_size(self, rng):
        domain = Domain(256)
        sample = random_boxes(rng, 80, 256, 1, max_extent=20)
        chosen = choose_max_level(sample, domain)
        profile = level_profile(sample, domain)
        assert profile[chosen] == min(profile.values())

    def test_min_level_is_respected(self, rng):
        domain = Domain(256)
        sample = random_boxes(rng, 50, 256, 1, max_extent=3)
        level = choose_max_level(sample, domain, min_level=5)
        assert level >= 5

    def test_explicit_levels(self, rng):
        domain = Domain(256)
        sample = random_boxes(rng, 50, 256, 1)
        level = choose_max_level(sample, domain, levels=[2, 6])
        assert level in (2, 6)

    def test_empty_sample_rejected(self):
        with pytest.raises(SketchConfigError):
            choose_max_level(BoxSet.empty(1), Domain(64))

    def test_update_cost_weight_pulls_level_up(self, rng):
        # Penalising per-object cover size should never pick a lower level
        # than the pure-variance objective for long-object data.
        domain = Domain(1024)
        lows = rng.integers(0, 100, size=(60, 1))
        sample = BoxSet(lows, np.minimum(lows + 700, 1023))
        free = choose_max_level(sample, domain)
        weighted = choose_max_level(sample, domain, update_cost_weight=1e6)
        assert weighted >= free

    def test_two_dimensional_sample(self, rng):
        domain = Domain.square(128, dimension=2)
        sample = random_boxes(rng, 40, 128, 2, max_extent=8)
        level = choose_max_level(sample, domain)
        assert 0 <= level <= 7


class TestEstimateResult:
    def _result(self, values, estimate=None):
        values = np.asarray(values, dtype=np.float64)
        return EstimateResult(
            estimate=float(values.mean() if estimate is None else estimate),
            instance_values=values,
            group_means=np.array([values.mean()]),
            left_count=10,
            right_count=20,
        )

    def test_selectivity(self):
        result = self._result([50.0, 50.0])
        assert result.selectivity == pytest.approx(50.0 / 200)

    def test_relative_error(self):
        result = self._result([90.0], estimate=90.0)
        assert result.relative_error(100.0) == pytest.approx(0.1)
        assert result.relative_error(0.0) == pytest.approx(90.0)

    def test_sample_variance(self):
        result = self._result([1.0, 3.0])
        assert result.sample_variance == pytest.approx(2.0)
        assert self._result([5.0]).sample_variance == 0.0

    def test_float_conversion(self):
        assert float(self._result([7.0], estimate=7.0)) == 7.0

    def test_num_instances(self):
        assert self._result([1.0, 2.0, 3.0]).num_instances == 3
