"""Tests for the CLI's sketch-service command group (ingest/estimate/serve)."""

import io
import json


from repro.cli import main, service_command_loop
from repro.service import EstimationService


def _run_lines(service, lines, **kwargs):
    out = io.StringIO()
    service_command_loop(service, io.StringIO("\n".join(lines) + "\n"), out,
                         **kwargs)
    return [json.loads(line) for line in out.getvalue().splitlines()]


class TestServeLoop:
    def test_register_ingest_estimate(self):
        service = EstimationService(num_shards=2)
        replies = _run_lines(service, [
            json.dumps({"op": "register", "name": "join", "family": "rectangle",
                        "sizes": [256, 256], "instances": 16, "seed": 3}),
            json.dumps({"op": "ingest", "name": "join", "side": "left",
                        "boxes": [[0, 0, 10, 10], [5, 5, 50, 60]]}),
            json.dumps({"op": "ingest", "name": "join", "side": "right",
                        "boxes": [[2, 2, 30, 30]]}),
            json.dumps({"op": "estimate", "name": "join"}),
            json.dumps({"op": "stats"}),
            json.dumps({"op": "quit"}),
        ])
        assert [r["ok"] for r in replies] == [True] * 6
        estimate = replies[3]
        assert estimate["left_count"] == 2 and estimate["right_count"] == 1
        assert replies[4]["num_shards"] == 2

    def test_errors_keep_the_loop_alive(self):
        service = EstimationService(num_shards=2)
        replies = _run_lines(service, [
            json.dumps({"op": "estimate", "name": "missing"}),
            json.dumps({"op": "frobnicate"}),
            "   ",
            json.dumps({"op": "quit"}),
        ])
        assert [r["ok"] for r in replies] == [False, False, True]
        assert "ServiceError" in replies[0]["error"]

    def test_save_and_save_on_exit(self, tmp_path):
        service = EstimationService(num_shards=2)
        service.register("rq", family="range", domain=(256,), num_instances=8)
        explicit = tmp_path / "explicit.json"
        exit_path = tmp_path / "exit.json"
        replies = _run_lines(service, [
            json.dumps({"op": "ingest", "name": "rq", "side": "data",
                        "boxes": [[1, 5], [9, 20]]}),
            json.dumps({"op": "save", "path": str(explicit)}),
            json.dumps({"op": "quit"}),
        ], snapshot_path=str(exit_path), save_on_exit=True)
        assert all(r["ok"] for r in replies)
        assert EstimationService.load(explicit).merged_view("rq").count == 2
        assert EstimationService.load(exit_path).merged_view("rq").count == 2

    def test_save_without_path_fails(self):
        service = EstimationService(num_shards=2)
        replies = _run_lines(service, [json.dumps({"op": "save"}),
                                       json.dumps({"op": "quit"})])
        assert replies[0]["ok"] is False

    def test_save_to_bad_path_keeps_server_alive(self):
        service = EstimationService(num_shards=2)
        replies = _run_lines(service, [
            json.dumps({"op": "save", "path": "/no/such/dir/x.json"}),
            json.dumps({"op": "quit"}),
        ])
        assert replies[0]["ok"] is False
        assert replies[1]["ok"] is True  # the loop survived the OSError


class TestIngestEstimateCommands:
    def test_full_cycle(self, tmp_path, capsys):
        snapshot = str(tmp_path / "svc.json")
        assert main(["ingest", "--snapshot", snapshot, "--name", "join",
                     "--family", "rectangle", "--sizes", "256x256",
                     "--instances", "32", "--seed", "7", "--count", "500",
                     "--side", "left", "--data-seed", "1"]) == 0
        created = json.loads(capsys.readouterr().out)
        assert created["created"] is True and created["boxes"] == 500

        assert main(["ingest", "--snapshot", snapshot, "--name", "join",
                     "--side", "right", "--count", "500",
                     "--data-seed", "2"]) == 0
        capsys.readouterr()

        assert main(["estimate", "--snapshot", snapshot, "--name", "join"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["left_count"] == 500 and result["right_count"] == 500

    def test_binary_snapshot_default_and_format_flag(self, tmp_path, capsys):
        """Non-.json paths write the binary v2 format; reads auto-detect."""
        from repro.service.snapshot import BINARY_MAGIC

        snapshot = str(tmp_path / "svc.snap")
        assert main(["ingest", "--snapshot", snapshot, "--name", "join",
                     "--family", "rectangle", "--sizes", "256x256",
                     "--instances", "16", "--count", "300",
                     "--side", "left"]) == 0
        capsys.readouterr()
        with open(snapshot, "rb") as handle:
            assert handle.read(len(BINARY_MAGIC)) == BINARY_MAGIC
        assert main(["estimate", "--snapshot", snapshot, "--name", "join"]) == 0
        binary_result = json.loads(capsys.readouterr().out)

        # --format json forces v1 even without a .json extension, and both
        # snapshots answer identically.
        forced = str(tmp_path / "svc-forced")
        assert main(["ingest", "--snapshot", forced, "--name", "join",
                     "--family", "rectangle", "--sizes", "256x256",
                     "--instances", "16", "--count", "300",
                     "--side", "left", "--format", "json"]) == 0
        capsys.readouterr()
        json.load(open(forced, encoding="utf-8"))  # plain v1 JSON
        assert main(["estimate", "--snapshot", forced, "--name", "join"]) == 0
        assert json.loads(capsys.readouterr().out) == binary_result

    def test_boxes_file_and_range_query(self, tmp_path, capsys):
        snapshot = str(tmp_path / "svc.json")
        boxes_file = tmp_path / "boxes.json"
        boxes_file.write_text(json.dumps([[0, 0, 20, 20], [10, 10, 99, 99],
                                          [200, 200, 255, 255]]))
        assert main(["ingest", "--snapshot", snapshot, "--name", "rq",
                     "--family", "range", "--sizes", "256,256",
                     "--instances", "16", "--side", "data",
                     "--boxes", str(boxes_file)]) == 0
        capsys.readouterr()
        assert main(["estimate", "--snapshot", snapshot, "--name", "rq",
                     "--query", "0,0,128,128"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["left_count"] == 3

    def test_estimate_explain_prints_compiled_program(self, tmp_path, capsys):
        """Satellite: --explain shows the program a query compiles to."""
        snapshot = str(tmp_path / "svc.json")
        assert main(["ingest", "--snapshot", snapshot, "--name", "rq",
                     "--family", "range", "--sizes", "256,256",
                     "--instances", "16", "--side", "data",
                     "--count", "20"]) == 0
        capsys.readouterr()
        assert main(["estimate", "--snapshot", snapshot, "--name", "rq",
                     "--query", "0,0,128,128", "--explain"]) == 0
        explained = json.loads(capsys.readouterr().out)
        assert explained["name"] == "rq" and explained["family"] == "range"
        program = explained["program"]
        assert program["num_instances"] == 16
        assert len(program["terms"]) == 4  # {I, U}^2 counter words
        assert all(request["cover_size"] >= 1
                   for request in program["letter_sum_requests"])
        reduction = program["reduction"]
        assert reduction["group_size"] * reduction["num_groups"] == \
            reduction["total_instances"]

    def test_explain_queryless_family_and_query_rejection(self, tmp_path,
                                                          capsys):
        snapshot = str(tmp_path / "svc.json")
        assert main(["ingest", "--snapshot", snapshot, "--name", "join",
                     "--family", "rectangle", "--sizes", "256x256",
                     "--instances", "16", "--count", "10"]) == 0
        capsys.readouterr()
        assert main(["estimate", "--snapshot", snapshot, "--name", "join",
                     "--explain"]) == 0
        explained = json.loads(capsys.readouterr().out)
        assert explained["program"]["letter_sum_requests"] == []
        assert len(explained["program"]["terms"]) == 4  # {I, E}^2 pairs
        # A queryable family needs a query to compile.
        assert main(["ingest", "--snapshot", snapshot, "--name", "rq",
                     "--family", "range", "--sizes", "256x256",
                     "--instances", "16", "--side", "data",
                     "--count", "10"]) == 0
        capsys.readouterr()
        assert main(["estimate", "--snapshot", snapshot, "--name", "rq",
                     "--explain"]) == 1
        assert "pass --query" in capsys.readouterr().err

    def test_unregistered_name_needs_family(self, tmp_path, capsys):
        snapshot = str(tmp_path / "svc.json")
        assert main(["ingest", "--snapshot", snapshot, "--name", "ghost",
                     "--count", "10"]) == 1
        assert "error" in capsys.readouterr().err

    def test_conflicting_flags_for_existing_name_rejected(self, tmp_path, capsys):
        snapshot = str(tmp_path / "svc.json")
        assert main(["ingest", "--snapshot", snapshot, "--name", "join",
                     "--family", "rectangle", "--sizes", "256x256",
                     "--instances", "16", "--count", "10"]) == 0
        capsys.readouterr()
        assert main(["ingest", "--snapshot", snapshot, "--name", "join",
                     "--family", "epsilon", "--sizes", "128x128",
                     "--epsilon", "3", "--count", "10"]) == 1
        err = capsys.readouterr().err
        assert "already registered with a different configuration" in err
        # Matching flags (or none) are still accepted.
        assert main(["ingest", "--snapshot", snapshot, "--name", "join",
                     "--family", "rectangle", "--instances", "16",
                     "--count", "10", "--side", "right"]) == 0

    def test_missing_snapshot_is_a_clean_error(self, tmp_path, capsys):
        assert main(["estimate", "--snapshot", str(tmp_path / "nope.json"),
                     "--name", "x"]) == 1
        assert "no such file" in capsys.readouterr().err

    def test_epsilon_family_generates_points(self, tmp_path, capsys):
        snapshot = str(tmp_path / "svc.json")
        assert main(["ingest", "--snapshot", snapshot, "--name", "eps",
                     "--family", "epsilon", "--sizes", "256x256",
                     "--instances", "16", "--epsilon", "4",
                     "--count", "100", "--side", "left"]) == 0
        capsys.readouterr()
        assert main(["ingest", "--snapshot", snapshot, "--name", "eps",
                     "--side", "right", "--count", "100",
                     "--data-seed", "3"]) == 0
        capsys.readouterr()
        assert main(["estimate", "--snapshot", snapshot, "--name", "eps"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["left_count"] == 100
