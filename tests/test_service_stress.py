"""Concurrency stress tests for :class:`EstimationService` and its stats.

Satellite of the network-serving PR: the server keeps one long-lived
service under concurrent ingest / estimate / snapshot traffic, so the
service must hold up under exactly that mix from plain threads too.
"""

import threading

import pytest

from repro.core.domain import Domain
from repro.service import EstimationService, ServiceStats, synthetic_boxes, \
    synthetic_queries

pytestmark = pytest.mark.e2e

DOMAIN = Domain.square(128, dimension=2)


class TestServiceStatsAtomicity:
    """Satellite: stats reads are atomic copies taken under the lock."""

    def test_stats_property_returns_a_copy(self):
        service = EstimationService(num_shards=2)
        first = service.stats
        assert isinstance(first, ServiceStats)
        assert first is not service.stats
        # Mutating the copy must not leak back into the service.
        first.estimates = 10 ** 9
        assert service.stats.estimates == 0

    def test_new_counters_exposed(self):
        service = EstimationService(num_shards=2, cache_size=1)
        service.register("a", family="range", domain=DOMAIN, num_instances=8)
        service.register("b", family="range", domain=DOMAIN, num_instances=8,
                         seed=1)
        service.ingest("a", synthetic_boxes(DOMAIN, 10, seed=1), side="data")
        service.ingest("b", synthetic_boxes(DOMAIN, 10, seed=2), side="data")
        service.flush()
        queries = synthetic_queries(DOMAIN, 4, seed=3)
        service.estimate_batch("a", queries)
        service.estimate_batch("b", queries)  # evicts a's view (cache_size=1)
        service.estimate_batch("a", queries)  # rebuild -> second eviction
        stats = service.stats
        assert stats.batch_estimates == 3
        assert stats.estimates == 12
        assert stats.evictions >= 1
        assert stats.coalesced_queries == 0  # only the server layer coalesces
        service.record_coalesced(7)
        assert service.stats.coalesced_queries == 7
        as_dict = service.stats.as_dict()
        for key in ("evictions", "batch_estimates", "coalesced_queries"):
            assert key in as_dict

    def test_describe_includes_new_counters(self):
        service = EstimationService(num_shards=2)
        description = service.describe()
        assert description["stats"]["batch_estimates"] == 0
        assert description["stats"]["evictions"] == 0


def test_concurrent_ingest_estimate_snapshot_stress():
    """Satellite: threads drive ingest + estimate + snapshot on one service."""
    service = EstimationService(num_shards=4, flush_threshold=256)
    service.register("ranges", family="range", domain=DOMAIN,
                     num_instances=16, seed=5)
    service.register("join", family="rectangle", domain=DOMAIN,
                     num_instances=16, seed=7)
    service.ingest("join", synthetic_boxes(DOMAIN, 50, seed=90), side="left")
    service.ingest("join", synthetic_boxes(DOMAIN, 50, seed=91), side="right")
    service.flush()

    errors: list[Exception] = []
    ingest_rounds, boxes_per_round = 15, 64
    estimate_rounds = 25
    snapshot_rounds = 8
    queries = synthetic_queries(DOMAIN, 8, seed=6)

    def guard(fn):
        def run():
            try:
                fn()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)
        return run

    def ingester(seed: int):
        def work():
            for round_index in range(ingest_rounds):
                boxes = synthetic_boxes(DOMAIN, boxes_per_round,
                                        seed=seed * 1000 + round_index)
                service.ingest("ranges", boxes, side="data")
        return work

    def estimator():
        for round_index in range(estimate_rounds):
            single = service.estimate("ranges", queries[round_index % 8])
            assert single.estimate == single.estimate  # not NaN
            batch = service.estimate_batch("ranges", queries)
            assert len(batch) == 8
            service.estimate("join")

    def snapshotter():
        for _ in range(snapshot_rounds):
            state = service.snapshot()
            restored = EstimationService.restore(state)
            # A snapshot is internally consistent: the restored service
            # answers (it reflects *some* consistent prefix of ingestion).
            restored.estimate("ranges", queries[0])

    threads = [threading.Thread(target=guard(ingester(seed)))
               for seed in range(4)]
    threads += [threading.Thread(target=guard(estimator)) for _ in range(2)]
    threads += [threading.Thread(target=guard(snapshotter))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not any(thread.is_alive() for thread in threads)
    assert errors == []

    service.flush()
    total = 4 * ingest_rounds * boxes_per_round
    view = service.merged_view("ranges")
    assert view.count == total  # no ingested box was lost or double-applied
    stats = service.stats
    assert stats.ingested_boxes == total + 100
    assert stats.estimates >= 2 * estimate_rounds * (1 + 8 + 1)


def test_concurrent_stats_reads_are_consistent():
    """Readers hammering `.stats` during traffic never see torn counters."""
    service = EstimationService(num_shards=2, flush_threshold=64)
    service.register("ranges", family="range", domain=DOMAIN,
                     num_instances=8, seed=3)
    queries = synthetic_queries(DOMAIN, 4, seed=1)
    stop = threading.Event()
    errors: list[Exception] = []

    def reader():
        try:
            while not stop.is_set():
                stats = service.stats
                # estimates is bumped together with batch_estimates in one
                # critical section; a torn read could show batch_estimates
                # ahead of estimates, which is impossible under the lock.
                assert stats.estimates >= stats.batch_estimates
                # The single writer thread has at most one request in
                # flight, whose cache touch lands one lock acquisition
                # before its estimate count does.
                assert stats.cache_hits + stats.cache_misses \
                    <= stats.estimates + 1
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    def writer():
        try:
            for index in range(40):
                service.ingest("ranges",
                               synthetic_boxes(DOMAIN, 16, seed=index),
                               side="data")
                service.estimate_batch("ranges", queries)
                service.estimate("ranges", queries[0])
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            stop.set()

    threads = [threading.Thread(target=reader) for _ in range(3)]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert errors == []
