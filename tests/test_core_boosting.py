"""Tests for median-of-means boosting and sketch sizing (Section 2.3, Lemma 1)."""

import numpy as np
import pytest

from repro.core.boosting import (
    BoostingPlan,
    median_of_means,
    plan_boosting,
    split_instances,
)
from repro.errors import SketchConfigError


class TestBoostingPlan:
    def test_total_instances(self):
        plan = BoostingPlan(group_size=10, num_groups=5)
        assert plan.total_instances == 50

    def test_invalid_plan(self):
        with pytest.raises(SketchConfigError):
            BoostingPlan(group_size=0, num_groups=5)


class TestPlanBoosting:
    def test_lemma1_formula(self):
        # k1 = 8 Var / (eps^2 E^2), k2 = 2 lg(1/phi)
        plan = plan_boosting(epsilon=0.5, phi=0.25, variance_bound=100.0,
                             expectation_lower_bound=10.0)
        assert plan.group_size == 32
        assert plan.num_groups == 4

    def test_tighter_epsilon_needs_more_instances(self):
        loose = plan_boosting(0.5, 0.1, 1000.0, 10.0)
        tight = plan_boosting(0.1, 0.1, 1000.0, 10.0)
        assert tight.total_instances > loose.total_instances

    def test_higher_confidence_needs_more_groups(self):
        low = plan_boosting(0.3, 0.25, 100.0, 10.0)
        high = plan_boosting(0.3, 0.01, 100.0, 10.0)
        assert high.num_groups > low.num_groups

    def test_max_instances_cap(self):
        plan = plan_boosting(0.01, 0.01, 1e9, 1.0, max_instances=100)
        assert plan.total_instances <= 100

    def test_invalid_parameters(self):
        with pytest.raises(SketchConfigError):
            plan_boosting(0.0, 0.1, 1.0, 1.0)
        with pytest.raises(SketchConfigError):
            plan_boosting(0.1, 1.5, 1.0, 1.0)
        with pytest.raises(SketchConfigError):
            plan_boosting(0.1, 0.1, -1.0, 1.0)
        with pytest.raises(SketchConfigError):
            plan_boosting(0.1, 0.1, 1.0, 0.0)


class TestSplitInstances:
    def test_small_budgets(self):
        assert split_instances(1).total_instances == 1
        assert split_instances(2).num_groups == 1
        assert split_instances(4).num_groups == 3

    def test_large_budget_uses_nine_groups(self):
        plan = split_instances(900)
        assert plan.num_groups == 9
        assert plan.group_size == 100

    def test_explicit_group_count(self):
        plan = split_instances(100, num_groups=5)
        assert plan.num_groups == 5
        assert plan.group_size == 20

    def test_invalid(self):
        with pytest.raises(SketchConfigError):
            split_instances(0)


class TestMedianOfMeans:
    def test_constant_values(self):
        estimate, groups = median_of_means(np.full(45, 7.0))
        assert estimate == 7.0
        assert len(groups) == 9

    def test_single_value(self):
        estimate, groups = median_of_means(np.array([3.5]))
        assert estimate == 3.5
        assert len(groups) == 1

    def test_median_resists_outliers(self):
        values = np.zeros(50)
        values[:5] = 1e9  # one contaminated group
        plan = BoostingPlan(group_size=5, num_groups=10)
        estimate, _ = median_of_means(values, plan)
        assert estimate == 0.0

    def test_plan_must_fit(self):
        with pytest.raises(SketchConfigError):
            median_of_means(np.zeros(10), BoostingPlan(group_size=6, num_groups=2))

    def test_empty_values_rejected(self):
        with pytest.raises(SketchConfigError):
            median_of_means(np.array([]))

    def test_extra_instances_are_ignored(self):
        values = np.concatenate([np.full(20, 5.0), np.full(5, 1e6)])
        plan = BoostingPlan(group_size=5, num_groups=4)
        estimate, _ = median_of_means(values, plan)
        assert estimate == 5.0

    def test_gaussian_concentration(self, rng):
        # With 100 groups of 50, the median of means of a unit Gaussian with
        # mean 10 should be very close to 10.
        values = rng.normal(10.0, 1.0, size=5000)
        plan = BoostingPlan(group_size=50, num_groups=100)
        estimate, _ = median_of_means(values, plan)
        assert estimate == pytest.approx(10.0, abs=0.15)
