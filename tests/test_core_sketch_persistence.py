"""Tests for sketch merging (distributed construction) and persistence."""

import json

import numpy as np
import pytest

from repro.core.atomic import Letter, SketchBank, all_words
from repro.core.domain import Domain
from repro.errors import MergeCompatibilityError, SketchConfigError
from repro.geometry.boxset import BoxSet
from repro.service.specs import EstimatorSpec, apply_update, run_estimate

from tests.conftest import random_boxes


IE_1D = [(Letter.INTERVAL,), (Letter.ENDPOINTS,)]

#: One representative spec per estimator family (all eight).
FAMILY_SPECS = [
    ("interval", (256,), {}),
    ("rectangle", (256, 256), {}),
    ("hyperrect", (64, 64, 64), {}),
    ("extended_overlap", (256, 256), {}),
    ("common_endpoint", (256, 256), {}),
    ("containment", (256, 256), {}),
    ("epsilon", (256, 256), {"epsilon": 3}),
    ("range", (256, 256), {}),
]


class TestMerge:
    def test_merge_equals_union_insert(self, rng, domain_1d):
        part_a = random_boxes(rng, 20, 256, 1)
        part_b = random_boxes(rng, 15, 256, 1)

        whole = SketchBank(domain_1d, IE_1D, num_instances=16, seed=5)
        whole.insert(part_a.concat(part_b))

        first = SketchBank(domain_1d, IE_1D, num_instances=16, seed=5)
        second = first.companion()
        first.insert(part_a)
        second.insert(part_b)
        first.merge(second)

        for word in IE_1D:
            assert np.allclose(first.counter(word), whole.counter(word))

    def test_merge_two_dimensional(self, rng, domain_2d):
        words = all_words([Letter.INTERVAL, Letter.ENDPOINTS], 2)
        part_a = random_boxes(rng, 10, 256, 2)
        part_b = random_boxes(rng, 12, 256, 2)
        whole = SketchBank(domain_2d, words, num_instances=8, seed=3)
        whole.insert(part_a.concat(part_b))
        first = SketchBank(domain_2d, words, num_instances=8, seed=3)
        second = first.companion()
        first.insert(part_a)
        second.insert(part_b)
        first.merge(second)
        for word in words:
            assert np.allclose(first.counter(word), whole.counter(word))

    def test_merge_rejects_different_seeds(self, domain_1d):
        first = SketchBank(domain_1d, IE_1D, num_instances=8, seed=1)
        second = SketchBank(domain_1d, IE_1D, num_instances=8, seed=2)
        with pytest.raises(MergeCompatibilityError):
            first.merge(second)

    def test_merge_rejects_different_words(self, domain_1d):
        first = SketchBank(domain_1d, IE_1D, num_instances=8, seed=1)
        second = first.companion(words=[(Letter.INTERVAL,)])
        with pytest.raises(MergeCompatibilityError):
            first.merge(second)

    def test_merge_rejects_different_instance_counts(self, domain_1d):
        first = SketchBank(domain_1d, IE_1D, num_instances=8, seed=1)
        second = SketchBank(domain_1d, IE_1D, num_instances=4, seed=1)
        with pytest.raises(MergeCompatibilityError):
            first.merge(second)

    def test_merge_rejects_different_domains(self):
        first = SketchBank(Domain(256), IE_1D, num_instances=8, seed=1)
        second = SketchBank(Domain(512), IE_1D, num_instances=8, seed=1)
        with pytest.raises(MergeCompatibilityError):
            first.merge(second)

    def test_merge_rejects_different_max_levels(self):
        first = SketchBank(Domain(256), IE_1D, num_instances=8, seed=1)
        second = SketchBank(Domain(256, max_levels=3), IE_1D, num_instances=8, seed=1)
        with pytest.raises(MergeCompatibilityError):
            first.merge(second)

    def test_merge_error_is_a_sketch_config_error(self, domain_1d):
        """Callers catching the older SketchConfigError keep working."""
        assert issubclass(MergeCompatibilityError, SketchConfigError)

    def test_merge_failure_leaves_counters_untouched(self, rng, domain_1d):
        first = SketchBank(domain_1d, IE_1D, num_instances=8, seed=1)
        first.insert(random_boxes(rng, 10, 256, 1))
        before = {word: first.counter(word) for word in IE_1D}
        second = SketchBank(domain_1d, IE_1D, num_instances=8, seed=2)
        second.insert(random_boxes(rng, 5, 256, 1))
        with pytest.raises(MergeCompatibilityError):
            first.merge(second)
        for word in IE_1D:
            assert np.array_equal(first.counter(word), before[word])


class TestEstimatorMerge:
    """Typed merge errors at the estimator level (service merge path)."""

    def test_cross_family_merge_rejected(self):
        rect = EstimatorSpec.create("rectangle", (256, 256), 8, seed=1).build()
        ext = EstimatorSpec.create("extended_overlap", (256, 256), 8, seed=1).build()
        with pytest.raises(MergeCompatibilityError):
            rect.merge(ext)

    def test_epsilon_mismatch_rejected(self):
        first = EstimatorSpec.create("epsilon", (256, 256), 8, seed=1,
                                     epsilon=2).build()
        second = EstimatorSpec.create("epsilon", (256, 256), 8, seed=1,
                                      epsilon=5).build()
        with pytest.raises(MergeCompatibilityError):
            first.merge(second)

    def test_strict_mismatch_rejected(self):
        first = EstimatorSpec.create("range", (256, 256), 8, seed=1).build()
        second = EstimatorSpec.create("range", (256, 256), 8, seed=1,
                                      strict=True).build()
        with pytest.raises(MergeCompatibilityError):
            first.merge(second)

    def test_seed_mismatch_rejected(self):
        first = EstimatorSpec.create("rectangle", (256, 256), 8, seed=1).build()
        second = EstimatorSpec.create("rectangle", (256, 256), 8, seed=2).build()
        with pytest.raises(MergeCompatibilityError):
            first.merge(second)


class TestPersistence:
    def test_state_dict_round_trip(self, rng, domain_1d):
        boxes = random_boxes(rng, 25, 256, 1)
        original = SketchBank(domain_1d, IE_1D, num_instances=12, seed=7)
        original.insert(boxes)
        snapshot = original.state_dict()

        restored = SketchBank(domain_1d, IE_1D, num_instances=12, seed=7)
        restored.load_state_dict(snapshot)
        for word in IE_1D:
            assert np.allclose(restored.counter(word), original.counter(word))
        assert restored.num_updates == original.num_updates

    def test_state_dict_is_json_serialisable(self, rng, domain_1d):
        bank = SketchBank(domain_1d, IE_1D, num_instances=4, seed=7)
        bank.insert(random_boxes(rng, 5, 256, 1))
        text = json.dumps(bank.state_dict())
        assert "counters" in json.loads(text)

    def test_restored_bank_supports_further_updates(self, rng, domain_1d):
        initial = random_boxes(rng, 20, 256, 1)
        later = random_boxes(rng, 10, 256, 1)

        original = SketchBank(domain_1d, IE_1D, num_instances=8, seed=9)
        original.insert(initial)
        snapshot = original.state_dict()
        original.insert(later)

        restored = SketchBank(domain_1d, IE_1D, num_instances=8, seed=9)
        restored.load_state_dict(snapshot)
        restored.insert(later)
        for word in IE_1D:
            assert np.allclose(restored.counter(word), original.counter(word))

    def test_seed_mismatch_rejected(self, rng, domain_1d):
        bank = SketchBank(domain_1d, IE_1D, num_instances=8, seed=9)
        bank.insert(random_boxes(rng, 5, 256, 1))
        other = SketchBank(domain_1d, IE_1D, num_instances=8, seed=10)
        with pytest.raises(SketchConfigError):
            other.load_state_dict(bank.state_dict())

    def test_domain_mismatch_rejected_on_load(self, rng):
        """Same seed/words/instances but a different domain must not load."""
        bank = SketchBank(Domain(512), IE_1D, num_instances=8, seed=9)
        bank.insert(random_boxes(rng, 5, 256, 1))
        other = SketchBank(Domain(256), IE_1D, num_instances=8, seed=9)
        with pytest.raises(MergeCompatibilityError):
            other.load_state_dict(bank.state_dict())

    def test_legacy_snapshot_without_domain_still_loads(self, rng, domain_1d):
        bank = SketchBank(domain_1d, IE_1D, num_instances=8, seed=9)
        bank.insert(random_boxes(rng, 5, 256, 1))
        state = bank.state_dict()
        del state["domain"]
        restored = SketchBank(domain_1d, IE_1D, num_instances=8, seed=9)
        restored.load_state_dict(state)
        for word in IE_1D:
            assert np.array_equal(restored.counter(word), bank.counter(word))

    def test_instance_count_mismatch_rejected(self, rng, domain_1d):
        bank = SketchBank(domain_1d, IE_1D, num_instances=8, seed=9)
        other = SketchBank(domain_1d, IE_1D, num_instances=4, seed=9)
        with pytest.raises(SketchConfigError):
            other.load_state_dict(bank.state_dict())


class TestColumnarState:
    """The contiguous counter tensor and the array-form snapshots."""

    def test_counter_tensor_matches_per_word_counters(self, rng, domain_1d):
        bank = SketchBank(domain_1d, IE_1D, num_instances=12, seed=7)
        bank.insert(random_boxes(rng, 25, 256, 1))
        tensor = bank.counter_tensor
        assert tensor.shape == (12, len(IE_1D))
        assert tensor.flags.c_contiguous and not tensor.flags.writeable
        for column, word in enumerate(bank.words):
            assert np.array_equal(tensor[:, column], bank.counter(word))

    def test_array_state_round_trip_is_bit_identical(self, rng, domain_1d):
        original = SketchBank(domain_1d, IE_1D, num_instances=12, seed=7)
        original.insert(random_boxes(rng, 25, 256, 1))
        state = original.state_dict(arrays=True)
        assert isinstance(state["counters"], np.ndarray)
        assert state["xi_coefficients"].shape == (1, 12, 4)

        restored = SketchBank(domain_1d, IE_1D, num_instances=12, seed=7)
        restored.load_state_dict(state)
        assert np.array_equal(restored.counter_tensor, original.counter_tensor)
        assert restored.num_updates == original.num_updates

    def test_array_and_json_states_describe_the_same_counters(self, rng, domain_1d):
        bank = SketchBank(domain_1d, IE_1D, num_instances=6, seed=3)
        bank.insert(random_boxes(rng, 15, 256, 1))
        json_state = bank.state_dict()
        array_state = bank.state_dict(arrays=True)
        for column, key in enumerate(json_state["words"]):
            assert json_state["counters"][key] == \
                array_state["counters"][:, column].tolist()

    def test_adopted_read_only_tensor_copies_on_first_write(self, rng, domain_1d):
        original = SketchBank(domain_1d, IE_1D, num_instances=8, seed=7)
        original.insert(random_boxes(rng, 20, 256, 1))
        state = original.state_dict(arrays=True)
        state["counters"].setflags(write=False)

        adopted = SketchBank(domain_1d, IE_1D, num_instances=8, seed=7)
        adopted.load_state_dict(state, copy=False)
        assert adopted._matrix is state["counters"]  # no copy on load
        later = random_boxes(rng, 5, 256, 1)
        adopted.insert(later)  # must not raise: copy-on-write
        original.insert(later)
        assert np.array_equal(adopted.counter_tensor, original.counter_tensor)

    def test_merge_is_a_single_tensor_add(self, rng, domain_1d):
        first = SketchBank(domain_1d, IE_1D, num_instances=8, seed=5)
        second = first.companion()
        first.insert(random_boxes(rng, 10, 256, 1))
        second.insert(random_boxes(rng, 12, 256, 1))
        expected = first.counter_tensor + second.counter_tensor
        first.merge(second)
        assert np.array_equal(first.counter_tensor, expected)

    def test_array_state_seed_mismatch_rejected(self, rng, domain_1d):
        bank = SketchBank(domain_1d, IE_1D, num_instances=8, seed=9)
        bank.insert(random_boxes(rng, 5, 256, 1))
        other = SketchBank(domain_1d, IE_1D, num_instances=8, seed=10)
        with pytest.raises(MergeCompatibilityError):
            other.load_state_dict(bank.state_dict(arrays=True))

    def test_array_state_shape_mismatch_rejected(self, rng, domain_1d):
        bank = SketchBank(domain_1d, IE_1D, num_instances=8, seed=9)
        state = bank.state_dict(arrays=True)
        state["counters"] = state["counters"][:, :1]
        with pytest.raises(MergeCompatibilityError):
            bank.load_state_dict(state)


def _family_boxes(rng, family, sizes, count):
    boxes = random_boxes(rng, count, sizes[0], len(sizes))
    if family == "epsilon":
        return BoxSet(boxes.lows, boxes.lows.copy(), validate=False)
    return boxes


class TestEstimatorPersistence:
    """state_dict -> load_state_dict -> estimate round trip, every family."""

    @pytest.mark.parametrize("family,sizes,options", FAMILY_SPECS,
                             ids=[f[0] for f in FAMILY_SPECS])
    def test_round_trip_estimate_equality(self, rng, family, sizes, options):
        spec = EstimatorSpec.create(family, sizes, 16, seed=13, **options)
        original = spec.build()
        for side in spec.info.sides:
            apply_update(spec, original, side, "insert",
                         _family_boxes(rng, family, sizes, 120))

        snapshot = json.loads(json.dumps(original.state_dict()))
        restored = spec.build()
        restored.load_state_dict(snapshot)

        query = None
        if spec.info.queryable:
            query = random_boxes(rng, 1, sizes[0], len(sizes))
        original_result = run_estimate(spec, original, query)
        restored_result = run_estimate(spec, restored, query)
        assert restored_result.estimate == original_result.estimate
        assert restored_result.left_count == original_result.left_count
        assert restored_result.right_count == original_result.right_count
        assert np.array_equal(restored_result.instance_values,
                              original_result.instance_values)

    @pytest.mark.parametrize("family,sizes,options", FAMILY_SPECS,
                             ids=[f[0] for f in FAMILY_SPECS])
    def test_restored_estimator_accepts_further_updates(self, rng, family,
                                                        sizes, options):
        spec = EstimatorSpec.create(family, sizes, 8, seed=3, **options)
        original = spec.build()
        side = spec.info.sides[0]
        first = _family_boxes(rng, family, sizes, 60)
        later = _family_boxes(rng, family, sizes, 40)
        apply_update(spec, original, side, "insert", first)
        snapshot = original.state_dict()
        apply_update(spec, original, side, "insert", later)

        restored = spec.build()
        restored.load_state_dict(snapshot)
        apply_update(spec, restored, side, "insert", later)
        query = None
        if spec.info.queryable:
            query = random_boxes(rng, 1, sizes[0], len(sizes))
        assert (run_estimate(spec, restored, query).estimate
                == run_estimate(spec, original, query).estimate)

    @pytest.mark.parametrize("family,sizes,options", FAMILY_SPECS,
                             ids=[f[0] for f in FAMILY_SPECS])
    def test_array_state_round_trip_estimate_equality(self, rng, family,
                                                      sizes, options):
        """arrays=True snapshots restore bit-identically, every family."""
        spec = EstimatorSpec.create(family, sizes, 16, seed=13, **options)
        original = spec.build()
        for side in spec.info.sides:
            apply_update(spec, original, side, "insert",
                         _family_boxes(rng, family, sizes, 80))
        restored = spec.build()
        restored.load_state_dict(original.state_dict(arrays=True))
        query = None
        if spec.info.queryable:
            query = random_boxes(rng, 1, sizes[0], len(sizes))
        original_result = run_estimate(spec, original, query)
        restored_result = run_estimate(spec, restored, query)
        assert restored_result.estimate == original_result.estimate
        assert np.array_equal(restored_result.instance_values,
                              original_result.instance_values)

    def test_seed_mismatch_rejected_on_load(self, rng):
        snapshot = EstimatorSpec.create("rectangle", (256, 256), 8,
                                        seed=1).build().state_dict()
        other = EstimatorSpec.create("rectangle", (256, 256), 8, seed=2).build()
        with pytest.raises(MergeCompatibilityError):
            other.load_state_dict(snapshot)
