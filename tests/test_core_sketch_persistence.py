"""Tests for sketch merging (distributed construction) and persistence."""

import json

import numpy as np
import pytest

from repro.core.atomic import Letter, SketchBank, all_words
from repro.core.domain import Domain
from repro.errors import SketchConfigError

from tests.conftest import random_boxes


IE_1D = [(Letter.INTERVAL,), (Letter.ENDPOINTS,)]


class TestMerge:
    def test_merge_equals_union_insert(self, rng, domain_1d):
        part_a = random_boxes(rng, 20, 256, 1)
        part_b = random_boxes(rng, 15, 256, 1)

        whole = SketchBank(domain_1d, IE_1D, num_instances=16, seed=5)
        whole.insert(part_a.concat(part_b))

        first = SketchBank(domain_1d, IE_1D, num_instances=16, seed=5)
        second = first.companion()
        first.insert(part_a)
        second.insert(part_b)
        first.merge(second)

        for word in IE_1D:
            assert np.allclose(first.counter(word), whole.counter(word))

    def test_merge_two_dimensional(self, rng, domain_2d):
        words = all_words([Letter.INTERVAL, Letter.ENDPOINTS], 2)
        part_a = random_boxes(rng, 10, 256, 2)
        part_b = random_boxes(rng, 12, 256, 2)
        whole = SketchBank(domain_2d, words, num_instances=8, seed=3)
        whole.insert(part_a.concat(part_b))
        first = SketchBank(domain_2d, words, num_instances=8, seed=3)
        second = first.companion()
        first.insert(part_a)
        second.insert(part_b)
        first.merge(second)
        for word in words:
            assert np.allclose(first.counter(word), whole.counter(word))

    def test_merge_rejects_different_seeds(self, domain_1d):
        first = SketchBank(domain_1d, IE_1D, num_instances=8, seed=1)
        second = SketchBank(domain_1d, IE_1D, num_instances=8, seed=2)
        with pytest.raises(SketchConfigError):
            first.merge(second)

    def test_merge_rejects_different_words(self, domain_1d):
        first = SketchBank(domain_1d, IE_1D, num_instances=8, seed=1)
        second = first.companion(words=[(Letter.INTERVAL,)])
        with pytest.raises(SketchConfigError):
            first.merge(second)

    def test_merge_rejects_different_instance_counts(self, domain_1d):
        first = SketchBank(domain_1d, IE_1D, num_instances=8, seed=1)
        second = SketchBank(domain_1d, IE_1D, num_instances=4, seed=1)
        with pytest.raises(SketchConfigError):
            first.merge(second)


class TestPersistence:
    def test_state_dict_round_trip(self, rng, domain_1d):
        boxes = random_boxes(rng, 25, 256, 1)
        original = SketchBank(domain_1d, IE_1D, num_instances=12, seed=7)
        original.insert(boxes)
        snapshot = original.state_dict()

        restored = SketchBank(domain_1d, IE_1D, num_instances=12, seed=7)
        restored.load_state_dict(snapshot)
        for word in IE_1D:
            assert np.allclose(restored.counter(word), original.counter(word))
        assert restored.num_updates == original.num_updates

    def test_state_dict_is_json_serialisable(self, rng, domain_1d):
        bank = SketchBank(domain_1d, IE_1D, num_instances=4, seed=7)
        bank.insert(random_boxes(rng, 5, 256, 1))
        text = json.dumps(bank.state_dict())
        assert "counters" in json.loads(text)

    def test_restored_bank_supports_further_updates(self, rng, domain_1d):
        initial = random_boxes(rng, 20, 256, 1)
        later = random_boxes(rng, 10, 256, 1)

        original = SketchBank(domain_1d, IE_1D, num_instances=8, seed=9)
        original.insert(initial)
        snapshot = original.state_dict()
        original.insert(later)

        restored = SketchBank(domain_1d, IE_1D, num_instances=8, seed=9)
        restored.load_state_dict(snapshot)
        restored.insert(later)
        for word in IE_1D:
            assert np.allclose(restored.counter(word), original.counter(word))

    def test_seed_mismatch_rejected(self, rng, domain_1d):
        bank = SketchBank(domain_1d, IE_1D, num_instances=8, seed=9)
        bank.insert(random_boxes(rng, 5, 256, 1))
        other = SketchBank(domain_1d, IE_1D, num_instances=8, seed=10)
        with pytest.raises(SketchConfigError):
            other.load_state_dict(bank.state_dict())

    def test_instance_count_mismatch_rejected(self, rng, domain_1d):
        bank = SketchBank(domain_1d, IE_1D, num_instances=8, seed=9)
        other = SketchBank(domain_1d, IE_1D, num_instances=4, seed=9)
        with pytest.raises(SketchConfigError):
            other.load_state_dict(bank.state_dict())
