"""Tests for the uniform grid index."""

import numpy as np
import pytest

from repro.errors import SketchConfigError
from repro.exact.rectangle_join import brute_force_join_count
from repro.geometry.boxset import BoxSet
from repro.geometry.rectangle import Rect
from repro.index.grid import GridIndex

from tests.conftest import random_boxes


class TestGridIndex:
    def test_empty_input_rejected(self):
        with pytest.raises(SketchConfigError):
            GridIndex(BoxSet.empty(2))

    def test_invalid_cells_rejected(self, rng):
        with pytest.raises(SketchConfigError):
            GridIndex(random_boxes(rng, 5, 100, 2), cells_per_dim=0)

    def test_candidates_superset_of_matches(self, rng):
        data = random_boxes(rng, 100, 200, 2)
        index = GridIndex(data, cells_per_dim=16)
        query = Rect.from_bounds((50, 50), (120, 90))
        candidates = set(index.candidates(query).tolist())
        matches = set(index.query(query).tolist())
        assert matches <= candidates

    def test_query_matches_brute_force(self, rng):
        data = random_boxes(rng, 150, 200, 2)
        index = GridIndex(data, cells_per_dim=8)
        for _ in range(20):
            lo = rng.integers(0, 150, size=2)
            hi = lo + rng.integers(1, 60, size=2)
            query = Rect.from_bounds(lo, hi)
            expected = {i for i in range(len(data)) if data.rect(i).overlaps(query)}
            assert set(index.query(query).tolist()) == expected

    def test_query_closed_semantics(self, rng):
        data = BoxSet(np.array([[0, 0]]), np.array([[10, 10]]))
        index = GridIndex(data, cells_per_dim=4)
        touching = Rect.from_bounds((10, 0), (20, 10))
        assert index.query(touching).size == 0
        assert index.query(touching, closed=True).size == 1

    def test_join_count_matches_brute_force(self, rng):
        left = random_boxes(rng, 80, 150, 2)
        right = random_boxes(rng, 60, 150, 2)
        index = GridIndex(right, cells_per_dim=8)
        assert index.join_count(left) == brute_force_join_count(left, right)

    def test_one_dimensional_data(self, rng):
        data = random_boxes(rng, 50, 100, 1)
        index = GridIndex(data, cells_per_dim=8)
        query = Rect.interval(20, 60)
        expected = {i for i in range(len(data)) if data.rect(i).overlaps(query)}
        assert set(index.query(query).tolist()) == expected

    def test_num_occupied_cells(self, rng):
        data = random_boxes(rng, 30, 100, 2)
        index = GridIndex(data, cells_per_dim=4)
        assert 1 <= index.num_occupied_cells <= 16
