"""Tests for the EstimationService front-end: caching, snapshots, streams."""

import json
import threading

import numpy as np
import pytest

from repro.core.domain import Domain
from repro.data.streams import UpdateStream
from repro.errors import ServiceError, SnapshotError
from repro.geometry.rectangle import Rect
from repro.service import (
    EstimationService,
    EstimatorSpec,
    StreamDriver,
    drive_stream,
    load_snapshot,
    restore_service,
    save_snapshot,
    synthetic_boxes,
)

from tests.conftest import random_boxes


def _service(**kwargs):
    kwargs.setdefault("num_shards", 4)
    service = EstimationService(**kwargs)
    service.register("join", family="rectangle", domain=(256, 256),
                     num_instances=16, seed=5)
    return service


class TestRegistration:
    def test_register_inline_and_by_spec(self):
        service = EstimationService(num_shards=2)
        spec = EstimatorSpec.create("range", (256,), 8, seed=1)
        service.register("by-spec", spec)
        service.register("inline", family="range", domain=(256,),
                         num_instances=8, seed=1)
        assert service.spec("by-spec") == service.spec("inline")

    def test_register_conflicting_arguments_rejected(self):
        service = EstimationService(num_shards=2)
        spec = EstimatorSpec.create("range", (256,), 8)
        with pytest.raises(ServiceError):
            service.register("x", spec, family="range")
        with pytest.raises(ServiceError):
            service.register("x")

    def test_unregister_clears_views(self, rng):
        service = _service()
        service.insert("join", random_boxes(rng, 10, 256, 2))
        service.estimate("join")
        service.unregister("join")
        assert "join" not in service
        with pytest.raises(ServiceError):
            service.estimate("join")


class TestEstimateAndCache:
    def test_estimate_flushes_pending(self, rng):
        service = _service(flush_threshold=None)
        service.insert("join", random_boxes(rng, 60, 256, 2), side="left")
        service.insert("join", random_boxes(rng, 60, 256, 2), side="right")
        assert service.pending == 120
        result = service.estimate("join")
        assert service.pending == 0
        assert result.left_count == 60 and result.right_count == 60

    def test_cache_hit_and_invalidation(self, rng):
        service = _service(flush_threshold=None)
        service.insert("join", random_boxes(rng, 40, 256, 2))
        service.estimate("join")
        assert service.stats.cache_misses == 1
        service.estimate("join")
        assert service.stats.cache_hits == 1
        # New data invalidates the cached view on flush.
        service.insert("join", random_boxes(rng, 10, 256, 2))
        service.estimate("join")
        assert service.stats.cache_misses == 2

    def test_cache_eviction(self, rng):
        service = EstimationService(num_shards=2, cache_size=1)
        for name in ("a", "b"):
            service.register(name, family="range", domain=(256,),
                             num_instances=8, seed=2)
            service.insert(name, random_boxes(rng, 20, 256, 1), side="data")
        query = Rect.interval(10, 200)
        service.estimate("a", query)
        service.estimate("b", query)  # evicts a
        service.estimate("a", query)  # miss again
        assert service.stats.cache_misses == 3

    def test_estimates_against_unsharded_reference(self, rng):
        service = _service(flush_threshold=32, max_workers=4)
        left = random_boxes(rng, 300, 256, 2)
        right = random_boxes(rng, 300, 256, 2)
        service.insert("join", left, side="left")
        service.insert("join", right, side="right")
        single = service.spec("join").build()
        single.insert_left(left)
        single.insert_right(right)
        assert service.estimate("join").estimate == single.estimate().estimate

    def test_query_argument_validation(self, rng):
        service = _service()
        service.insert("join", random_boxes(rng, 10, 256, 2))
        with pytest.raises(ServiceError):
            service.estimate("join", Rect.from_bounds((0, 0), (10, 10)))
        service.register("rq", family="range", domain=(256, 256),
                         num_instances=8, seed=1)
        service.insert("rq", random_boxes(rng, 10, 256, 2), side="data")
        with pytest.raises(ServiceError):
            service.estimate("rq")  # range estimates need a query

    def test_concurrent_ingest_and_estimate(self, rng):
        service = _service(flush_threshold=64, max_workers=2)
        service.insert("join", random_boxes(rng, 100, 256, 2), side="right")
        batches = [random_boxes(rng, 50, 256, 2) for _ in range(8)]
        errors = []

        def producer():
            try:
                for boxes in batches:
                    service.insert("join", boxes, side="left")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def consumer():
            try:
                for _ in range(8):
                    service.estimate("join")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=producer),
                   threading.Thread(target=consumer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        service.flush()
        assert service.estimate("join").left_count == 400


class TestSnapshots:
    def test_dict_round_trip_preserves_estimates(self, rng):
        service = _service()
        service.insert("join", random_boxes(rng, 120, 256, 2), side="left")
        service.insert("join", random_boxes(rng, 120, 256, 2), side="right")
        expected = service.estimate("join").estimate
        blob = json.dumps(service.snapshot())  # must be JSON-serialisable
        restored = restore_service(json.loads(blob))
        assert restored.estimate("join").estimate == expected

    def test_file_round_trip_and_resume(self, rng, tmp_path):
        path = tmp_path / "svc.json"
        service = _service()
        first = random_boxes(rng, 80, 256, 2)
        service.insert("join", first, side="left")
        service.save(path)

        restored = EstimationService.load(path)
        later = random_boxes(rng, 40, 256, 2)
        restored.insert("join", later, side="left")
        # The restored service keeps accepting updates and stays exact.
        single = restored.spec("join").build()
        single.insert_left(first.concat(later))
        merged = restored.merged_view("join")
        assert merged.left_count == 120
        for word in single.left_bank.words:
            assert np.array_equal(merged.left_bank.counter(word),
                                  single.left_bank.counter(word))

    def test_snapshot_includes_pending_updates(self, rng, tmp_path):
        service = _service(flush_threshold=None)
        service.insert("join", random_boxes(rng, 30, 256, 2))
        state = service.snapshot()  # flushes first
        restored = restore_service(state)
        assert restored.estimate("join").left_count == 30

    def test_malformed_snapshot_rejected(self, tmp_path):
        with pytest.raises(SnapshotError):
            restore_service({"format": "something-else"})
        with pytest.raises(SnapshotError):
            restore_service({"num_shards": 2})  # missing estimators
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_snapshot_version_guard(self):
        with pytest.raises(SnapshotError):
            restore_service({"format": "repro.service.snapshot",
                             "snapshot_version": 99,
                             "num_shards": 2, "estimators": {}})

    def test_save_snapshot_with_store_argument(self, rng, tmp_path):
        service = _service()
        service.insert("join", random_boxes(rng, 10, 256, 2))
        service.flush()
        path = tmp_path / "store.json"
        save_snapshot(service.store, path)
        assert load_snapshot(path).estimate("join").left_count == 10


class TestStreamDriver:
    def test_stream_replay_matches_final_state(self, rng):
        """After inserts+deletes, the sketch equals one over the survivors."""
        domain = Domain.square(256, dimension=2)
        data = synthetic_boxes(domain, 400, seed=9)
        stream = UpdateStream(data, delete_fraction=0.3, seed=4)

        service = _service(flush_threshold=128)
        report = drive_stream(service, "join", stream, side="left", batch_size=64)
        assert report.deletes == round(0.3 * 400)
        assert report.inserts == 400

        single = service.spec("join").build()
        final = stream.final_state()
        single.insert_left(final)
        merged = service.merged_view("join")
        assert merged.left_count == len(final)
        for word in single.left_bank.words:
            assert np.array_equal(merged.left_bank.counter(word),
                                  single.left_bank.counter(word))

    def test_driver_validates_inputs(self, rng):
        service = _service()
        with pytest.raises(ServiceError):
            StreamDriver(service, "unknown")
        with pytest.raises(ServiceError):
            StreamDriver(service, "join", batch_size=0)

    def test_synthetic_boxes_shapes(self):
        domain = Domain.square(128, dimension=3)
        boxes = synthetic_boxes(domain, 100, seed=1)
        assert len(boxes) == 100 and boxes.dimension == 3
        domain.validate_boxes(boxes)
        points = synthetic_boxes(domain, 10, seed=1, degenerate=True)
        assert np.array_equal(points.lows, points.highs)
        with pytest.raises(ServiceError):
            synthetic_boxes(domain, -1)
