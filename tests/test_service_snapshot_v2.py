"""Tests for the binary (v2) snapshot format and the memory-mapped restores.

Covers the tentpole guarantees of the columnar state layer:

* every estimator family answers bit-identically after a round trip through
  *both* snapshot formats (v1 JSON and v2 binary),
* a checked-in v1 JSON fixture from an earlier build still restores and
  answers its recorded queries exactly (backward compatibility),
* process-pool workers restore merged views from a memory-mapped v2
  snapshot (including under the ``spawn`` start method),
* corrupt and truncated binary snapshots raise :class:`SnapshotError`.
"""

from __future__ import annotations

import json
import multiprocessing
import pathlib
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.core.domain import Domain
from repro.errors import SnapshotError
from repro.service import (
    EstimationService,
    EstimatorSpec,
    load_snapshot,
    load_view_snapshot,
    write_view_snapshot,
    synthetic_queries,
)
from repro.service.parallel import _worker_estimate, _worker_init
from repro.service.snapshot import (
    BINARY_MAGIC,
    read_binary_snapshot_state,
    read_snapshot_state,
    write_binary_snapshot_state,
)

from tests.conftest import random_boxes

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

#: One representative spec per estimator family (all eight).
FAMILY_SPECS = [
    ("interval", (256,), {}),
    ("rectangle", (256, 256), {}),
    ("hyperrect", (64, 64, 64), {}),
    ("extended_overlap", (256, 256), {}),
    ("common_endpoint", (256, 256), {}),
    ("containment", (256, 256), {}),
    ("epsilon", (256, 256), {"epsilon": 3}),
    ("range", (256, 256), {}),
]


def _family_boxes(rng, family, sizes, count):
    boxes = random_boxes(rng, count, sizes[0], len(sizes))
    if family == "epsilon":
        from repro.geometry.boxset import BoxSet

        return BoxSet(boxes.lows, boxes.lows.copy(), validate=False)
    return boxes


def _family_service(rng, family, sizes, options, *, num_shards=3):
    service = EstimationService(num_shards=num_shards, flush_threshold=None)
    spec = EstimatorSpec.create(family, sizes, 16, seed=13, **options)
    service.register("est", spec)
    for side in spec.info.sides:
        service.ingest("est", _family_boxes(rng, family, sizes, 90), side=side)
    service.flush()
    return service, spec


class TestBothFormatsRoundTrip:
    @pytest.mark.parametrize("family,sizes,options", FAMILY_SPECS,
                             ids=[f[0] for f in FAMILY_SPECS])
    def test_bit_identical_estimates_after_both_round_trips(
            self, rng, tmp_path, family, sizes, options):
        service, spec = _family_service(rng, family, sizes, options)
        query = None
        if spec.info.queryable:
            query = random_boxes(rng, 1, sizes[0], len(sizes))
        original = service.estimate("est", query)

        binary_path = tmp_path / "svc.snap"
        json_path = tmp_path / "svc.json"
        service.save(binary_path)   # auto -> binary
        service.save(json_path)     # auto -> JSON (v1)
        with open(binary_path, "rb") as handle:
            assert handle.read(len(BINARY_MAGIC)) == BINARY_MAGIC
        json.load(open(json_path, encoding="utf-8"))  # really is v1 JSON

        for path in (binary_path, json_path):
            restored = load_snapshot(path)
            result = restored.estimate("est", query)
            assert result.estimate == original.estimate
            assert np.array_equal(result.instance_values,
                                  original.instance_values)
            assert result.left_count == original.left_count
            assert result.right_count == original.right_count

    def test_in_memory_array_snapshot_restores_do_not_alias(self, rng):
        """Two services restored from one arrays=True tree must not share
        writable counter tensors — ingesting into one must not touch the
        other (only read-only mmap views are adopted without copying)."""
        service, _ = _family_service(rng, "rectangle", (256, 256), {})
        state = service.snapshot(arrays=True)
        first = EstimationService.restore(state)
        second = EstimationService.restore(state)
        before = second.estimate("est").estimate
        first.ingest("est", random_boxes(rng, 50, 256, 2), side="left")
        first.flush()
        assert second.estimate("est").estimate == before

    def test_restored_binary_service_supports_further_ingestion(self, rng, tmp_path):
        """Counters adopted from the mmap must copy-on-write, not crash."""
        service, spec = _family_service(rng, "rectangle", (256, 256), {})
        path = tmp_path / "svc.snap"
        service.save(path)
        restored = load_snapshot(path)
        later = random_boxes(rng, 40, 256, 2)
        for svc in (service, restored):
            svc.ingest("est", later, side="left")
            svc.flush()
        assert (restored.estimate("est").estimate
                == service.estimate("est").estimate)

    def test_explicit_format_overrides_extension(self, rng, tmp_path):
        service, _ = _family_service(rng, "interval", (256,), {})
        path = tmp_path / "svc.json"
        service.save(path, format="binary")
        with open(path, "rb") as handle:
            assert handle.read(len(BINARY_MAGIC)) == BINARY_MAGIC
        assert load_snapshot(path).estimate("est").estimate \
            == service.estimate("est").estimate

    def test_binary_snapshot_dedupes_shared_xi_tensors(self, rng, tmp_path):
        """Shards and bank sides share xi families -> stored once, not 2*shards."""
        service, _ = _family_service(rng, "rectangle", (256, 256), {},
                                     num_shards=4)
        path = tmp_path / "svc.snap"
        service.save(path)
        state = read_binary_snapshot_state(path)
        shards = state["estimators"]["est"]["shards"]
        xi_ids = {id(bank_state["xi_coefficients"])
                  for shard in shards
                  for bank_state in (shard["left"], shard["right"])}
        assert len(xi_ids) == 1  # one shared mmap view across all 8 refs


class TestV1FixtureRegression:
    """A snapshot written by the v1 (JSON-only) build must keep answering."""

    def test_fixture_restores_and_answers_identically(self):
        expected = json.loads(
            (FIXTURES / "service_snapshot_v1.expected.json").read_text())
        service = load_snapshot(FIXTURES / "service_snapshot_v1.json")
        assert service.estimate("join").estimate == expected["join_estimate"]
        rows = np.asarray(expected["queries"], dtype=np.int64)
        from repro.geometry.boxset import BoxSet

        dimension = rows.shape[1] // 2
        queries = BoxSet(rows[:, :dimension], rows[:, dimension:])
        estimates = [r.estimate
                     for r in service.estimate_batch("ranges", queries)]
        assert estimates == expected["range_estimates"]

    def test_fixture_is_version_1_json(self):
        state = json.loads((FIXTURES / "service_snapshot_v1.json").read_text())
        assert state["snapshot_version"] == 1


class TestViewSnapshots:
    def test_view_snapshot_round_trip_is_bit_identical(self, rng, tmp_path):
        service, spec = _family_service(rng, "range", (256, 256), {})
        view = service.merged_view("est")
        path = tmp_path / "view.snap"
        write_view_snapshot(spec, view, path)
        _, restored = load_view_snapshot(path)
        query = random_boxes(rng, 1, 256, 2)
        assert np.array_equal(restored.instance_values(query),
                              view.instance_values(query))

    def test_restored_view_counters_are_read_only_mmap_views(self, rng, tmp_path):
        service, spec = _family_service(rng, "range", (256, 256), {})
        path = tmp_path / "view.snap"
        write_view_snapshot(spec, service.merged_view("est"), path)
        _, restored = load_view_snapshot(path)
        # Adopted without copying: the bank's tensor is the read-only view
        # into the mapped file, not private memory.
        matrix = restored.bank._matrix
        assert not matrix.flags.writeable
        assert isinstance(matrix.base, np.memmap)

    def test_view_snapshot_rejected_by_service_loader(self, rng, tmp_path):
        service, spec = _family_service(rng, "range", (256, 256), {})
        path = tmp_path / "view.snap"
        write_view_snapshot(spec, service.merged_view("est"), path)
        with pytest.raises(SnapshotError):
            load_snapshot(path)


class TestProcessPoolRestore:
    def test_workers_answer_bit_identically_to_serial(self, rng):
        service, _ = _family_service(rng, "range", (256, 256), {})
        queries = synthetic_queries(Domain.square(256, dimension=2), 24, seed=5)
        serial = service.estimate_batch("est", queries)
        fanned = service.estimate_batch("est", queries, workers=2)
        assert [r.estimate for r in fanned] == [r.estimate for r in serial]

    def test_spawn_context_workers_restore_from_mmapped_snapshot(
            self, rng, tmp_path):
        """The pool path must survive the strictest start method (spawn)."""
        service, spec = _family_service(rng, "range", (256, 256), {})
        view = service.merged_view("est")
        path = tmp_path / "view.snap"
        write_view_snapshot(spec, view, path)
        queries = synthetic_queries(Domain.square(256, dimension=2), 8, seed=3)
        expected = [r.estimate
                    for r in service.estimate_batch("est", queries)]
        cache_key = ("est", 1)
        try:
            with ProcessPoolExecutor(
                    max_workers=2,
                    mp_context=multiprocessing.get_context("spawn"),
                    initializer=_worker_init,
                    initargs=(cache_key, str(path))) as pool:
                future = pool.submit(_worker_estimate, cache_key,
                                     queries.lows, queries.highs)
                results = future.result(timeout=120)
        except (OSError, PermissionError) as exc:  # pragma: no cover
            pytest.skip(f"no process pool available here: {exc}")
        assert [r.estimate for r in results] == expected


class TestCorruptSnapshots:
    def _binary_snapshot(self, rng, tmp_path) -> pathlib.Path:
        service, _ = _family_service(rng, "interval", (256,), {})
        path = tmp_path / "svc.snap"
        service.save(path)
        return path

    def test_truncated_data_section_raises(self, rng, tmp_path):
        path = self._binary_snapshot(rng, tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) - 256])
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(path)

    def test_truncated_header_raises(self, rng, tmp_path):
        path = self._binary_snapshot(rng, tmp_path)
        path.write_bytes(path.read_bytes()[:len(BINARY_MAGIC) + 12])
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(path)

    def test_garbage_header_json_raises(self, rng, tmp_path):
        path = self._binary_snapshot(rng, tmp_path)
        blob = bytearray(path.read_bytes())
        start = len(BINARY_MAGIC) + 8
        blob[start:start + 16] = b"\xff" * 16
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="header"):
            load_snapshot(path)

    def test_non_snapshot_bytes_raise(self, tmp_path):
        path = tmp_path / "junk.snap"
        path.write_bytes(b"\x00\x01\x02 definitely not a snapshot")
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_snapshot(tmp_path / "nope.snap")

    def test_read_snapshot_state_detects_both_formats(self, rng, tmp_path):
        path = self._binary_snapshot(rng, tmp_path)
        assert read_snapshot_state(path)["snapshot_version"] == 2
        json_path = tmp_path / "svc.json"
        service, _ = _family_service(rng, "interval", (256,), {})
        service.save(json_path)
        assert read_snapshot_state(json_path)["snapshot_version"] == 1

    def test_negative_array_offset_raises(self, tmp_path):
        state = {"format": "repro.service.snapshot", "snapshot_version": 2,
                 "num_shards": 1, "estimators": {},
                 "first": np.arange(64, dtype=np.float64),
                 "second": np.arange(64, dtype=np.float64) * 2.0}
        path = tmp_path / "svc.snap"
        write_binary_snapshot_state(state, path)
        blob = path.read_bytes()
        # Same-length patch so the stored header length stays valid: the
        # second array sits at (relative) offset 512 -> point it before the
        # data section instead.
        patched = blob.replace(b'"offset":512', b'"offset":-12', 1)
        assert patched != blob
        path.write_bytes(patched)
        with pytest.raises(SnapshotError, match="negative"):
            read_binary_snapshot_state(path)

    def test_malformed_xi_coefficients_surface_as_snapshot_error(
            self, rng, tmp_path):
        """A hand-edited v1 snapshot with garbage xi seeds must raise
        SnapshotError, not a raw numpy OverflowError."""
        service, _ = _family_service(rng, "interval", (256,), {})
        path = tmp_path / "svc.json"
        service.save(path)
        state = json.loads(path.read_text())
        shard = state["estimators"]["est"]["shards"][0]
        shard["left"]["xi_coefficients"][0][0][0] = -1
        path.write_text(json.dumps(state))
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_inconsistent_array_table_raises(self, tmp_path):
        state = {"format": "repro.service.snapshot", "snapshot_version": 2,
                 "num_shards": 1, "estimators": {},
                 "blob": np.arange(8, dtype=np.float64)}
        path = tmp_path / "svc.snap"
        write_binary_snapshot_state(state, path)
        blob = path.read_bytes()
        # Corrupt the declared shape so nbytes no longer matches.
        patched = blob.replace(b'"shape":[8]', b'"shape":[9]', 1)
        assert patched != blob
        path.write_bytes(patched)
        with pytest.raises(SnapshotError, match="inconsistent"):
            read_binary_snapshot_state(path)
