"""Tests for the histogram and sampling baselines (Section 7 comparators)."""

import numpy as np
import pytest

from repro.core.domain import Domain
from repro.data import synthetic
from repro.errors import SketchConfigError
from repro.exact.rectangle_join import brute_force_join_count, rectangle_join_count
from repro.geometry.boxset import BoxSet
from repro.histograms.equiwidth import EquiWidthHistogram
from repro.histograms.euler import EulerHistogram
from repro.histograms.geometric import GeometricHistogram
from repro.histograms.sampling import ReservoirSampleEstimator

from tests.conftest import random_boxes


@pytest.fixture
def workload(rng):
    domain = Domain.square(1024, dimension=2)
    left = synthetic.generate_rectangles(800, domain, rng=rng)
    right = synthetic.generate_rectangles(800, domain, rng=rng)
    truth = rectangle_join_count(left, right)
    return domain, left, right, truth


class TestGridHistogramBase:
    def test_requires_two_dimensions(self):
        with pytest.raises(Exception):
            GeometricHistogram(Domain(64), level=2)

    def test_negative_level_rejected(self):
        with pytest.raises(SketchConfigError):
            GeometricHistogram(Domain.square(64, 2), level=-1)

    def test_incompatible_levels_rejected(self, workload):
        domain, left, right, _ = workload
        a = GeometricHistogram(domain, level=3)
        b = GeometricHistogram(domain, level=4)
        a.insert(left)
        b.insert(right)
        with pytest.raises(SketchConfigError):
            a.estimate_join(b)

    def test_mixed_types_rejected(self, workload):
        domain, left, right, _ = workload
        a = GeometricHistogram(domain, level=3)
        b = EulerHistogram(domain, level=3)
        a.insert(left)
        b.insert(right)
        with pytest.raises(SketchConfigError):
            a.estimate_join(b)

    def test_out_of_domain_boxes_rejected(self, workload):
        domain, *_ = workload
        histogram = GeometricHistogram(domain, level=3)
        with pytest.raises(Exception):
            histogram.insert(BoxSet(np.array([[0, 0]]), np.array([[5000, 10]])))


class TestGeometricHistogram:
    def test_reasonable_accuracy_on_uniform_data(self, workload):
        domain, left, right, truth = workload
        gh_left = GeometricHistogram(domain, level=4)
        gh_right = GeometricHistogram(domain, level=4)
        gh_left.insert(left)
        gh_right.insert(right)
        estimate = gh_left.estimate_join(gh_right)
        assert estimate == pytest.approx(truth, rel=0.35)

    def test_insert_delete_round_trip(self, workload, rng):
        domain, left, right, _ = workload
        extra = random_boxes(rng, 100, 1024, 2)
        a = GeometricHistogram(domain, level=3)
        a.insert(left)
        b = GeometricHistogram(domain, level=3)
        b.insert(left)
        b.insert(extra)
        b.delete(extra)
        reference = GeometricHistogram(domain, level=3)
        reference.insert(right)
        assert a.estimate_join(reference) == pytest.approx(b.estimate_join(reference))

    def test_storage_words(self, workload):
        domain, *_ = workload
        assert GeometricHistogram(domain, level=5).storage_words() == 4 ** 6

    def test_selectivity(self, workload):
        domain, left, right, _ = workload
        a = GeometricHistogram(domain, level=3)
        b = GeometricHistogram(domain, level=3)
        a.insert(left)
        b.insert(right)
        assert a.estimate_join_selectivity(b) == pytest.approx(
            a.estimate_join(b) / (len(left) * len(right)))

    def test_empty_histogram_estimates_zero(self, workload):
        domain, left, *_ = workload
        a = GeometricHistogram(domain, level=3)
        b = GeometricHistogram(domain, level=3)
        a.insert(left)
        assert b.count == 0
        assert a.estimate_join(b) == 0.0


class TestEulerHistogram:
    def test_region_count_is_exact_for_aligned_regions(self, workload, rng):
        domain, left, *_ = workload
        histogram = EulerHistogram(domain, level=3)
        histogram.insert(left)
        cells = histogram.cells_per_dim
        cell_w, cell_h = histogram.cell_extent
        for _ in range(10):
            i0, j0 = rng.integers(0, cells, size=2)
            i1 = rng.integers(i0, cells)
            j1 = rng.integers(j0, cells)
            # Count objects intersecting the aligned region exactly.
            x_lo, x_hi = i0 * cell_w, (i1 + 1) * cell_w
            y_lo, y_hi = j0 * cell_h, (j1 + 1) * cell_h
            expected = int(np.sum(
                (left.lows[:, 0] < x_hi) & (left.highs[:, 0] + 1 > x_lo)
                & (left.lows[:, 1] < y_hi) & (left.highs[:, 1] + 1 > y_lo)
            ))
            assert histogram.estimate_region_count((i0, j0), (i1, j1)) == pytest.approx(expected)

    def test_join_estimate_in_right_ballpark_at_coarse_level(self, workload):
        domain, left, right, truth = workload
        eh_left = EulerHistogram(domain, level=3)
        eh_right = EulerHistogram(domain, level=3)
        eh_left.insert(left)
        eh_right.insert(right)
        estimate = eh_left.estimate_join(eh_right)
        assert estimate == pytest.approx(truth, rel=0.6)

    def test_insert_delete_round_trip(self, workload, rng):
        domain, left, right, _ = workload
        extra = random_boxes(rng, 80, 1024, 2)
        a = EulerHistogram(domain, level=3)
        a.insert(left)
        b = EulerHistogram(domain, level=3)
        b.insert(left)
        b.insert(extra)
        b.delete(extra)
        reference = EulerHistogram(domain, level=3)
        reference.insert(right)
        assert a.estimate_join(reference) == pytest.approx(b.estimate_join(reference))

    def test_storage_words_formula(self, workload):
        domain, *_ = workload
        histogram = EulerHistogram(domain, level=4)
        assert histogram.storage_words() == 9 * 256 - 6 * 16 + 1

    def test_estimate_is_non_negative(self, workload):
        domain, left, right, _ = workload
        eh_left = EulerHistogram(domain, level=5)
        eh_right = EulerHistogram(domain, level=5)
        eh_left.insert(left)
        eh_right.insert(right)
        assert eh_left.estimate_join(eh_right) >= 0.0


class TestEquiWidthHistogram:
    def test_join_estimate_sane_for_uniform_data(self, workload):
        domain, left, right, truth = workload
        a = EquiWidthHistogram(domain, level=3)
        b = EquiWidthHistogram(domain, level=3)
        a.insert(left)
        b.insert(right)
        estimate = a.estimate_join(b)
        assert estimate == pytest.approx(truth, rel=0.6)

    def test_storage_words(self, workload):
        domain, *_ = workload
        assert EquiWidthHistogram(domain, level=4).storage_words() == 256 + 2

    def test_delete(self, workload, rng):
        domain, left, right, _ = workload
        extra = random_boxes(rng, 50, 1024, 2)
        a = EquiWidthHistogram(domain, level=3)
        a.insert(left)
        a.insert(extra)
        a.delete(extra)
        b = EquiWidthHistogram(domain, level=3)
        b.insert(left)
        reference = EquiWidthHistogram(domain, level=3)
        reference.insert(right)
        assert a.estimate_join(reference) == pytest.approx(b.estimate_join(reference))


class TestReservoirSampleEstimator:
    def test_sample_never_exceeds_capacity(self, rng):
        estimator = ReservoirSampleEstimator(sample_size=50, seed=1)
        estimator.insert(random_boxes(rng, 500, 200, 2))
        assert len(estimator.sample) == 50
        assert estimator.count == 500

    def test_small_streams_keep_everything(self, rng):
        estimator = ReservoirSampleEstimator(sample_size=100, seed=1)
        data = random_boxes(rng, 30, 200, 2)
        estimator.insert(data)
        assert len(estimator.sample) == 30

    def test_full_sample_estimates_exactly(self, rng):
        left_data = random_boxes(rng, 60, 200, 2)
        right_data = random_boxes(rng, 60, 200, 2)
        left = ReservoirSampleEstimator(sample_size=100, seed=1)
        right = ReservoirSampleEstimator(sample_size=100, seed=2)
        left.insert(left_data)
        right.insert(right_data)
        assert left.estimate_join(right) == pytest.approx(
            brute_force_join_count(left_data, right_data))

    def test_estimate_scales_with_counts(self, rng):
        left_data = random_boxes(rng, 400, 300, 2)
        right_data = random_boxes(rng, 400, 300, 2)
        truth = brute_force_join_count(left_data, right_data)
        left = ReservoirSampleEstimator(sample_size=150, seed=3)
        right = ReservoirSampleEstimator(sample_size=150, seed=4)
        left.insert(left_data)
        right.insert(right_data)
        assert left.estimate_join(right) == pytest.approx(truth, rel=0.5)

    def test_delete_degrades_sample(self, rng):
        data = random_boxes(rng, 40, 100, 2)
        estimator = ReservoirSampleEstimator(sample_size=100, seed=5)
        estimator.insert(data)
        estimator.delete(data[:10])
        assert estimator.count == 30
        assert len(estimator.sample) == 30

    def test_storage_words(self):
        assert ReservoirSampleEstimator(sample_size=25, dimension=2).storage_words() == 100

    def test_invalid_sample_size(self):
        with pytest.raises(SketchConfigError):
            ReservoirSampleEstimator(sample_size=0)

    def test_join_against_wrong_type_rejected(self, rng):
        estimator = ReservoirSampleEstimator(sample_size=10)
        estimator.insert(random_boxes(rng, 5, 50, 2))
        with pytest.raises(SketchConfigError):
            estimator.estimate_join(object())
