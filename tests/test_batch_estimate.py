"""Tests for the batched estimation engine.

Covers the vectorised kernels layer by layer: batched median-of-means
boosting, batched query-side sketch evaluation, ``estimate_batch`` on the
estimator families, the service front-end (serial, process-pool and
thread-fallback paths), the optimizer's batched cardinality probes and the
CLI's JSON-lines batch mode.  The recurring claim is *bit-identity*: the
batch path must return exactly what a loop of scalar calls returns.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.atomic import Letter, all_words
from repro.core.boosting import (
    BoostingPlan,
    median_of_means,
    median_of_means_batch,
    split_instances,
)
from repro.core.join_base import batch_request_count
from repro.core.range_query import RangeQueryEstimator
from repro.core.join_hyperrect import SpatialJoinEstimator
from repro.errors import EstimationError, ServiceError, SketchConfigError
from repro.service import EstimationService
from repro.service.parallel import _chunk_bounds, estimate_batch_parallel

from tests.conftest import random_boxes


class TestMedianOfMeansBatch:
    def test_bit_identical_to_scalar_rows(self, rng):
        matrix = rng.normal(size=(17, 45)) * 1000
        estimates, group_means = median_of_means_batch(matrix)
        for row in range(matrix.shape[0]):
            scalar_estimate, scalar_means = median_of_means(matrix[row])
            assert scalar_estimate == estimates[row]
            assert np.array_equal(scalar_means, group_means[row])

    def test_explicit_plan_and_unused_instances(self, rng):
        matrix = rng.normal(size=(5, 12))
        plan = BoostingPlan(group_size=3, num_groups=3)  # uses 9 of 12
        estimates, group_means = median_of_means_batch(matrix, plan)
        assert group_means.shape == (5, 3)
        for row in range(5):
            scalar_estimate, _ = median_of_means(matrix[row], plan)
            assert scalar_estimate == estimates[row]

    def test_empty_batch(self):
        estimates, group_means = median_of_means_batch(
            np.empty((0, 8)), split_instances(8))
        assert estimates.shape == (0,)
        assert group_means.shape[0] == 0

    def test_rejects_bad_shapes(self):
        with pytest.raises(SketchConfigError):
            median_of_means_batch(np.zeros(5))
        with pytest.raises(SketchConfigError):
            median_of_means_batch(np.zeros((3, 0)))
        with pytest.raises(SketchConfigError):
            median_of_means_batch(np.zeros((3, 4)),
                                  BoostingPlan(group_size=5, num_groups=1))


class TestEvaluateMany:
    def test_columns_match_scalar_evaluate(self, rng, domain_2d):
        from repro.core.atomic import SketchBank

        words = all_words([Letter.INTERVAL, Letter.UPPER_POINT], 2)
        bank = SketchBank(domain_2d, words, 8, seed=3)
        boxes = random_boxes(rng, 25, 256, 2)
        products = bank.evaluate_many(words, boxes)
        for word in words:
            assert products[word].shape == (8, 25)
            for j in range(25):
                assert np.array_equal(products[word][:, j],
                                      bank.evaluate(word, boxes[j]))

    def test_empty_batch(self, domain_2d):
        from repro.core.atomic import SketchBank

        words = all_words([Letter.INTERVAL, Letter.UPPER_POINT], 2)
        bank = SketchBank(domain_2d, words, 4, seed=1)
        empty = random_boxes(np.random.default_rng(0), 3, 256, 2)[0:0]
        products = bank.evaluate_many(words, empty)
        assert all(matrix.shape == (4, 0) for matrix in products.values())


class TestRangeEstimateBatch:
    @pytest.mark.parametrize("strict", [False, True])
    def test_bit_identical_to_scalar_loop(self, rng, domain_2d, strict):
        estimator = RangeQueryEstimator(domain_2d, 16, seed=5, strict=strict)
        estimator.insert(random_boxes(rng, 200, 256, 2))
        estimator.delete(random_boxes(rng, 40, 256, 2))
        queries = random_boxes(rng, 30, 256, 2)
        batch = estimator.estimate_batch(queries)
        assert len(batch) == 30
        for j in range(30):
            scalar = estimator.estimate(queries[j])
            assert scalar.estimate == batch[j].estimate
            assert np.array_equal(scalar.instance_values, batch[j].instance_values)
            assert np.array_equal(scalar.group_means, batch[j].group_means)
            assert scalar.left_count == batch[j].left_count

    def test_chunked_batches_are_identical(self, rng, domain_2d, monkeypatch):
        estimator = RangeQueryEstimator(domain_2d, 8, seed=2)
        estimator.insert(random_boxes(rng, 100, 256, 2))
        queries = random_boxes(rng, 23, 256, 2)
        whole = estimator.estimate_batch(queries)
        monkeypatch.setattr(RangeQueryEstimator, "_BATCH_CHUNK", 7)
        chunked = estimator.estimate_batch(queries)
        assert [r.estimate for r in whole] == [r.estimate for r in chunked]

    def test_accepts_rect_sequences_and_single_query(self, rng, domain_2d):
        estimator = RangeQueryEstimator(domain_2d, 8, seed=2)
        estimator.insert(random_boxes(rng, 50, 256, 2))
        queries = random_boxes(rng, 4, 256, 2)
        as_rects = estimator.estimate_batch(queries.to_rects())
        as_boxes = estimator.estimate_batch(queries)
        assert [r.estimate for r in as_rects] == [r.estimate for r in as_boxes]
        single = estimator.estimate_batch(queries.rect(0))
        assert single[0].estimate == as_boxes[0].estimate

    def test_empty_and_no_data(self, rng, domain_2d):
        estimator = RangeQueryEstimator(domain_2d, 8, seed=2)
        assert estimator.estimate_batch([]) == []
        with pytest.raises(EstimationError):
            estimator.estimate_batch(random_boxes(rng, 2, 256, 2))


class TestJoinEstimateBatch:
    def test_count_and_none_sequences(self, rng, domain_2d):
        estimator = SpatialJoinEstimator(domain_2d, 16, seed=3)
        estimator.insert_left(random_boxes(rng, 50, 256, 2))
        estimator.insert_right(random_boxes(rng, 50, 256, 2))
        scalar = estimator.estimate()
        for batch in (estimator.estimate_batch(4),
                      estimator.estimate_batch([None] * 4)):
            assert len(batch) == 4
            assert all(result.estimate == scalar.estimate for result in batch)
            # Results own their arrays: mutating one must not leak into
            # the others (matches the scalar-loop contract).
            assert batch[0].instance_values is not batch[1].instance_values
            batch[0].instance_values[0] += 1.0
            assert batch[1].instance_values[0] == scalar.instance_values[0]
        assert estimator.estimate_batch(0) == []
        assert estimator.estimate_batch() == []

    def test_rejects_query_entries(self, rng, domain_2d):
        estimator = SpatialJoinEstimator(domain_2d, 8, seed=3)
        estimator.insert_left(random_boxes(rng, 10, 256, 2))
        with pytest.raises(SketchConfigError):
            estimator.estimate_batch([None, random_boxes(rng, 1, 256, 2)])
        with pytest.raises(SketchConfigError):
            estimator.estimate_batch(-1)

    def test_batch_request_count(self):
        assert batch_request_count(3) == 3
        assert batch_request_count([None, None]) == 2
        with pytest.raises(SketchConfigError):
            batch_request_count(["x"])


class TestServiceEstimateBatch:
    @staticmethod
    def _range_service(rng, **kwargs):
        kwargs.setdefault("num_shards", 3)
        service = EstimationService(**kwargs)
        service.register("ranges", family="range", domain=(256, 256),
                         num_instances=16, seed=9)
        service.insert("ranges", random_boxes(rng, 300, 256, 2), side="data")
        service.delete("ranges", random_boxes(rng, 50, 256, 2), side="data")
        return service

    def test_serial_matches_scalar(self, rng):
        service = self._range_service(rng)
        queries = random_boxes(rng, 20, 256, 2)
        batch = service.estimate_batch("ranges", queries)
        for j in range(20):
            scalar = service.estimate("ranges", queries[j])
            assert scalar.estimate == batch[j].estimate
            assert np.array_equal(scalar.instance_values, batch[j].instance_values)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_matches_serial(self, rng, workers):
        service = self._range_service(rng)
        queries = random_boxes(rng, 17, 256, 2)
        serial = service.estimate_batch("ranges", queries)
        parallel = service.estimate_batch("ranges", queries, workers=workers)
        assert [r.estimate for r in parallel] == [r.estimate for r in serial]
        assert all(np.array_equal(a.instance_values, b.instance_values)
                   for a, b in zip(parallel, serial))

    def test_thread_fallback_matches_serial(self, rng, monkeypatch):
        import repro.service.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "_try_process_pool",
                            lambda *args, **kwargs: None)
        service = self._range_service(rng)
        queries = random_boxes(rng, 11, 256, 2)
        serial = service.estimate_batch("ranges", queries)
        threaded = service.estimate_batch("ranges", queries, workers=4)
        assert [r.estimate for r in threaded] == [r.estimate for r in serial]

    def test_queryless_families_and_counts(self, rng):
        service = EstimationService(num_shards=2)
        service.register("join", family="rectangle", domain=(256, 256),
                         num_instances=16, seed=5)
        service.insert("join", random_boxes(rng, 60, 256, 2), side="left")
        service.insert("join", random_boxes(rng, 60, 256, 2), side="right")
        scalar = service.estimate("join")
        batch = service.estimate_batch("join", [None] * 5)
        assert len(batch) == 5
        assert all(result.estimate == scalar.estimate for result in batch)
        assert len(service.estimate_batch("join", 3)) == 3
        with pytest.raises(ServiceError):
            service.estimate_batch("join", random_boxes(rng, 2, 256, 2))

    def test_batch_counts_in_stats_and_uses_cache(self, rng):
        service = self._range_service(rng, flush_threshold=None)
        queries = random_boxes(rng, 6, 256, 2)
        service.estimate_batch("ranges", queries)
        assert service.stats.estimates == 6
        service.estimate_batch("ranges", queries)
        assert service.stats.cache_hits >= 1

    def test_store_estimate_batch(self, rng):
        service = self._range_service(rng)
        queries = random_boxes(rng, 5, 256, 2)
        via_service = service.estimate_batch("ranges", queries)  # flushes first
        via_store = service.store.estimate_batch("ranges", queries)
        assert [r.estimate for r in via_store] == [r.estimate for r in via_service]

    def test_empty_batch(self, rng):
        service = self._range_service(rng)
        assert service.estimate_batch("ranges", []) == []

    def test_parallel_helper_validates(self, rng):
        service = self._range_service(rng)
        spec = service.spec("ranges")
        view = service.merged_view("ranges")
        with pytest.raises(ServiceError):
            estimate_batch_parallel(spec, view, [None])
        with pytest.raises(ServiceError):
            estimate_batch_parallel(spec, view, 5)

    def test_chunk_bounds(self):
        assert _chunk_bounds(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert _chunk_bounds(2, 8) == [(0, 1), (1, 2)]
        assert _chunk_bounds(1, 1) == [(0, 1)]


class TestOptimizerBatchedProbes:
    @staticmethod
    def _catalog(rng, domain):
        from repro.engine.catalog import Catalog

        catalog = Catalog(domain)
        for name, count in (("R", 60), ("S", 50), ("T", 40)):
            catalog.create(name, boxes=random_boxes(rng, count, 256, 2))
        catalog.create("EMPTY")
        return catalog

    def test_synopsis_manager_batch_matches_scalar(self, rng, domain_2d):
        from repro.engine.synopses import SynopsisManager

        catalog = self._catalog(rng, domain_2d)
        synopses = SynopsisManager(domain_2d, num_instances=16, seed=1)
        relations = [catalog.get(name) for name in ("R", "S", "T", "EMPTY")]
        pairs = [(a, b) for a in relations for b in relations if a.name != b.name]
        batch = synopses.estimated_join_cardinalities(pairs)
        scalar = [synopses.estimated_join_cardinality(a, b) for a, b in pairs]
        assert batch == scalar
        # Pairs with an empty side report zero without probing.
        for (a, b), value in zip(pairs, batch):
            if a.name == "EMPTY" or b.name == "EMPTY":
                assert value == 0.0

    def test_service_synopses_batch_matches_scalar(self, rng, domain_2d):
        catalog = self._catalog(rng, domain_2d)
        synopses = catalog.service_synopses(num_instances=16, seed=1)
        relations = [catalog.get(name) for name in ("R", "S", "T")]
        pairs = [(a, b) for a in relations for b in relations if a.name != b.name]
        batch = synopses.estimated_join_cardinalities(pairs)
        scalar = [synopses.estimated_join_cardinality(a, b) for a, b in pairs]
        assert batch == scalar

    def test_plan_join_unchanged_by_batching(self, rng, domain_2d):
        from repro.engine.optimizer import Optimizer
        from repro.engine.query import JoinQuery
        from repro.engine.synopses import SynopsisManager

        from repro.engine.optimizer import _PairSelectivityCache

        catalog = self._catalog(rng, domain_2d)
        synopses = SynopsisManager(domain_2d, num_instances=16, seed=1)
        optimizer = Optimizer(catalog, synopses)
        plan = optimizer.plan_join(JoinQuery(relations=("R", "S", "T")))
        # The cached-selectivity plan must equal a plan costed pair by pair.
        selectivities = {
            (a, b): optimizer.estimated_pair_selectivity(catalog.get(a),
                                                         catalog.get(b))
            for a in ("R", "S", "T") for b in ("R", "S", "T") if a != b
        }
        cache = _PairSelectivityCache(synopses)
        cache.ensure((catalog.get(a), catalog.get(b))
                     for a in ("R", "S", "T") for b in ("R", "S", "T") if a != b)
        assert selectivities == cache.values
        assert plan.estimated_cost > 0

    def test_fallback_without_batch_api(self, rng, domain_2d):
        from repro.engine.optimizer import Optimizer
        from repro.engine.query import JoinQuery
        from repro.engine.synopses import SynopsisManager

        catalog = self._catalog(rng, domain_2d)

        class ScalarOnly:
            def __init__(self, inner):
                self._inner = inner

            def estimated_join_cardinality(self, left, right):
                return self._inner.estimated_join_cardinality(left, right)

        synopses = SynopsisManager(domain_2d, num_instances=16, seed=1)
        batched = Optimizer(catalog, synopses).plan_join(
            JoinQuery(relations=("R", "S", "T")))
        scalar = Optimizer(catalog, ScalarOnly(synopses)).plan_join(
            JoinQuery(relations=("R", "S", "T")))
        assert batched.order == scalar.order
        assert batched.estimated_cost == scalar.estimated_cost


class TestCliBatchFile:
    def test_jsonl_round_trip(self, rng, tmp_path, capsys):
        from repro.cli import main

        snapshot = tmp_path / "svc.json"
        service = EstimationService(num_shards=2)
        service.register("ranges", family="range", domain=(256, 256),
                         num_instances=16, seed=4)
        service.insert("ranges", random_boxes(rng, 150, 256, 2), side="data")
        service.save(snapshot)

        queries = random_boxes(rng, 5, 256, 2)
        batch_file = tmp_path / "queries.jsonl"
        with open(batch_file, "w", encoding="utf-8") as handle:
            for j in range(len(queries)):
                row = list(map(int, queries.lows[j])) + list(map(int, queries.highs[j]))
                handle.write(json.dumps(row) + "\n")
        out_file = tmp_path / "results.jsonl"

        assert main(["estimate", "--snapshot", str(snapshot), "--name", "ranges",
                     "--batch-file", str(batch_file),
                     "--batch-output", str(out_file)]) == 0
        lines = [json.loads(line) for line in
                 out_file.read_text(encoding="utf-8").splitlines()]
        assert [line["index"] for line in lines] == list(range(5))
        for j, line in enumerate(lines):
            scalar = service.estimate("ranges", queries[j])
            assert line["estimate"] == scalar.estimate

    def test_null_lines_for_queryless_families(self, rng, tmp_path, capsys):
        from repro.cli import main

        snapshot = tmp_path / "svc.json"
        service = EstimationService(num_shards=2)
        service.register("join", family="rectangle", domain=(256, 256),
                         num_instances=16, seed=4)
        service.insert("join", random_boxes(rng, 40, 256, 2), side="left")
        service.insert("join", random_boxes(rng, 40, 256, 2), side="right")
        service.save(snapshot)

        batch_file = tmp_path / "queries.jsonl"
        batch_file.write_text("null\nnull\n", encoding="utf-8")
        assert main(["estimate", "--snapshot", str(snapshot), "--name", "join",
                     "--batch-file", str(batch_file)]) == 0
        lines = [json.loads(line) for line in
                 capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == 2
        assert lines[0]["estimate"] == service.estimate("join").estimate

    def test_mixed_batch_rejected(self, rng, tmp_path, capsys):
        from repro.cli import main

        snapshot = tmp_path / "svc.json"
        service = EstimationService(num_shards=1)
        service.register("ranges", family="range", domain=(256, 256),
                         num_instances=8, seed=4)
        service.insert("ranges", random_boxes(rng, 20, 256, 2), side="data")
        service.save(snapshot)
        batch_file = tmp_path / "queries.jsonl"
        batch_file.write_text("null\n[0, 0, 5, 5]\n", encoding="utf-8")
        assert main(["estimate", "--snapshot", str(snapshot), "--name", "ranges",
                     "--batch-file", str(batch_file)]) == 1
        assert "error" in capsys.readouterr().err
