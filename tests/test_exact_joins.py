"""Tests for the exact join counters (ground-truth algorithms)."""

import numpy as np
import pytest

from repro.exact.containment import containment_join_count
from repro.exact.epsilon_join import epsilon_join_count, epsilon_join_selectivity
from repro.exact.interval_join import (
    interval_join_count,
    interval_join_pairs,
    interval_self_join_count,
)
from repro.exact.range_query import (
    range_query_count,
    range_query_select,
    range_query_selectivity,
)
from repro.exact.rectangle_join import (
    brute_force_join_count,
    join_selectivity,
    plane_sweep_join_count,
    rectangle_join_count,
)
from repro.geometry.boxset import BoxSet, PointSet
from repro.geometry.predicates import overlap_matrix, pairwise_linf_distances
from repro.geometry.rectangle import Rect

from tests.conftest import random_boxes


class TestIntervalJoin:
    def test_simple_overlap(self):
        left = BoxSet.from_intervals([(0, 10)])
        right = BoxSet.from_intervals([(5, 15), (20, 30)])
        assert interval_join_count(left, right) == 1

    def test_touching_only_counts_when_closed(self):
        left = BoxSet.from_intervals([(0, 10)])
        right = BoxSet.from_intervals([(10, 20)])
        assert interval_join_count(left, right) == 0
        assert interval_join_count(left, right, closed=True) == 1

    def test_degenerate_intervals_ignored_for_strict(self):
        left = BoxSet.from_intervals([(5, 5)])
        right = BoxSet.from_intervals([(0, 10)])
        assert interval_join_count(left, right) == 0
        assert interval_join_count(left, right, closed=True) == 1

    def test_empty_inputs(self):
        left = BoxSet.from_intervals([(0, 10)])
        assert interval_join_count(left, BoxSet.empty(1)) == 0
        assert interval_join_count(BoxSet.empty(1), left) == 0

    def test_matches_matrix_oracle(self, rng):
        for _ in range(10):
            left = random_boxes(rng, 40, 100, 1)
            right = random_boxes(rng, 35, 100, 1)
            expected = int(overlap_matrix(left, right).sum())
            assert interval_join_count(left, right) == expected

    def test_closed_matches_matrix_oracle(self, rng):
        left = random_boxes(rng, 50, 60, 1, allow_degenerate=True)
        right = random_boxes(rng, 50, 60, 1, allow_degenerate=True)
        expected = int(overlap_matrix(left, right, closed=True).sum())
        assert interval_join_count(left, right, closed=True) == expected

    def test_pairs_iterator_consistent_with_count(self, rng):
        left = random_boxes(rng, 25, 80, 1)
        right = random_boxes(rng, 25, 80, 1)
        pairs = list(interval_join_pairs(left, right))
        assert len(pairs) == interval_join_count(left, right)

    def test_self_join(self, rng):
        data = random_boxes(rng, 30, 100, 1)
        assert interval_self_join_count(data) == interval_join_count(data, data)


class TestRectangleJoin:
    def test_brute_force_simple(self):
        left = BoxSet(np.array([[0, 0]]), np.array([[10, 10]]))
        right = BoxSet(np.array([[5, 5], [20, 20]]), np.array([[15, 15], [30, 30]]))
        assert brute_force_join_count(left, right) == 1

    def test_plane_sweep_matches_brute_force(self, rng):
        for trial in range(8):
            left = random_boxes(rng, 60, 200, 2)
            right = random_boxes(rng, 70, 200, 2)
            assert plane_sweep_join_count(left, right) == \
                brute_force_join_count(left, right), f"trial {trial}"

    def test_plane_sweep_matches_brute_force_closed(self, rng):
        for _ in range(5):
            left = random_boxes(rng, 40, 50, 2, allow_degenerate=True)
            right = random_boxes(rng, 40, 50, 2, allow_degenerate=True)
            assert plane_sweep_join_count(left, right, closed=True) == \
                brute_force_join_count(left, right, closed=True)

    def test_plane_sweep_with_shared_coordinates(self, rng):
        # Snap coordinates to a coarse grid so ties are frequent.
        left = random_boxes(rng, 80, 64, 2)
        right = random_boxes(rng, 80, 64, 2)
        left = BoxSet((left.lows // 8) * 8, np.maximum((left.highs // 8) * 8, (left.lows // 8) * 8 + 1))
        right = BoxSet((right.lows // 8) * 8, np.maximum((right.highs // 8) * 8, (right.lows // 8) * 8 + 1))
        assert plane_sweep_join_count(left, right) == brute_force_join_count(left, right)

    def test_dispatcher_consistency(self, rng):
        left = random_boxes(rng, 30, 100, 2)
        right = random_boxes(rng, 30, 100, 2)
        assert rectangle_join_count(left, right) == brute_force_join_count(left, right)

    def test_dispatcher_one_dimension(self, rng):
        left = random_boxes(rng, 30, 100, 1)
        right = random_boxes(rng, 30, 100, 1)
        assert rectangle_join_count(left, right) == interval_join_count(left, right)

    def test_dispatcher_three_dimensions(self, rng):
        left = random_boxes(rng, 25, 40, 3)
        right = random_boxes(rng, 25, 40, 3)
        expected = int(overlap_matrix(left, right).sum())
        assert rectangle_join_count(left, right) == expected

    def test_join_selectivity(self, rng):
        left = random_boxes(rng, 20, 60, 2)
        right = random_boxes(rng, 25, 60, 2)
        expected = rectangle_join_count(left, right) / (20 * 25)
        assert join_selectivity(left, right) == pytest.approx(expected)

    def test_empty_inputs(self):
        left = BoxSet(np.array([[0, 0]]), np.array([[5, 5]]))
        assert rectangle_join_count(left, BoxSet.empty(2)) == 0
        assert plane_sweep_join_count(BoxSet.empty(2), left) == 0


class TestContainmentJoin:
    def test_simple(self):
        outer = BoxSet(np.array([[0, 0]]), np.array([[10, 10]]))
        inner = BoxSet(np.array([[2, 2], [8, 8]]), np.array([[5, 5], [12, 12]]))
        assert containment_join_count(outer, inner) == 1

    def test_boundary_containment_counts(self):
        outer = BoxSet(np.array([[0, 0]]), np.array([[10, 10]]))
        inner = BoxSet(np.array([[0, 0]]), np.array([[10, 10]]))
        assert containment_join_count(outer, inner) == 1

    def test_matches_matrix_oracle(self, rng):
        from repro.geometry.predicates import containment_matrix

        outer = random_boxes(rng, 40, 80, 2)
        inner = random_boxes(rng, 40, 80, 2, max_extent=10)
        expected = int(containment_matrix(outer, inner).sum())
        assert containment_join_count(outer, inner) == expected


class TestEpsilonJoin:
    def test_simple(self):
        left = PointSet(np.array([[0, 0]]))
        right = PointSet(np.array([[3, 3], [10, 10]]))
        assert epsilon_join_count(left, right, 3) == 1
        assert epsilon_join_count(left, right, 2) == 0

    def test_epsilon_zero_counts_exact_matches(self):
        left = PointSet(np.array([[5, 5], [5, 5]]))
        right = PointSet(np.array([[5, 5], [6, 6]]))
        assert epsilon_join_count(left, right, 0) == 2

    def test_matches_matrix_oracle(self, rng):
        left = PointSet(rng.integers(0, 100, size=(60, 2)))
        right = PointSet(rng.integers(0, 100, size=(70, 2)))
        for epsilon in (1, 5, 17):
            expected = int((pairwise_linf_distances(left, right) <= epsilon).sum())
            assert epsilon_join_count(left, right, epsilon) == expected

    def test_three_dimensional(self, rng):
        left = PointSet(rng.integers(0, 30, size=(40, 3)))
        right = PointSet(rng.integers(0, 30, size=(40, 3)))
        expected = int((pairwise_linf_distances(left, right) <= 4).sum())
        assert epsilon_join_count(left, right, 4) == expected

    def test_selectivity(self, rng):
        left = PointSet(rng.integers(0, 50, size=(20, 2)))
        right = PointSet(rng.integers(0, 50, size=(30, 2)))
        count = epsilon_join_count(left, right, 5)
        assert epsilon_join_selectivity(left, right, 5) == pytest.approx(count / 600)


class TestRangeQuery:
    def test_count_and_select(self, rng):
        data = random_boxes(rng, 50, 100, 2)
        query = Rect.from_bounds((20, 20), (60, 60))
        count = range_query_count(data, query)
        selected = range_query_select(data, query)
        assert len(selected) == count
        expected = sum(1 for rect in data if rect.overlaps_plus(query))
        assert count == expected

    def test_strict_semantics(self):
        data = BoxSet(np.array([[0, 0]]), np.array([[10, 10]]))
        query = Rect.from_bounds((10, 0), (20, 10))
        assert range_query_count(data, query, closed=True) == 1
        assert range_query_count(data, query, closed=False) == 0

    def test_selectivity(self, rng):
        data = random_boxes(rng, 40, 100, 2)
        query = Rect.from_bounds((0, 0), (99, 99))
        assert range_query_selectivity(data, query) == pytest.approx(1.0)

    def test_empty_data(self):
        assert range_query_count(BoxSet.empty(2), Rect.from_bounds((0, 0), (5, 5))) == 0
